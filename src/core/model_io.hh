/**
 * @file
 * File persistence for models and training campaigns.
 *
 * A real deployment separates the expensive measurement campaign from
 * model fitting and from prediction-time use: the campaign output and
 * the fitted model are both persisted as plain text so they can be
 * archived, diffed and shipped (the virtual-sensor use case ships a
 * model file to machines that have no sensor at all).
 */

#ifndef GPUPM_CORE_MODEL_IO_HH
#define GPUPM_CORE_MODEL_IO_HH

#include <string>

#include "core/campaign.hh"
#include "core/estimator.hh"
#include "core/power_model.hh"

namespace gpupm
{
namespace model
{

/** Write a fitted model to a file (fatal on I/O failure). */
void saveModel(const DvfsPowerModel &model, const std::string &path);

/** Read a model written by saveModel (fatal on I/O or parse error). */
DvfsPowerModel loadModel(const std::string &path);

/** Serialize a training campaign to text. */
std::string serializeTrainingData(const TrainingData &data);

/** Parse serializeTrainingData output (fatal on error). */
TrainingData deserializeTrainingData(const std::string &text);

/** Write a training campaign to a file (fatal on I/O failure). */
void saveTrainingData(const TrainingData &data,
                      const std::string &path);

/** Read a campaign written by saveTrainingData. */
TrainingData loadTrainingData(const std::string &path);

/**
 * Serialize a partially executed campaign as JSON. Doubles are
 * written at round-trip precision so a resumed campaign reproduces
 * an uninterrupted one bit-for-bit.
 */
std::string serializeCampaignCheckpoint(const CampaignCheckpoint &ck);

/** Parse serializeCampaignCheckpoint output (fatal on error). */
CampaignCheckpoint
deserializeCampaignCheckpoint(const std::string &text);

/**
 * Write a checkpoint to a file. The write goes to a temporary file
 * first and is renamed into place, so a crash mid-write cannot leave
 * a truncated checkpoint behind.
 */
void saveCampaignCheckpoint(const CampaignCheckpoint &ck,
                            const std::string &path);

/** Read a checkpoint written by saveCampaignCheckpoint. */
CampaignCheckpoint loadCampaignCheckpoint(const std::string &path);

} // namespace model
} // namespace gpupm

#endif // GPUPM_CORE_MODEL_IO_HH
