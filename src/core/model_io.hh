/**
 * @file
 * File persistence for models, training campaigns and checkpoints.
 *
 * A real deployment separates the expensive measurement campaign from
 * model fitting and from prediction-time use: the campaign output and
 * the fitted model are both persisted as plain text so they can be
 * archived, diffed and shipped (the virtual-sensor use case ships a
 * model file to machines that have no sensor at all). That makes
 * these files trust boundaries: they arrive over networks, out of
 * object stores and from operators' editors, and a corrupt or stale
 * artifact must surface as a typed, reportable error — never as an
 * aborted process on the machine that merely tried to read it.
 *
 * On-disk format (v2): a one-line envelope followed by the payload,
 *
 *     gpupm-file <kind> v2 crc32 <8-hex> bytes <n>\n
 *     <payload: exactly n bytes>
 *
 * where <kind> is model | campaign | checkpoint and the CRC32 (IEEE,
 * zlib variant) covers the payload bytes. Loaders verify the kind,
 * version, declared size (truncation) and checksum (corruption)
 * before parsing, and still accept legacy v0 files — payloads written
 * before the envelope existed — unless LoadOptions says otherwise.
 * Checkpoint payloads remain plain JSON: `tail -n +2 ck | jq .`.
 *
 * Every loader exists in two forms: a typed `try*` form returning
 * IoExpected (the deployment-facing API: ParseError, VersionMismatch,
 * ChecksumMismatch, IoError, ValidationError) and the original
 * fatal-on-error convenience wrapper used by code that has no
 * recovery story anyway.
 */

#ifndef GPUPM_CORE_MODEL_IO_HH
#define GPUPM_CORE_MODEL_IO_HH

#include <string>
#include <string_view>

#include "core/campaign.hh"
#include "core/estimator.hh"
#include "core/power_model.hh"
#include "core/resilient.hh"
#include "obs/scoreboard.hh"

namespace gpupm
{
namespace model
{

// -- Typed error vocabulary of the persistence layer -----------------

/** Failure taxonomy of artifact loading and saving. */
enum class IoErrc
{
    IoError,          ///< open / read / write / rename failed
    ParseError,       ///< malformed envelope or payload (incl. NaN)
    VersionMismatch,  ///< recognized format, unsupported version
    ChecksumMismatch, ///< payload does not match its declared CRC32
    ValidationError,  ///< parsed cleanly but physically implausible
};

/** Display name of an I/O error code. */
std::string_view ioErrcName(IoErrc code);

/** Typed failure description of a persistence operation. */
struct IoStatus
{
    IoErrc code = IoErrc::IoError;
    std::string message;
};

/** Value-or-typed-error result of a persistence operation. */
template <typename T>
using IoExpected = Expected<T, IoStatus>;

/** Artifact kind carried by a file. */
enum class FileKind
{
    Model,
    Campaign,
    Checkpoint,
    Scoreboard,
    FleetShard, ///< one shard's device outcomes (src/fleet)
    Fleet,      ///< merged fleet scoreboard (src/fleet)
};

/** Envelope token of a file kind ("model" | "campaign" | ...). */
std::string_view fileKindName(FileKind kind);

/** Loader policy knobs. */
struct LoadOptions
{
    /** Accept legacy v0 payloads (no envelope, no checksum). */
    bool allow_legacy = true;
    /**
     * Run the core/validate physical-plausibility checks after
     * parsing and fail with ValidationError when they find errors.
     */
    bool validate = false;
};

/** Wrap a payload in the versioned, checksummed v2 envelope. */
std::string wrapEnvelope(FileKind kind, const std::string &payload);

/**
 * Verify and strip a v2 envelope of the expected kind: magic, kind,
 * version, declared payload size and CRC32 are checked in trust order
 * and the payload returned. Typed errors (ParseError /
 * VersionMismatch / ChecksumMismatch), never an exception — the
 * fleet-shard checkpoint loader runs this on files a crashed or
 * chaos-killed writer may have torn.
 */
IoExpected<std::string> tryUnwrapEnvelope(const std::string &text,
                                          FileKind want);

/** Read a whole file as bytes (typed IoError on failure). */
IoExpected<std::string> tryReadFileText(const std::string &path);

/**
 * Write a file crash-safely: the bytes go to `path + ".tmp"` first
 * and are renamed into place (atomic within a POSIX directory), so an
 * interrupted writer can never leave a truncated file at `path`. The
 * value is always `true`.
 */
IoExpected<bool> tryWriteFileAtomic(const std::string &path,
                                    const std::string &text);

/**
 * Sniff the artifact kind of file content: the v2 envelope's kind
 * token, or the legacy payload magic. ParseError when it is neither.
 */
IoExpected<FileKind> detectFileKind(const std::string &text);

// -- Models ----------------------------------------------------------

/** Serialize a fitted model (v2 envelope around the text payload). */
std::string serializeModel(const DvfsPowerModel &model);

/** Parse serializeModel output or a legacy v0 model payload. */
IoExpected<DvfsPowerModel>
tryParseModel(const std::string &text, const LoadOptions &opts = {});

/** Read and parse a model file. */
IoExpected<DvfsPowerModel>
tryLoadModel(const std::string &path, const LoadOptions &opts = {});

/** Write a fitted model to a file. The value is always `true`. */
IoExpected<bool> trySaveModel(const DvfsPowerModel &model,
                              const std::string &path);

/** Write a fitted model to a file (fatal on I/O failure). */
void saveModel(const DvfsPowerModel &model, const std::string &path);

/** Read a model written by saveModel (fatal on any error). */
DvfsPowerModel loadModel(const std::string &path);

// -- Training campaigns ----------------------------------------------

/** Serialize a campaign (v2 envelope around the text payload). */
std::string serializeTrainingData(const TrainingData &data);

/** Parse serializeTrainingData output or a legacy v0 payload. */
IoExpected<TrainingData>
tryParseTrainingData(const std::string &text,
                     const LoadOptions &opts = {});

/** Read and parse a campaign file. */
IoExpected<TrainingData>
tryLoadTrainingData(const std::string &path,
                    const LoadOptions &opts = {});

/** Write a campaign to a file. The value is always `true`. */
IoExpected<bool> trySaveTrainingData(const TrainingData &data,
                                     const std::string &path);

/** Parse serializeTrainingData output (fatal on error). */
TrainingData deserializeTrainingData(const std::string &text);

/** Write a training campaign to a file (fatal on I/O failure). */
void saveTrainingData(const TrainingData &data,
                      const std::string &path);

/** Read a campaign written by saveTrainingData (fatal on error). */
TrainingData loadTrainingData(const std::string &path);

// -- Campaign checkpoints --------------------------------------------

/**
 * Serialize a partially executed campaign (v2 envelope around a JSON
 * payload). Doubles are written at round-trip precision so a resumed
 * campaign reproduces an uninterrupted one bit-for-bit.
 */
std::string serializeCampaignCheckpoint(const CampaignCheckpoint &ck);

/** Parse serializeCampaignCheckpoint output or legacy v0 JSON. */
IoExpected<CampaignCheckpoint>
tryParseCampaignCheckpoint(const std::string &text,
                           const LoadOptions &opts = {});

/** Read and parse a checkpoint file. */
IoExpected<CampaignCheckpoint>
tryLoadCampaignCheckpoint(const std::string &path,
                          const LoadOptions &opts = {});

/**
 * Write a checkpoint to a file. The write goes to a temporary file
 * first and is renamed into place, so a crash mid-write cannot leave
 * a truncated checkpoint behind. The value is always `true`.
 */
IoExpected<bool> trySaveCampaignCheckpoint(const CampaignCheckpoint &ck,
                                           const std::string &path);

// -- Accuracy scoreboards --------------------------------------------

/**
 * Serialize an accuracy scoreboard (v2 envelope around the JSON
 * payload). Summary-only when include_samples is false — the form
 * golden scoreboards under bench/golden/ are stored in.
 */
std::string serializeScoreboard(const obs::Scoreboard &sb,
                                bool include_samples = true);

/** Parse serializeScoreboard output or a legacy raw JSON payload. */
IoExpected<obs::Scoreboard>
tryParseScoreboard(const std::string &text,
                   const LoadOptions &opts = {});

/** Read and parse a scoreboard file. */
IoExpected<obs::Scoreboard>
tryLoadScoreboard(const std::string &path,
                  const LoadOptions &opts = {});

/** Write a scoreboard to a file. The value is always `true`. */
IoExpected<bool> trySaveScoreboard(const obs::Scoreboard &sb,
                                   const std::string &path,
                                   bool include_samples = true);

/** Parse serializeCampaignCheckpoint output (fatal on error). */
CampaignCheckpoint
deserializeCampaignCheckpoint(const std::string &text);

/** Write a checkpoint to a file (fatal on failure). */
void saveCampaignCheckpoint(const CampaignCheckpoint &ck,
                            const std::string &path);

/** Read a checkpoint written by saveCampaignCheckpoint. */
CampaignCheckpoint loadCampaignCheckpoint(const std::string &path);

} // namespace model
} // namespace gpupm

#endif // GPUPM_CORE_MODEL_IO_HH
