#include "governor.hh"

#include "common/logging.hh"
#include "core/metrics.hh"

namespace gpupm
{
namespace model
{

OnlineGovernor::OnlineGovernor(const DvfsPowerModel &model,
                               nvml::Device &device,
                               cupti::Profiler &profiler,
                               GovernorPolicy policy)
    : model_(model),
      device_(device),
      profiler_(profiler),
      policy_(policy),
      scaler_(model.reference())
{
    if (policy_.objective == GovernorObjective::PowerCap) {
        GPUPM_ASSERT(policy_.power_cap_w > 0.0,
                     "PowerCap objective needs a positive budget");
    }
    GPUPM_ASSERT(policy_.max_slowdown >= 1.0,
                 "max_slowdown below 1 is unsatisfiable");
}

GovernorDecision
OnlineGovernor::decide(const gpu::ComponentArray &util) const
{
    const GovernorDecision *best = nullptr;
    GovernorDecision candidate, chosen;
    double best_score = 0.0;

    for (const auto &[key, v] : model_.voltageTable()) {
        const gpu::FreqConfig cfg{key.first, key.second};
        candidate.cfg = cfg;
        candidate.predicted_power_w =
                model_.predict(util, cfg).total_w;
        candidate.predicted_slowdown = scaler_.slowdown(util, cfg);
        if (candidate.predicted_slowdown > policy_.max_slowdown)
            continue;

        double score = 0.0;
        switch (policy_.objective) {
          case GovernorObjective::MinPower:
            score = candidate.predicted_power_w;
            break;
          case GovernorObjective::MinEnergy:
            score = candidate.predicted_power_w *
                    candidate.predicted_slowdown;
            break;
          case GovernorObjective::MinEnergyDelay:
            score = candidate.predicted_power_w *
                    candidate.predicted_slowdown *
                    candidate.predicted_slowdown;
            break;
          case GovernorObjective::PowerCap:
            if (candidate.predicted_power_w > policy_.power_cap_w)
                continue;
            // Fastest under the cap.
            score = candidate.predicted_slowdown;
            break;
        }
        if (!best || score < best_score) {
            chosen = candidate;
            best = &chosen;
            best_score = score;
        }
    }

    if (!best) {
        // Nothing satisfies the constraints: fall back to the most
        // frugal configuration available.
        warn("governor: no configuration satisfies the policy; "
             "falling back to minimum predicted power");
        GovernorPolicy relaxed;
        relaxed.objective = GovernorObjective::MinPower;
        OnlineGovernor tmp(model_, device_, profiler_, relaxed);
        return tmp.decide(util);
    }
    return chosen;
}

GovernorDecision
OnlineGovernor::onKernelLaunch(const sim::KernelDemand &demand)
{
    GPUPM_ASSERT(!demand.name.empty(), "governor needs kernel names");

    if (auto it = cache_.find(demand.name); it != cache_.end()) {
        CacheEntry &entry = it->second;
        const bool stale =
                policy_.reprofile_period > 0 &&
                ++entry.launches_since_profile >=
                        policy_.reprofile_period;
        if (!stale) {
            GovernorDecision d = entry.decision;
            d.from_cache = true;
            device_.setApplicationClocks(d.cfg.mem_mhz,
                                         d.cfg.core_mhz);
            return d;
        }
        cache_.erase(it); // phase may have changed: re-profile
    }

    // First sight: profile one invocation at the reference
    // configuration (the events that feed Eqs. 8-10 are only
    // meaningful there).
    const gpu::FreqConfig ref = model_.reference();
    device_.setApplicationClocks(ref.mem_mhz, ref.core_mhz);
    const auto rm = profiler_.profile(demand, ref);
    const auto util = utilizationsFromMetrics(
            rm, device_.descriptor(), ref);

    GovernorDecision d = decide(util);
    device_.setApplicationClocks(d.cfg.mem_mhz, d.cfg.core_mhz);
    cache_[demand.name] = {d, 0};
    return d;
}

std::optional<GovernorDecision>
OnlineGovernor::cachedDecision(const std::string &kernel_name) const
{
    auto it = cache_.find(kernel_name);
    if (it == cache_.end())
        return std::nullopt;
    return it->second.decision;
}

} // namespace model
} // namespace gpupm
