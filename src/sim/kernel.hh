/**
 * @file
 * Workload description consumed by the simulated GPU substrate.
 *
 * A KernelDemand is the device-wide resource demand of one kernel
 * launch: how many warp-instructions it issues to each execution-unit
 * class and how many bytes it moves at each memory level. Both the
 * microbenchmark suite (Sec. IV) and the validation applications
 * (Table III) are expressed this way; the performance model turns a
 * demand plus a V-F configuration into an execution time and true
 * component utilizations.
 */

#ifndef GPUPM_SIM_KERNEL_HH
#define GPUPM_SIM_KERNEL_HH

#include <string>

#include "gpu/components.hh"

namespace gpupm
{
namespace sim
{

/** Device-wide resource demand of a single kernel launch. */
struct KernelDemand
{
    std::string name;

    /** Warp-instructions retired by the INT units. */
    double warps_int = 0.0;
    /** Warp-instructions retired by the SP units. */
    double warps_sp = 0.0;
    /** Warp-instructions retired by the DP units. */
    double warps_dp = 0.0;
    /** Warp-instructions retired by the SF units. */
    double warps_sf = 0.0;
    /**
     * Other issued warp-instructions (control flow, moves, predicates,
     * texture). These consume issue slots and burn power, but no
     * Table I event observes them — they are the paper's "non-modelled
     * components" error source.
     */
    double warps_other = 0.0;

    /** Bytes read from / written to DRAM. */
    double bytes_dram_rd = 0.0;
    double bytes_dram_wr = 0.0;
    /** Bytes read from / written to the L2 cache. */
    double bytes_l2_rd = 0.0;
    double bytes_l2_wr = 0.0;
    /** Bytes loaded from / stored to shared memory. */
    double bytes_shared_ld = 0.0;
    double bytes_shared_st = 0.0;

    /**
     * Core-clock cycles of exposed dependent-chain latency that extra
     * parallelism cannot hide (low-occupancy kernels). Adds a floor to
     * the execution time that scales with 1/fcore.
     */
    double latency_cycles = 0.0;

    /**
     * Relative warp-counter distortion this kernel induces on devices
     * with fragile event semantics (replays from divergent memory
     * accesses, atomics, texture traffic — activity the register-only
     * microbenchmarks never exercise, so the model fit cannot calibrate
     * it away). Scaled per architecture by the CUPTI facade; ~0 for
     * synthetic microbenchmarks, up to +-0.3 for real applications.
     */
    double counter_distortion = 0.0;

    /** True when the demand carries no work at all (the Idle case). */
    bool empty() const;

    /** Demand scaled by a repetition factor (kernel run s times). */
    KernelDemand scaled(double s) const;

    /** Sum of all issued warp-instructions (incl. other). */
    double totalWarpInstructions() const;
};

} // namespace sim
} // namespace gpupm

#endif // GPUPM_SIM_KERNEL_HH
