#include "kernel.hh"

namespace gpupm
{
namespace sim
{

bool
KernelDemand::empty() const
{
    return totalWarpInstructions() == 0.0 && bytes_dram_rd == 0.0 &&
           bytes_dram_wr == 0.0 && bytes_l2_rd == 0.0 &&
           bytes_l2_wr == 0.0 && bytes_shared_ld == 0.0 &&
           bytes_shared_st == 0.0 && latency_cycles == 0.0;
}

KernelDemand
KernelDemand::scaled(double s) const
{
    KernelDemand d = *this;
    d.warps_int *= s;
    d.warps_sp *= s;
    d.warps_dp *= s;
    d.warps_sf *= s;
    d.warps_other *= s;
    d.bytes_dram_rd *= s;
    d.bytes_dram_wr *= s;
    d.bytes_l2_rd *= s;
    d.bytes_l2_wr *= s;
    d.bytes_shared_ld *= s;
    d.bytes_shared_st *= s;
    d.latency_cycles *= s;
    return d;
}

double
KernelDemand::totalWarpInstructions() const
{
    return warps_int + warps_sp + warps_dp + warps_sf + warps_other;
}

} // namespace sim
} // namespace gpupm
