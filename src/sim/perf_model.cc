#include "perf_model.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace gpupm
{
namespace sim
{

using gpu::Component;
using gpu::componentIndex;

AnalyticPerfModel::AnalyticPerfModel(double overlap_p, int issue_slots)
    : overlap_p_(overlap_p), issue_slots_(issue_slots)
{
    GPUPM_ASSERT(overlap_p >= 1.0, "p-norm exponent must be >= 1, got ",
                 overlap_p);
    GPUPM_ASSERT(issue_slots >= 1, "issue slots must be >= 1");
}

ExecutionProfile
AnalyticPerfModel::execute(const gpu::DeviceDescriptor &dev,
                           const KernelDemand &demand,
                           const gpu::FreqConfig &cfg) const
{
    GPUPM_ASSERT(cfg.core_mhz > 0 && cfg.mem_mhz > 0,
                 "non-positive frequency");

    ExecutionProfile prof;
    if (demand.empty())
        return prof;

    const double fc_hz = 1e6 * cfg.core_mhz;

    // Per-resource service times.
    gpu::ComponentArray t{};
    t[componentIndex(Component::Int)] =
            demand.warps_int /
            dev.peakWarpsPerSecond(Component::Int, cfg.core_mhz);
    t[componentIndex(Component::SP)] =
            demand.warps_sp /
            dev.peakWarpsPerSecond(Component::SP, cfg.core_mhz);
    t[componentIndex(Component::DP)] =
            demand.warps_dp /
            dev.peakWarpsPerSecond(Component::DP, cfg.core_mhz);
    t[componentIndex(Component::SF)] =
            demand.warps_sf /
            dev.peakWarpsPerSecond(Component::SF, cfg.core_mhz);
    t[componentIndex(Component::Shared)] =
            (demand.bytes_shared_ld + demand.bytes_shared_st) /
            dev.peakBandwidth(Component::Shared, cfg);
    t[componentIndex(Component::L2)] =
            (demand.bytes_l2_rd + demand.bytes_l2_wr) /
            dev.peakBandwidth(Component::L2, cfg);
    t[componentIndex(Component::Dram)] =
            (demand.bytes_dram_rd + demand.bytes_dram_wr) /
            dev.peakBandwidth(Component::Dram, cfg);

    const double t_issue =
            demand.totalWarpInstructions() /
            (fc_hz * dev.num_sms * issue_slots_);
    const double t_latency = demand.latency_cycles / fc_hz;

    // Smooth maximum over all contributors.
    double sum_p = std::pow(t_latency, overlap_p_) +
                   std::pow(t_issue, overlap_p_);
    for (double ti : t)
        sum_p += std::pow(ti, overlap_p_);
    const double time = std::pow(sum_p, 1.0 / overlap_p_);
    GPUPM_ASSERT(time > 0.0, "zero execution time for non-empty demand");

    prof.time_s = time;
    prof.active_cycles = time * fc_hz;
    for (std::size_t i = 0; i < gpu::kNumComponents; ++i)
        prof.util[i] = t[i] / time;
    prof.util_issue = t_issue / time;

    prof.achieved_bw[componentIndex(Component::Shared)] =
            (demand.bytes_shared_ld + demand.bytes_shared_st) / time;
    prof.achieved_bw[componentIndex(Component::L2)] =
            (demand.bytes_l2_rd + demand.bytes_l2_wr) / time;
    prof.achieved_bw[componentIndex(Component::Dram)] =
            (demand.bytes_dram_rd + demand.bytes_dram_wr) / time;

    return prof;
}

} // namespace sim
} // namespace gpupm
