/**
 * @file
 * Ground-truth "silicon": the hidden physical power model of each
 * simulated device.
 *
 * This class plays the role the actual GPU board plays in the paper:
 * given a kernel and a V-F configuration it produces the *true* average
 * power, computed from the true (frequency-dependent) utilizations, the
 * true voltage curves and the true per-component coefficients. The
 * estimator under test only ever observes this through the NVML facade
 * (noisy, sampled power) and the CUPTI facade (noisy counters at the
 * reference configuration) — it must recover these hidden parameters.
 *
 * The true power follows the same structural decomposition the paper
 * argues from Eqs. 1-2 (static ~ V, constant-per-level ~ V^2 f, dynamic
 * ~ V^2 f U), plus a deliberately unmodelled term driven by issue-stage
 * activity that no Table I event exposes — the paper's "power of other
 * non-modelled GPU components".
 */

#ifndef GPUPM_SIM_PHYSICAL_GPU_HH
#define GPUPM_SIM_PHYSICAL_GPU_HH

#include "gpu/device.hh"
#include "sim/kernel.hh"
#include "sim/perf_model.hh"
#include "sim/voltage.hh"

namespace gpupm
{
namespace sim
{

/** Hidden physical coefficients of one device. */
struct GroundTruth
{
    double static_core_w = 0.0;   ///< core static power at Vref, W
    double idle_core_w_ghz = 0.0; ///< core V^2 f idle coefficient, W/GHz
    double static_mem_w = 0.0;    ///< memory static power at Vref, W
    double idle_mem_w_ghz = 0.0;  ///< memory V^2 f idle coeff, W/GHz

    /**
     * Dynamic coefficient per modelled component, W/GHz at full
     * utilization and reference voltage. The DRAM slot belongs to the
     * memory domain; all others to the core domain.
     */
    gpu::ComponentArray gamma_w_ghz{};

    /** Hidden issue-activity coefficient (unmodelled power), W/GHz. */
    double gamma_issue_w_ghz = 0.0;

    /**
     * Active-residency coefficient, W/GHz: dynamic power the SMs burn
     * whenever a kernel is resident, even while every warp is stalled
     * on memory (scheduler polling, scoreboards, clock trees). This is
     * why a memory-stretched kernel does not see its core power drop
     * proportionally to its utilization on real boards.
     */
    double gamma_active_w_ghz = 0.0;

    /** True core-domain V(f). */
    VoltageCurve core_voltage = VoltageCurve::constant(1.0);
    /** True memory-domain V(f) (constant on all three devices). */
    VoltageCurve mem_voltage = VoltageCurve::constant(1.35);

    /**
     * Thermal feedback (disabled by default). When the thermal
     * resistance is non-zero, the steady-state die temperature is
     * T = ambient + R * P, and the static power grows with
     * temperature (leakage): static *= 1 + k * (T - ambient). The
     * paper's model (like most event-based models) has no temperature
     * input, so enabling this creates a power component it cannot
     * explain — the substrate's built-in limitation study.
     */
    double thermal_resistance_c_w = 0.0; ///< deg C per watt
    double ambient_c = 25.0;             ///< ambient temperature
    double leakage_temp_coeff = 0.0;     ///< static fraction per deg C
};

/** Per-domain/per-component decomposition of a true power sample. */
struct TruePowerBreakdown
{
    double total_w = 0.0;
    double constant_w = 0.0;       ///< static + idle, both domains
    double core_dynamic_w = 0.0;   ///< modelled core components
    double mem_dynamic_w = 0.0;    ///< DRAM dynamic
    double hidden_w = 0.0;         ///< unmodelled issue-driven power
    gpu::ComponentArray component_w{};
    /** Steady-state die temperature (ambient when thermal feedback is
     *  disabled). */
    double temperature_c = 25.0;
};

/** The simulated board: descriptor + ground truth + perf model. */
class PhysicalGpu
{
  public:
    /** Build the simulated board for one of the evaluated devices. */
    explicit PhysicalGpu(gpu::DeviceKind kind);

    /** Build with explicit ground truth (for tests and ablations). */
    PhysicalGpu(const gpu::DeviceDescriptor &desc, GroundTruth truth,
                AnalyticPerfModel perf = AnalyticPerfModel());

    const gpu::DeviceDescriptor &descriptor() const { return desc_; }
    const GroundTruth &groundTruth() const { return truth_; }
    const AnalyticPerfModel &perfModel() const { return perf_; }

    /** Execute a kernel, returning its true execution profile. */
    ExecutionProfile execute(const KernelDemand &demand,
                             const gpu::FreqConfig &cfg) const;

    /** True average power while running the given profile. */
    TruePowerBreakdown truePower(const ExecutionProfile &prof,
                                 const gpu::FreqConfig &cfg) const;

    /** True power with the GPU awake but no kernel resident. */
    TruePowerBreakdown idlePower(const gpu::FreqConfig &cfg) const;

    /** True normalized core voltage at a core frequency. */
    double trueCoreVoltageNorm(int core_mhz) const;

    /** True normalized memory voltage at a memory frequency. */
    double trueMemVoltageNorm(int mem_mhz) const;

    /** Default ground truth used for a device kind. */
    static GroundTruth defaultGroundTruth(gpu::DeviceKind kind);

  private:
    gpu::DeviceDescriptor desc_;
    GroundTruth truth_;
    AnalyticPerfModel perf_;
};

} // namespace sim
} // namespace gpupm

#endif // GPUPM_SIM_PHYSICAL_GPU_HH
