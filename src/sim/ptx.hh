/**
 * @file
 * PTX-subset kernel frontend.
 *
 * The paper specifies its microbenchmarks at the PTX level (Fig. 4:
 * four fused-multiply-add chains, 32-wide unrolling, add/setp/bra
 * bookkeeping). This module parses that PTX subset into the
 * LoopKernel representation the cycle-level SM simulator executes and
 * into the aggregate KernelDemand the analytic substrate consumes, so
 * new microbenchmarks can be authored exactly the way the paper
 * presents them.
 *
 * Supported instruction classes:
 *  - arithmetic: add/sub/mul/mad/fma/div on .f32 (SP), .f64 (DP) and
 *    .s32/.u32/.b32 (INT);
 *  - transcendental: sin/cos/lg2/ex2/sqrt/rsqrt .approx (SF);
 *  - memory: ld.global/st.global (L2+DRAM), ld.shared/st.shared;
 *  - everything else (mov, cvt, setp, bra, labels) issues only.
 *
 * Loop structure: the region between a label and the backward `bra`
 * to it is the loop body; the trip count is inferred from the
 * `setp`/`add` bookkeeping (bound / per-iteration increment) or can
 * be overridden.
 */

#ifndef GPUPM_SIM_PTX_HH
#define GPUPM_SIM_PTX_HH

#include <string>

#include "sim/kernel.hh"
#include "sim/sm_cycle_sim.hh"

namespace gpupm
{
namespace sim
{

/** Parse a PTX-subset kernel body into a LoopKernel. Fatal on
 *  malformed input.
 *
 * @param text  PTX text (comments with // are ignored).
 * @param trip_count_override  when non-zero, overrides the inferred
 *                             loop trip count.
 */
LoopKernel parsePtxKernel(const std::string &text,
                          std::uint64_t trip_count_override = 0);

/**
 * Derive the device-wide aggregate demand of launching a LoopKernel
 * over the given number of threads (32 threads per warp; memory
 * instruction bytes are per warp).
 *
 * @param kernel  parsed kernel.
 * @param threads  total launched threads.
 * @param name  kernel name for the demand.
 * @param l2_resident_global  account global traffic as L2-only
 *                            (working set fits in L2).
 */
KernelDemand demandFromLoop(const LoopKernel &kernel, double threads,
                            const std::string &name);

} // namespace sim
} // namespace gpupm

#endif // GPUPM_SIM_PTX_HH
