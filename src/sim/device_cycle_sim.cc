#include "device_cycle_sim.hh"

#include <vector>

#include "common/logging.hh"
#include "sim/pipeline_detail.hh"

namespace gpupm
{
namespace sim
{

using gpu::Component;
using gpu::componentIndex;

namespace
{

using detail::TokenBucket;
using detail::latencyOf;
using detail::unitOf;

/** Per-warp execution state. */
struct Warp
{
    bool active = false;
    int block = -1;              // owning block id
    std::size_t phase = 0;       // 0 prologue, 1 body, 2 epilogue
    std::size_t pc = 0;
    std::uint64_t trips_left = 0;
    std::uint64_t ready_at = 0;
    std::uint64_t chain_ready = 0;
    bool done = false;
};

/** Per-SM pipeline state. */
struct Sm
{
    Sm(const gpu::DeviceDescriptor &dev, double warp_size)
        : int_units(dev.sp_int_units_per_sm / warp_size),
          sp_units(dev.sp_int_units_per_sm / warp_size),
          dp_units(dev.dp_units_per_sm / warp_size),
          sf_units(dev.sf_units_per_sm / warp_size),
          shared_bw(dev.shared_banks * 4.0),
          l2_bw(dev.l2_bytes_per_cycle / dev.num_sms)
    {}

    TokenBucket int_units, sp_units, dp_units, sf_units;
    TokenBucket shared_bw, l2_bw;
    std::vector<Warp> warps;
    int resident_blocks = 0;

    void
    tick()
    {
        int_units.tick();
        sp_units.tick();
        dp_units.tick();
        sf_units.tick();
        shared_bw.tick();
        l2_bw.tick();
    }

    TokenBucket *
    bucketFor(InstrClass cls)
    {
        switch (cls) {
          case InstrClass::Int: return &int_units;
          case InstrClass::SP: return &sp_units;
          case InstrClass::DP: return &dp_units;
          case InstrClass::SF: return &sf_units;
          default: return nullptr;
        }
    }
};

const std::vector<Instr> &
phaseInstrs(const LoopKernel &k, std::size_t phase)
{
    switch (phase) {
      case 0: return k.prologue;
      case 1: return k.body;
      default: return k.epilogue;
    }
}

/** Initialize a warp at the start of the kernel. */
void
resetWarp(Warp &w, const LoopKernel &kernel, int block)
{
    w.active = true;
    w.block = block;
    w.phase = 0;
    w.pc = 0;
    w.trips_left = std::max<std::uint64_t>(kernel.trip_count, 1);
    w.ready_at = 0;
    w.chain_ready = 0;
    w.done = false;
    if (kernel.prologue.empty()) {
        w.phase = kernel.body.empty() || kernel.trip_count == 0 ? 2
                                                                : 1;
        if (w.phase == 2 && kernel.epilogue.empty())
            w.done = true;
    }
}

} // namespace

DeviceCycleSim::DeviceCycleSim(const gpu::DeviceDescriptor &dev,
                               const gpu::FreqConfig &cfg)
    : dev_(dev), cfg_(cfg)
{
    GPUPM_ASSERT(cfg.core_mhz > 0 && cfg.mem_mhz > 0,
                 "bad configuration");
}

DeviceSimResult
DeviceCycleSim::run(const LoopKernel &kernel,
                    const LaunchConfig &launch,
                    std::uint64_t max_cycles)
{
    GPUPM_ASSERT(launch.blocks >= 1 && launch.warps_per_block >= 1 &&
                         launch.blocks_per_sm >= 1,
                 "bad launch configuration");

    const double ws = dev_.warp_size;
    std::vector<Sm> sms(dev_.num_sms, Sm(dev_, ws));
    for (auto &sm : sms)
        sm.warps.resize(static_cast<std::size_t>(
                launch.warps_per_block * launch.blocks_per_sm));

    // One shared DRAM pool for the whole board, in bytes per *core*
    // cycle.
    const double clock_ratio =
            static_cast<double>(cfg_.mem_mhz) / cfg_.core_mhz;
    TokenBucket dram_bw(dev_.mem_bus_bytes * clock_ratio);

    // Block scheduler state.
    int next_block = 0;
    int blocks_done = 0;
    std::vector<int> block_live_warps(launch.blocks, 0);

    const auto place_block = [&](Sm &sm) {
        if (next_block >= launch.blocks ||
            sm.resident_blocks >= launch.blocks_per_sm)
            return false;
        const int block = next_block++;
        int live = 0, placed = 0;
        for (auto &w : sm.warps) {
            if (placed == launch.warps_per_block)
                break;
            if (w.active)
                continue;
            resetWarp(w, kernel, block);
            ++placed;
            if (w.done)
                w.active = false; // degenerate empty kernel
            else
                ++live;
        }
        if (live == 0) {
            // Empty kernel: the block retires immediately.
            ++blocks_done;
        } else {
            block_live_warps[block] = live;
            ++sm.resident_blocks;
        }
        return true;
    };

    // Initial placement: fill every SM up to its block limit.
    for (auto &sm : sms)
        while (place_block(sm)) {
        }

    DeviceSimResult result;
    gpu::ComponentArray warps_issued{};
    double bytes_dram = 0.0, bytes_l2 = 0.0, bytes_shared = 0.0;
    std::uint64_t issued_total = 0;
    std::uint64_t busy_sm_cycles = 0;
    const int issue_slots = 4;
    std::uint64_t cycle = 0;

    for (; blocks_done < launch.blocks && cycle < max_cycles;
         ++cycle) {
        dram_bw.tick();
        for (std::size_t s = 0; s < sms.size(); ++s) {
            Sm &sm = sms[s];
            sm.tick();
            if (sm.resident_blocks > 0)
                ++busy_sm_cycles;

            int slots = issue_slots;
            for (std::size_t k = 0;
                 k < sm.warps.size() && slots > 0; ++k) {
                Warp &w = sm.warps[(cycle + k) % sm.warps.size()];
                if (!w.active || w.ready_at > cycle)
                    continue;
                const auto &instrs = phaseInstrs(kernel, w.phase);
                if (w.pc >= instrs.size()) {
                    if (w.phase == 1 && --w.trips_left > 0) {
                        w.pc = 0;
                    } else {
                        ++w.phase;
                        w.pc = 0;
                        while (w.phase < 3 &&
                               phaseInstrs(kernel, w.phase).empty())
                            ++w.phase;
                        if (w.phase == 3) {
                            // Warp retires; maybe the block does too.
                            w.active = false;
                            if (--block_live_warps[w.block] == 0) {
                                ++blocks_done;
                                --sm.resident_blocks;
                                place_block(sm);
                            }
                        }
                    }
                    continue;
                }
                const Instr &ins = instrs[w.pc];
                if (ins.depends_on_prev && w.chain_ready > cycle)
                    continue;

                if (TokenBucket *bucket = sm.bucketFor(ins.cls)) {
                    if (!bucket->take(1.0))
                        continue;
                } else if (ins.cls == InstrClass::SharedLd ||
                           ins.cls == InstrClass::SharedSt) {
                    // Bank conflicts serialize into extra
                    // transactions.
                    if (!sm.shared_bw.take(ins.bytes *
                                           ins.conflict_ways))
                        continue;
                    bytes_shared += ins.bytes;
                } else if (ins.cls == InstrClass::GlobalLd ||
                           ins.cls == InstrClass::GlobalSt) {
                    const bool needs_dram =
                            !ins.l2_resident && ins.bytes > 0.0;
                    if (!sm.l2_bw.can(ins.bytes) ||
                        (needs_dram && !dram_bw.can(ins.bytes)))
                        continue;
                    sm.l2_bw.take(ins.bytes);
                    bytes_l2 += ins.bytes;
                    if (needs_dram) {
                        dram_bw.take(ins.bytes);
                        bytes_dram += ins.bytes;
                    }
                }

                --slots;
                ++issued_total;
                const Component unit = unitOf(ins.cls);
                if (unit != Component::NumComponents &&
                    unit != Component::Shared &&
                    unit != Component::L2)
                    warps_issued[componentIndex(unit)] += 1.0;

                w.chain_ready = cycle + latencyOf(ins.cls);
                w.ready_at = cycle + 1;
                ++w.pc;
            }
        }
    }

    GPUPM_ASSERT(blocks_done == launch.blocks,
                 "device simulation exceeded cycle budget (",
                 max_cycles, ")");

    result.cycles = cycle;
    result.time_s = static_cast<double>(cycle) /
                    (1e6 * cfg_.core_mhz);
    if (cycle == 0)
        return result;

    // Eq. 8 for the compute units (device-wide averages).
    const double sm_cycles =
            static_cast<double>(cycle) * dev_.num_sms;
    for (Component c : gpu::kComputeUnits) {
        const std::size_t i = componentIndex(c);
        result.util[i] = warps_issued[i] * dev_.warp_size /
                         (sm_cycles * dev_.unitsPerSm(c));
    }
    // Eq. 9 for the memory levels.
    result.util[componentIndex(Component::Shared)] =
            bytes_shared /
            (result.time_s *
             dev_.peakBandwidth(Component::Shared, cfg_));
    result.util[componentIndex(Component::L2)] =
            bytes_l2 /
            (result.time_s * dev_.peakBandwidth(Component::L2, cfg_));
    result.util[componentIndex(Component::Dram)] =
            bytes_dram /
            (result.time_s *
             dev_.peakBandwidth(Component::Dram, cfg_));

    result.issue_util = static_cast<double>(issued_total) /
                        (sm_cycles * issue_slots);
    result.occupancy = static_cast<double>(busy_sm_cycles) /
                       sm_cycles;
    return result;
}

} // namespace sim
} // namespace gpupm
