#include "physical_gpu.hh"

#include "common/logging.hh"
#include "common/numio.hh"
#include "obs/standard.hh"
#include "obs/trace.hh"

namespace gpupm
{
namespace sim
{

using gpu::Component;
using gpu::componentIndex;

namespace
{

/**
 * Ground-truth calibration. The absolute watt values are chosen so the
 * GTX Titan X reproduces the paper's anchor observations: ~80 W
 * constant power at the (975, 3505) reference (Fig. 10), ~50 W at
 * (975, 810), BlackScholes ~181 W dropping ~52% when fmem goes
 * 3505 -> 810, CUTCP ~135 W dropping ~24% (Fig. 2). The other devices
 * scale those coefficients by generation efficiency and TDP.
 */
GroundTruth
truthTitanXp()
{
    GroundTruth t;
    t.static_core_w = 16.0;
    t.idle_core_w_ghz = 11.0;
    t.static_mem_w = 9.0;
    t.idle_mem_w_ghz = 5.5;
    t.gamma_w_ghz[componentIndex(Component::Int)] = 30.0;
    t.gamma_w_ghz[componentIndex(Component::SP)] = 36.0;
    t.gamma_w_ghz[componentIndex(Component::DP)] = 48.0;
    t.gamma_w_ghz[componentIndex(Component::SF)] = 25.0;
    t.gamma_w_ghz[componentIndex(Component::Shared)] = 14.0;
    t.gamma_w_ghz[componentIndex(Component::L2)] = 22.0;
    t.gamma_w_ghz[componentIndex(Component::Dram)] = 9.5;
    t.gamma_issue_w_ghz = 6.0;
    t.gamma_active_w_ghz = 7.0;
    // Fig. 6b: flat below ~1.1 GHz, then linear to the 1911 MHz top.
    t.core_voltage = VoltageCurve::twoRegion(1088.0, 0.81, 1.31, 1911.0);
    t.mem_voltage = VoltageCurve::constant(1.35);
    return t;
}

GroundTruth
truthGtxTitanX()
{
    GroundTruth t;
    t.static_core_w = 15.0;
    t.idle_core_w_ghz = 13.0;
    t.static_mem_w = 8.0;
    t.idle_mem_w_ghz = 11.0;
    t.gamma_w_ghz[componentIndex(Component::Int)] = 50.0;
    t.gamma_w_ghz[componentIndex(Component::SP)] = 60.0;
    t.gamma_w_ghz[componentIndex(Component::DP)] = 75.0;
    t.gamma_w_ghz[componentIndex(Component::SF)] = 40.0;
    t.gamma_w_ghz[componentIndex(Component::Shared)] = 22.0;
    t.gamma_w_ghz[componentIndex(Component::L2)] = 35.0;
    t.gamma_w_ghz[componentIndex(Component::Dram)] = 18.0;
    t.gamma_issue_w_ghz = 9.0;
    t.gamma_active_w_ghz = 10.0;
    // Fig. 6a: flat below ~0.7 GHz, then linear to the 1164 MHz top.
    t.core_voltage = VoltageCurve::twoRegion(696.0, 0.95, 1.24, 1164.0);
    t.mem_voltage = VoltageCurve::constant(1.35);
    return t;
}

GroundTruth
truthTeslaK40c()
{
    GroundTruth t;
    t.static_core_w = 20.0;
    t.idle_core_w_ghz = 18.0;
    t.static_mem_w = 10.0;
    t.idle_mem_w_ghz = 12.0;
    t.gamma_w_ghz[componentIndex(Component::Int)] = 55.0;
    t.gamma_w_ghz[componentIndex(Component::SP)] = 66.0;
    t.gamma_w_ghz[componentIndex(Component::DP)] = 95.0;
    t.gamma_w_ghz[componentIndex(Component::SF)] = 45.0;
    t.gamma_w_ghz[componentIndex(Component::Shared)] = 26.0;
    t.gamma_w_ghz[componentIndex(Component::L2)] = 40.0;
    t.gamma_w_ghz[componentIndex(Component::Dram)] = 20.0;
    t.gamma_issue_w_ghz = 10.0;
    t.gamma_active_w_ghz = 12.0;
    // Kepler-era boards scale voltage with frequency over the whole
    // (narrow) range [4]; a knee at the bottom level makes the curve
    // effectively linear.
    t.core_voltage = VoltageCurve::twoRegion(666.0, 0.92, 1.06, 875.0);
    t.mem_voltage = VoltageCurve::constant(1.5);
    return t;
}

} // namespace

GroundTruth
PhysicalGpu::defaultGroundTruth(gpu::DeviceKind kind)
{
    switch (kind) {
      case gpu::DeviceKind::TitanXp: return truthTitanXp();
      case gpu::DeviceKind::GtxTitanX: return truthGtxTitanX();
      case gpu::DeviceKind::TeslaK40c: return truthTeslaK40c();
    }
    GPUPM_PANIC("unknown device kind");
}

PhysicalGpu::PhysicalGpu(gpu::DeviceKind kind)
    : desc_(gpu::DeviceDescriptor::get(kind)),
      truth_(defaultGroundTruth(kind)),
      perf_()
{}

PhysicalGpu::PhysicalGpu(const gpu::DeviceDescriptor &desc,
                         GroundTruth truth, AnalyticPerfModel perf)
    : desc_(desc), truth_(std::move(truth)), perf_(perf)
{}

ExecutionProfile
PhysicalGpu::execute(const KernelDemand &demand,
                     const gpu::FreqConfig &cfg) const
{
    GPUPM_ASSERT(desc_.supports(cfg), "unsupported config (",
                 cfg.core_mhz, ", ", cfg.mem_mhz, ") on ", desc_.name);
    GPUPM_TRACE_SPAN_NAMED(span, "sim", "sim.execute");
    span.arg("device", desc_.name);
    span.arg("config", numio::formatLong(cfg.core_mhz) + "/" +
                               numio::formatLong(cfg.mem_mhz));
    ExecutionProfile prof = perf_.execute(desc_, demand, cfg);
    obs::simKernelExecutionsTotal().inc();
    obs::simKernelTimeSeconds().observe(prof.time_s);
    return prof;
}

double
PhysicalGpu::trueCoreVoltageNorm(int core_mhz) const
{
    return truth_.core_voltage.normalized(core_mhz,
                                          desc_.default_core_mhz);
}

double
PhysicalGpu::trueMemVoltageNorm(int mem_mhz) const
{
    return truth_.mem_voltage.normalized(mem_mhz, desc_.default_mem_mhz);
}

TruePowerBreakdown
PhysicalGpu::truePower(const ExecutionProfile &prof,
                       const gpu::FreqConfig &cfg) const
{
    const double vc = trueCoreVoltageNorm(cfg.core_mhz);
    const double vm = trueMemVoltageNorm(cfg.mem_mhz);
    const double fc = 1e-3 * cfg.core_mhz; // GHz
    const double fm = 1e-3 * cfg.mem_mhz;  // GHz

    TruePowerBreakdown b;
    b.constant_w = truth_.static_core_w * vc +
                   vc * vc * fc * truth_.idle_core_w_ghz +
                   truth_.static_mem_w * vm +
                   vm * vm * fm * truth_.idle_mem_w_ghz;

    for (std::size_t i = 0; i < gpu::kNumComponents; ++i) {
        const bool is_dram =
                i == componentIndex(Component::Dram);
        const double vsq_f = is_dram ? vm * vm * fm : vc * vc * fc;
        b.component_w[i] = vsq_f * truth_.gamma_w_ghz[i] * prof.util[i];
        if (is_dram)
            b.mem_dynamic_w += b.component_w[i];
        else
            b.core_dynamic_w += b.component_w[i];
    }

    b.hidden_w = vc * vc * fc * truth_.gamma_issue_w_ghz *
                 prof.util_issue;
    if (prof.time_s > 0.0)
        b.hidden_w += vc * vc * fc * truth_.gamma_active_w_ghz;
    b.total_w = b.constant_w + b.core_dynamic_w + b.mem_dynamic_w +
                b.hidden_w;
    b.temperature_c = truth_.ambient_c;

    // Thermal feedback: the steady-state temperature raises leakage,
    // which raises temperature — a linear fixed point solved
    // iteratively. The static (constant) share carries the
    // temperature dependence.
    if (truth_.thermal_resistance_c_w > 0.0 &&
        truth_.leakage_temp_coeff > 0.0) {
        const double non_static = b.total_w - b.constant_w;
        const double base_static = b.constant_w;
        double total = b.total_w;
        for (int i = 0; i < 8; ++i) {
            const double temp =
                    truth_.ambient_c +
                    truth_.thermal_resistance_c_w * total;
            const double hot_static =
                    base_static *
                    (1.0 + truth_.leakage_temp_coeff *
                                   (temp - truth_.ambient_c));
            total = non_static + hot_static;
        }
        b.temperature_c = truth_.ambient_c +
                          truth_.thermal_resistance_c_w * total;
        b.constant_w = total - non_static;
        b.total_w = total;
    }
    return b;
}

TruePowerBreakdown
PhysicalGpu::idlePower(const gpu::FreqConfig &cfg) const
{
    return truePower(ExecutionProfile{}, cfg);
}

} // namespace sim
} // namespace gpupm
