/**
 * @file
 * Ground-truth voltage-frequency curves.
 *
 * The paper's Fig. 6 measurements show two regions for the core supply
 * voltage of modern NVIDIA GPUs: a constant floor at low frequencies
 * and a linear ramp above a knee frequency. The ground truth encodes
 * exactly that shape; the estimator never sees it and has to recover it
 * from power measurements alone.
 */

#ifndef GPUPM_SIM_VOLTAGE_HH
#define GPUPM_SIM_VOLTAGE_HH

namespace gpupm
{
namespace sim
{

/** Piecewise (flat, then linear) V(f) curve. */
class VoltageCurve
{
  public:
    /** A constant-voltage curve (the memory domain case). */
    static VoltageCurve constant(double volts);

    /**
     * Flat-then-linear curve.
     *
     * @param knee_mhz  frequency below which the voltage is flat.
     * @param v_floor   voltage in the flat region, volts.
     * @param v_top     voltage at top_mhz, volts.
     * @param top_mhz   highest supported frequency.
     */
    static VoltageCurve twoRegion(double knee_mhz, double v_floor,
                                  double v_top, double top_mhz);

    /**
     * Staircase variant: the same flat+linear envelope, but quantized
     * to discrete supply steps (real DVFS tables map several adjacent
     * frequency bins to one voltage level). step_v = 0 disables
     * quantization.
     */
    VoltageCurve quantized(double step_v) const;

    /** Absolute voltage at a frequency, volts. */
    double volts(double f_mhz) const;

    /** Voltage normalized to the voltage at a reference frequency. */
    double normalized(double f_mhz, double ref_mhz) const
    {
        return volts(f_mhz) / volts(ref_mhz);
    }

    /** Knee frequency (0 for constant curves). */
    double kneeMhz() const { return knee_mhz_; }

  private:
    VoltageCurve(double knee_mhz, double v_floor, double slope)
        : knee_mhz_(knee_mhz), v_floor_(v_floor), slope_(slope)
    {}

    double knee_mhz_;
    double v_floor_;
    double slope_;        // volts per MHz above the knee
    double step_v_ = 0.0; // quantization step (0 = continuous)
};

} // namespace sim
} // namespace gpupm

#endif // GPUPM_SIM_VOLTAGE_HH
