/**
 * @file
 * Analytic steady-state performance model of a GPU.
 *
 * Execution time at a V-F configuration is the smooth maximum (p-norm)
 * of the per-resource service times: each compute-unit class, each
 * memory level, the issue stage, and the exposed-latency floor. The
 * smooth maximum models the imperfect overlap of real kernels — the
 * bottleneck resource therefore saturates near (but not at) 1.0
 * utilization, matching the measured behaviour in the paper's Fig. 2
 * and Fig. 5A.
 *
 * Because DRAM service time scales with fmem while everything else
 * scales with fcore, utilizations shift with the configuration exactly
 * the way they do on hardware: a DRAM-bound kernel stretched by a lower
 * memory clock idles its core units, which is the physical effect
 * behind the paper's error growth away from the reference configuration
 * (Fig. 8).
 */

#ifndef GPUPM_SIM_PERF_MODEL_HH
#define GPUPM_SIM_PERF_MODEL_HH

#include "gpu/device.hh"
#include "sim/kernel.hh"

namespace gpupm
{
namespace sim
{

/** Outcome of executing one kernel at one V-F configuration. */
struct ExecutionProfile
{
    double time_s = 0.0;            ///< kernel execution time
    gpu::ComponentArray util{};     ///< true utilization per component
    double util_issue = 0.0;        ///< issue-stage activity (hidden)
    double active_cycles = 0.0;     ///< per-SM active core cycles

    /** Achieved bandwidth of a memory level, bytes/s. */
    gpu::ComponentArray achieved_bw{};
};

/** Analytic multi-resource bottleneck performance model. */
class AnalyticPerfModel
{
  public:
    /**
     * @param overlap_p  p-norm exponent of the smooth maximum; larger
     *                   means better compute/memory overlap. 6 matches
     *                   the bottleneck utilizations (~0.85-0.92)
     *                   observed on real devices.
     * @param issue_slots  warp instructions issuable per SM per cycle;
     *                      6 reflects four schedulers with dual-issue
     *                      headroom, so a saturated FMA stream is not
     *                      artificially issue-bound.
     */
    explicit AnalyticPerfModel(double overlap_p = 6.0,
                               int issue_slots = 6);

    /** Execute a kernel demand at a configuration. */
    ExecutionProfile execute(const gpu::DeviceDescriptor &dev,
                             const KernelDemand &demand,
                             const gpu::FreqConfig &cfg) const;

    /** The p-norm exponent in use. */
    double overlapP() const { return overlap_p_; }

    /** Warp instructions issuable per SM per cycle. */
    int issueSlots() const { return issue_slots_; }

  private:
    double overlap_p_;
    int issue_slots_;
};

} // namespace sim
} // namespace gpupm

#endif // GPUPM_SIM_PERF_MODEL_HH
