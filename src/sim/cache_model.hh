/**
 * @file
 * Working-set L2 miss model.
 *
 * The substrate's kernel demands carry L2 and DRAM traffic as separate
 * quantities; when a kernel is authored from its *access pattern*
 * (total L2 traffic + working-set size) instead, this helper derives
 * the DRAM traffic: a working set resident in the L2 produces only the
 * cold fill, and beyond the capacity the steady-state hit probability
 * of a capacity-limited cache under far-reuse access approaches
 * capacity/working-set, so misses grow smoothly toward streaming.
 *
 * This is the mechanism behind the paper's "Input data size"
 * discussion (Sec. V-B, Fig. 9): a kernel whose input fits in the L2
 * uses the DRAM differently than the same kernel on a larger input.
 */

#ifndef GPUPM_SIM_CACHE_MODEL_HH
#define GPUPM_SIM_CACHE_MODEL_HH

#include "gpu/device.hh"
#include "sim/kernel.hh"

namespace gpupm
{
namespace sim
{

/** Fraction of L2 accesses missing to DRAM for a working set. */
double l2MissRate(double working_set_bytes,
                  const gpu::DeviceDescriptor &dev);

/**
 * Derive the DRAM traffic of a demand from its L2 traffic and
 * working-set size, overwriting bytes_dram_rd/wr.
 *
 * @param demand  kernel with authored L2 traffic.
 * @param working_set_bytes  distinct bytes the kernel touches.
 * @param dev  device whose L2 capacity applies.
 */
KernelDemand applyCacheModel(KernelDemand demand,
                             double working_set_bytes,
                             const gpu::DeviceDescriptor &dev);

} // namespace sim
} // namespace gpupm

#endif // GPUPM_SIM_CACHE_MODEL_HH
