/**
 * @file
 * Cycle-approximate simulator of a single streaming multiprocessor.
 *
 * The analytic model (perf_model.hh) is the substrate the experiment
 * harnesses run on; this simulator provides an independent, lower-level
 * cross-check. It executes the *actual loop bodies* of the Fig. 3/4
 * microbenchmarks — warps issuing dependent instructions through
 * throughput-limited unit pipelines with memory latencies and
 * bandwidth budgets — and reports the same Eq. 8-style utilizations,
 * which the tests compare against the analytic prediction.
 */

#ifndef GPUPM_SIM_SM_CYCLE_SIM_HH
#define GPUPM_SIM_SM_CYCLE_SIM_HH

#include <cstdint>
#include <vector>

#include "gpu/device.hh"

namespace gpupm
{
namespace sim
{

/** Instruction classes understood by the SM pipeline model. */
enum class InstrClass
{
    Int,       ///< integer ALU op
    SP,        ///< single-precision FMA
    DP,        ///< double-precision FMA
    SF,        ///< transcendental (SFU)
    SharedLd,  ///< shared-memory load
    SharedSt,  ///< shared-memory store
    GlobalLd,  ///< global load (L2 + DRAM)
    GlobalSt,  ///< global store (L2 + DRAM)
    Control,   ///< branch / address / move (issue only)
};

/** One static instruction in a loop body. */
struct Instr
{
    InstrClass cls = InstrClass::Int;
    /** Bytes moved per warp for memory classes (typ. 128 = 32 x 4B). */
    double bytes = 0.0;
    /**
     * True when the instruction depends on the previous one in the
     * body. Independent chains (the 4 registers of Fig. 3a) set false.
     */
    bool depends_on_prev = true;
    /** Global access served by the L2 without touching DRAM. */
    bool l2_resident = false;
    /**
     * Shared-memory bank-conflict degree: an n-way conflict
     * serializes the access into n bank transactions, consuming n
     * times the bank bandwidth (1 = conflict-free, the Fig. 3c
     * design goal).
     */
    int conflict_ways = 1;
};

/** A kernel body as executed per warp. */
struct LoopKernel
{
    std::vector<Instr> prologue;  ///< executed once (initial loads)
    std::vector<Instr> body;      ///< executed trip_count times
    std::vector<Instr> epilogue;  ///< executed once (final store)
    std::uint64_t trip_count = 1;
};

/** Result of simulating one SM. */
struct SmSimResult
{
    std::uint64_t cycles = 0;      ///< total core cycles
    /** Eq. 8 utilization per compute unit plus memory levels. */
    gpu::ComponentArray util{};
    /** Warp-instructions issued per component class. */
    gpu::ComponentArray warps_issued{};
    double issue_util = 0.0;       ///< fraction of issue slots used
};

/** Cycle-approximate single-SM execution model. */
class SmCycleSim
{
  public:
    /**
     * @param dev  device whose per-SM resources are modelled.
     * @param cfg  operating point (fmem/fcore sets the DRAM budget).
     * @param num_warps  resident warps on the SM.
     */
    SmCycleSim(const gpu::DeviceDescriptor &dev,
               const gpu::FreqConfig &cfg, int num_warps);

    /** Run every warp to completion and report utilizations. */
    SmSimResult run(const LoopKernel &kernel,
                    std::uint64_t max_cycles = 200'000'000);

  private:
    const gpu::DeviceDescriptor &dev_;
    gpu::FreqConfig cfg_;
    int num_warps_;
};

} // namespace sim
} // namespace gpupm

#endif // GPUPM_SIM_SM_CYCLE_SIM_HH
