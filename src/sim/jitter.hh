/**
 * @file
 * Per-instance ground-truth jitter: the manufacturing variation that
 * makes a fleet of nominally identical boards behave differently.
 *
 * The paper fits one model per physical GPU; a datacenter deployment
 * fits thousands, and no two boards of the same SKU share exact
 * static power or dynamic coefficients (process corners, binning,
 * thermal paste lottery). jitteredGroundTruth() derives a plausible
 * per-instance GroundTruth from the architecture default by scaling
 * every hidden coefficient with a seeded lognormal-ish factor — the
 * same (kind, seed, fraction) always yields the same board, so fleet
 * campaigns are reproducible device by device.
 */

#ifndef GPUPM_SIM_JITTER_HH
#define GPUPM_SIM_JITTER_HH

#include <cstdint>

#include "sim/physical_gpu.hh"

namespace gpupm
{
namespace sim
{

/**
 * The architecture's default GroundTruth with every power coefficient
 * scaled by its own deterministic factor drawn from
 * N(1, jitter_frac), clamped to [1 - 3*frac, 1 + 3*frac] and kept
 * strictly positive. Voltage curves and thermal fields are left
 * untouched so the jittered board stays physically well-formed.
 */
GroundTruth jitteredGroundTruth(gpu::DeviceKind kind,
                                std::uint64_t instance_seed,
                                double jitter_frac = 0.05);

} // namespace sim
} // namespace gpupm

#endif // GPUPM_SIM_JITTER_HH
