/**
 * @file
 * Device-level cycle-approximate simulator.
 *
 * Extends the single-SM pipeline model to a whole board: a grid of
 * thread blocks is scheduled over all SMs (a new block replaces a
 * finished one as long as work remains), every SM has its own
 * execution-unit and shared-memory throughput, and DRAM bandwidth is
 * one *shared* token pool — the mechanism behind device-level effects
 * the per-SM model cannot express:
 *
 *  - DRAM contention: memory-heavy kernels slow down super-linearly
 *    as more SMs compete for the same bus;
 *  - the scheduling tail: grids that are not a multiple of the SM
 *    count leave SMs idle at the end of the kernel;
 *  - occupancy: few resident warps per SM expose latency.
 *
 * Used for cross-validating the analytic substrate at the device
 * level and for studying block-scheduling effects; the experiment
 * harnesses themselves run on the (much faster) analytic model.
 */

#ifndef GPUPM_SIM_DEVICE_CYCLE_SIM_HH
#define GPUPM_SIM_DEVICE_CYCLE_SIM_HH

#include <cstdint>

#include "gpu/device.hh"
#include "sim/sm_cycle_sim.hh"

namespace gpupm
{
namespace sim
{

/** Launch geometry of a device-level run. */
struct LaunchConfig
{
    int blocks = 1;          ///< thread blocks in the grid
    int warps_per_block = 8; ///< resident warps contributed per block
    /** Max blocks resident per SM at once (occupancy limit). */
    int blocks_per_sm = 2;
};

/** Result of a device-level simulation. */
struct DeviceSimResult
{
    std::uint64_t cycles = 0;       ///< core cycles to drain the grid
    double time_s = 0.0;            ///< cycles / fcore
    /** Eq. 8/9-style utilizations over the whole run. */
    gpu::ComponentArray util{};
    double issue_util = 0.0;
    /** Fraction of SM-cycles with at least one resident block. */
    double occupancy = 0.0;
};

/** Whole-board cycle-approximate execution model. */
class DeviceCycleSim
{
  public:
    DeviceCycleSim(const gpu::DeviceDescriptor &dev,
                   const gpu::FreqConfig &cfg);

    /** Run a grid of the given kernel to completion. */
    DeviceSimResult run(const LoopKernel &kernel,
                        const LaunchConfig &launch,
                        std::uint64_t max_cycles = 400'000'000);

  private:
    const gpu::DeviceDescriptor &dev_;
    gpu::FreqConfig cfg_;
};

} // namespace sim
} // namespace gpupm

#endif // GPUPM_SIM_DEVICE_CYCLE_SIM_HH
