#include "ptx.hh"

#include <cctype>
#include <map>
#include <sstream>
#include <vector>

#include "common/logging.hh"

namespace gpupm
{
namespace sim
{

namespace
{

/** One tokenized PTX statement. */
struct PtxStmt
{
    std::string opcode;              ///< full dotted opcode
    std::vector<std::string> args;   ///< operands, brackets stripped
    std::string label;               ///< non-empty for "NAME:" lines
    bool is_branch = false;
    std::string branch_target;
};

/** Strip comments and whitespace; empty string when nothing left. */
std::string
cleanLine(std::string line)
{
    if (const auto pos = line.find("//"); pos != std::string::npos)
        line.erase(pos);
    const auto first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos)
        return "";
    const auto last = line.find_last_not_of(" \t\r");
    return line.substr(first, last - first + 1);
}

PtxStmt
tokenize(const std::string &line)
{
    PtxStmt s;
    // Label line: "NAME:".
    if (line.back() == ':' &&
        line.find_first_of(" \t") == std::string::npos) {
        s.label = line.substr(0, line.size() - 1);
        return s;
    }

    std::string body = line;
    if (body.back() == ';')
        body.pop_back();

    std::istringstream is(body);
    is >> s.opcode;
    if (s.opcode == "bra" || s.opcode.starts_with("bra.")) {
        s.is_branch = true;
        is >> s.branch_target;
        return s;
    }

    std::string rest;
    std::getline(is, rest);
    // Split operands on commas; strip brackets and spaces.
    std::string cur;
    for (char c : rest + ",") {
        if (c == ',') {
            std::string arg;
            for (char ac : cur)
                if (!std::isspace(static_cast<unsigned char>(ac)) &&
                    ac != '[' && ac != ']')
                    arg += ac;
            if (!arg.empty())
                s.args.push_back(arg);
            cur.clear();
        } else {
            cur += c;
        }
    }
    return s;
}

/** Bytes per thread for a PTX type suffix. */
double
typeBytes(const std::string &opcode)
{
    double width = 4.0;
    if (opcode.find(".f64") != std::string::npos ||
        opcode.find(".s64") != std::string::npos ||
        opcode.find(".u64") != std::string::npos ||
        opcode.find(".b64") != std::string::npos)
        width = 8.0;
    if (opcode.find(".v2.") != std::string::npos)
        width *= 2.0;
    if (opcode.find(".v4.") != std::string::npos)
        width *= 4.0;
    return width;
}

/** Classify a non-memory opcode. */
InstrClass
classify(const std::string &op)
{
    static const char *sf_ops[] = {"sin", "cos", "lg2", "ex2",
                                   "sqrt", "rsqrt", "rcp"};
    const std::string stem = op.substr(0, op.find('.'));
    for (const char *sf : sf_ops)
        if (stem == sf)
            return InstrClass::SF;

    static const char *arith[] = {"add", "sub", "mul", "mad",
                                  "fma", "div", "min", "max",
                                  "abs", "neg"};
    bool is_arith = false;
    for (const char *a : arith)
        if (stem == a)
            is_arith = true;
    if (!is_arith)
        return InstrClass::Control; // mov, cvt, setp, selp, ...

    if (op.find(".f64") != std::string::npos)
        return InstrClass::DP;
    if (op.find(".f32") != std::string::npos ||
        op.find(".f16") != std::string::npos)
        return InstrClass::SP;
    return InstrClass::Int; // .s32/.u32/.b32/...
}

/** Destination register of a statement ("" when none). */
std::string
destOf(const PtxStmt &s)
{
    if (s.args.empty() || s.opcode.starts_with("st.") ||
        s.opcode.starts_with("setp") || s.is_branch)
        return "";
    return s.args.front();
}

/** Whether any source operand of s reads the given register. */
bool
readsRegister(const PtxStmt &s, const std::string &reg)
{
    if (reg.empty())
        return false;
    const std::size_t first_src =
            s.opcode.starts_with("st.") ? 0 : 1;
    for (std::size_t i = first_src; i < s.args.size(); ++i)
        if (s.args[i] == reg)
            return true;
    return false;
}

Instr
toInstr(const PtxStmt &s, bool depends)
{
    Instr ins;
    ins.depends_on_prev = depends;
    const double warp_bytes = 32.0 * typeBytes(s.opcode);
    if (s.opcode.starts_with("ld.global")) {
        ins.cls = InstrClass::GlobalLd;
        ins.bytes = warp_bytes;
    } else if (s.opcode.starts_with("st.global")) {
        ins.cls = InstrClass::GlobalSt;
        ins.bytes = warp_bytes;
    } else if (s.opcode.starts_with("ld.shared")) {
        ins.cls = InstrClass::SharedLd;
        ins.bytes = warp_bytes;
    } else if (s.opcode.starts_with("st.shared")) {
        ins.cls = InstrClass::SharedSt;
        ins.bytes = warp_bytes;
    } else {
        ins.cls = classify(s.opcode);
    }
    return ins;
}

/** Parse a literal integer; 0 when not a number. */
std::uint64_t
parseInt(const std::string &s)
{
    if (s.empty())
        return 0;
    for (char c : s)
        if (!std::isdigit(static_cast<unsigned char>(c)))
            return 0;
    return std::stoull(s);
}

} // namespace

LoopKernel
parsePtxKernel(const std::string &text,
               std::uint64_t trip_count_override)
{
    std::vector<PtxStmt> stmts;
    std::istringstream is(text);
    std::string line;
    while (std::getline(is, line)) {
        const std::string clean = cleanLine(line);
        if (clean.empty())
            continue;
        stmts.push_back(tokenize(clean));
    }
    GPUPM_FATAL_IF(stmts.empty(), "empty PTX kernel");

    // Find the loop: the first backward branch to a seen label.
    std::map<std::string, std::size_t> labels;
    std::size_t loop_begin = stmts.size(), loop_end = stmts.size();
    for (std::size_t i = 0; i < stmts.size(); ++i) {
        if (!stmts[i].label.empty()) {
            labels[stmts[i].label] = i;
        } else if (stmts[i].is_branch) {
            auto it = labels.find(stmts[i].branch_target);
            GPUPM_FATAL_IF(it == labels.end(),
                           "branch to unknown or forward label '",
                           stmts[i].branch_target, "'");
            loop_begin = it->second;
            loop_end = i;
            break;
        }
    }

    // Infer the trip count from the loop bookkeeping: the setp's
    // bound divided by the total per-iteration increment of the
    // compared register.
    std::uint64_t trips = trip_count_override;
    if (trips == 0 && loop_end < stmts.size()) {
        std::string counter;
        std::uint64_t bound = 0;
        for (std::size_t i = loop_begin; i < loop_end; ++i) {
            const PtxStmt &s = stmts[i];
            if (s.opcode.starts_with("setp") && s.args.size() >= 3) {
                counter = s.args[1];
                bound = parseInt(s.args[2]);
            }
        }
        if (!counter.empty() && bound > 0) {
            std::uint64_t step = 0;
            for (std::size_t i = loop_begin; i < loop_end; ++i) {
                const PtxStmt &s = stmts[i];
                if (s.opcode.starts_with("add") &&
                    s.args.size() >= 3 && s.args[0] == counter) {
                    step += parseInt(s.args[2]);
                }
            }
            if (step > 0)
                trips = (bound + step - 1) / step;
        }
    }
    if (trips == 0)
        trips = 1;

    // Assemble phases with register-dependency tracking.
    LoopKernel k;
    k.trip_count = trips;
    std::string prev_dest;
    const auto emit = [&](std::vector<Instr> &out, const PtxStmt &s) {
        if (!s.label.empty() || s.is_branch) {
            if (s.is_branch)
                out.push_back({InstrClass::Control, 0.0, true, false});
            prev_dest.clear();
            return;
        }
        out.push_back(toInstr(s, readsRegister(s, prev_dest)));
        prev_dest = destOf(s);
    };
    for (std::size_t i = 0; i < stmts.size(); ++i) {
        if (i < loop_begin)
            emit(k.prologue, stmts[i]);
        else if (i <= loop_end && loop_end < stmts.size())
            emit(k.body, stmts[i]);
        else
            emit(k.epilogue, stmts[i]);
    }
    return k;
}

KernelDemand
demandFromLoop(const LoopKernel &kernel, double threads,
               const std::string &name)
{
    GPUPM_ASSERT(threads >= 32.0, "need at least one warp");
    const double warps = threads / 32.0;

    KernelDemand d;
    d.name = name;
    const auto account = [&](const Instr &ins, double times) {
        const double n = warps * times;
        switch (ins.cls) {
          case InstrClass::Int: d.warps_int += n; break;
          case InstrClass::SP: d.warps_sp += n; break;
          case InstrClass::DP: d.warps_dp += n; break;
          case InstrClass::SF: d.warps_sf += n; break;
          case InstrClass::SharedLd:
            d.warps_other += n;
            d.bytes_shared_ld += n * ins.bytes;
            break;
          case InstrClass::SharedSt:
            d.warps_other += n;
            d.bytes_shared_st += n * ins.bytes;
            break;
          case InstrClass::GlobalLd:
            d.warps_other += n;
            d.bytes_l2_rd += n * ins.bytes;
            if (!ins.l2_resident)
                d.bytes_dram_rd += n * ins.bytes;
            break;
          case InstrClass::GlobalSt:
            d.warps_other += n;
            d.bytes_l2_wr += n * ins.bytes;
            if (!ins.l2_resident)
                d.bytes_dram_wr += n * ins.bytes;
            break;
          case InstrClass::Control:
            d.warps_other += n;
            break;
        }
    };
    for (const Instr &ins : kernel.prologue)
        account(ins, 1.0);
    for (const Instr &ins : kernel.body)
        account(ins, static_cast<double>(kernel.trip_count));
    for (const Instr &ins : kernel.epilogue)
        account(ins, 1.0);
    return d;
}

} // namespace sim
} // namespace gpupm
