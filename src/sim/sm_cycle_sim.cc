#include "sm_cycle_sim.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "sim/pipeline_detail.hh"

namespace gpupm
{
namespace sim
{

using gpu::Component;
using gpu::componentIndex;

namespace
{

using detail::TokenBucket;
using detail::latencyOf;
using detail::unitOf;

/** Per-warp program counter state. */
struct WarpState
{
    std::size_t phase = 0;       // 0 prologue, 1 body, 2 epilogue, 3 done
    std::size_t pc = 0;          // index within current phase
    std::uint64_t trips_left = 0;
    std::uint64_t ready_at = 0;  // cycle when next issue may happen
    std::uint64_t chain_ready = 0; // when the previous result lands
};

const std::vector<Instr> &
phaseInstrs(const LoopKernel &k, std::size_t phase)
{
    switch (phase) {
      case 0: return k.prologue;
      case 1: return k.body;
      default: return k.epilogue;
    }
}

} // namespace

SmCycleSim::SmCycleSim(const gpu::DeviceDescriptor &dev,
                       const gpu::FreqConfig &cfg, int num_warps)
    : dev_(dev), cfg_(cfg), num_warps_(num_warps)
{
    GPUPM_ASSERT(num_warps >= 1, "need at least one warp");
}

SmSimResult
SmCycleSim::run(const LoopKernel &kernel, std::uint64_t max_cycles)
{
    // Per-cycle unit capacities (warps/cycle for compute, bytes/cycle
    // for memory paths). Global traffic shares the per-SM slice of the
    // device DRAM budget, scaled by the clock ratio since the SM is
    // clocked at fcore but DRAM at fmem.
    const double ws = dev_.warp_size;
    TokenBucket int_units(dev_.sp_int_units_per_sm / ws);
    TokenBucket sp_units(dev_.sp_int_units_per_sm / ws);
    TokenBucket dp_units(dev_.dp_units_per_sm / ws);
    TokenBucket sf_units(dev_.sf_units_per_sm / ws);
    TokenBucket shared_bw(dev_.shared_banks * 4.0);
    const double clock_ratio =
            static_cast<double>(cfg_.mem_mhz) / cfg_.core_mhz;
    TokenBucket dram_bw(dev_.mem_bus_bytes * clock_ratio /
                        dev_.num_sms);
    TokenBucket l2_bw(dev_.l2_bytes_per_cycle / dev_.num_sms);

    auto bucket_for = [&](InstrClass cls) -> TokenBucket * {
        switch (cls) {
          case InstrClass::Int: return &int_units;
          case InstrClass::SP: return &sp_units;
          case InstrClass::DP: return &dp_units;
          case InstrClass::SF: return &sf_units;
          default: return nullptr;
        }
    };

    std::vector<WarpState> warps(num_warps_);
    std::size_t done = 0;
    for (auto &w : warps) {
        w.trips_left = std::max<std::uint64_t>(kernel.trip_count, 1);
        if (kernel.prologue.empty()) {
            w.phase = kernel.body.empty() || kernel.trip_count == 0
                              ? 2
                              : 1;
            if (w.phase == 2 && kernel.epilogue.empty())
                w.phase = 3;
        }
        if (w.phase == 3)
            ++done;
    }

    SmSimResult result;
    const int issue_slots = 4;
    std::uint64_t issued_total = 0;
    std::uint64_t cycle = 0;

    for (; done < warps.size() && cycle < max_cycles; ++cycle) {
        int_units.tick();
        sp_units.tick();
        dp_units.tick();
        sf_units.tick();
        shared_bw.tick();
        dram_bw.tick();
        l2_bw.tick();

        int slots = issue_slots;
        // Greedy round-robin over warps starting at a rotating origin
        // so no warp starves.
        for (std::size_t k = 0; k < warps.size() && slots > 0; ++k) {
            WarpState &w = warps[(cycle + k) % warps.size()];
            if (w.phase == 3 || w.ready_at > cycle)
                continue;
            const auto &instrs = phaseInstrs(kernel, w.phase);
            if (w.pc >= instrs.size()) {
                // Advance phase.
                if (w.phase == 1 && --w.trips_left > 0) {
                    w.pc = 0;
                } else {
                    ++w.phase;
                    w.pc = 0;
                    while (w.phase < 3 &&
                           phaseInstrs(kernel, w.phase).empty())
                        ++w.phase;
                    if (w.phase == 1 && kernel.trip_count == 0)
                        w.phase = 2;
                    if (w.phase == 3)
                        ++done;
                }
                continue;
            }
            const Instr &ins = instrs[w.pc];
            if (ins.depends_on_prev && w.chain_ready > cycle)
                continue;

            // Unit throughput for compute classes.
            if (TokenBucket *bucket = bucket_for(ins.cls)) {
                if (!bucket->take(1.0))
                    continue;
            } else if (ins.cls == InstrClass::SharedLd ||
                       ins.cls == InstrClass::SharedSt) {
                // Bank conflicts serialize into extra transactions.
                if (!shared_bw.take(ins.bytes * ins.conflict_ways))
                    continue;
            } else if (ins.cls == InstrClass::GlobalLd ||
                       ins.cls == InstrClass::GlobalSt) {
                // Global accesses consume both L2 and DRAM bandwidth
                // (the microbenchmarks are sized to miss in L2 unless
                // flagged with zero DRAM bytes).
                // Draw L2 and (unless resident) DRAM tokens
                // atomically so a short DRAM budget cannot leak L2
                // tokens.
                const bool needs_dram =
                        !ins.l2_resident && ins.bytes > 0.0;
                if (!l2_bw.can(ins.bytes) ||
                    (needs_dram && !dram_bw.can(ins.bytes))) {
                    continue;
                }
                l2_bw.take(ins.bytes);
                if (needs_dram)
                    dram_bw.take(ins.bytes);
            }

            // Issue.
            --slots;
            ++issued_total;
            const Component unit = unitOf(ins.cls);
            if (unit != Component::NumComponents)
                result.warps_issued[componentIndex(unit)] += 1.0;
            if (ins.cls == InstrClass::GlobalLd ||
                ins.cls == InstrClass::GlobalSt) {
                result.warps_issued[componentIndex(Component::Dram)] +=
                        1.0;
            }

            w.chain_ready = cycle + latencyOf(ins.cls);
            w.ready_at = cycle + 1; // one issue per warp per cycle
            ++w.pc;
        }
    }

    GPUPM_ASSERT(done == warps.size(),
                 "SM simulation exceeded cycle budget (", max_cycles,
                 ")");

    result.cycles = cycle;
    if (cycle == 0)
        return result;

    // Eq. 8 utilizations for the compute units.
    for (Component c : gpu::kComputeUnits) {
        const std::size_t i = componentIndex(c);
        result.util[i] = result.warps_issued[i] * dev_.warp_size /
                         (static_cast<double>(cycle) * dev_.unitsPerSm(c));
    }
    result.issue_util = static_cast<double>(issued_total) /
                        (static_cast<double>(cycle) * issue_slots);
    return result;
}

} // namespace sim
} // namespace gpupm
