#include "voltage.hh"

#include <cmath>

#include "common/logging.hh"

namespace gpupm
{
namespace sim
{

VoltageCurve
VoltageCurve::constant(double volts)
{
    GPUPM_ASSERT(volts > 0.0, "non-positive voltage");
    return VoltageCurve(0.0, volts, 0.0);
}

VoltageCurve
VoltageCurve::twoRegion(double knee_mhz, double v_floor, double v_top,
                        double top_mhz)
{
    GPUPM_ASSERT(top_mhz > knee_mhz, "top frequency below knee");
    GPUPM_ASSERT(v_top >= v_floor, "top voltage below floor");
    const double slope = (v_top - v_floor) / (top_mhz - knee_mhz);
    return VoltageCurve(knee_mhz, v_floor, slope);
}

VoltageCurve
VoltageCurve::quantized(double step_v) const
{
    GPUPM_ASSERT(step_v >= 0.0, "negative quantization step");
    VoltageCurve out = *this;
    out.step_v_ = step_v;
    return out;
}

double
VoltageCurve::volts(double f_mhz) const
{
    double v = f_mhz <= knee_mhz_
                       ? v_floor_
                       : v_floor_ + slope_ * (f_mhz - knee_mhz_);
    if (step_v_ > 0.0) {
        // Snap up to the next supply step (the regulator must cover
        // the required voltage).
        const double steps = std::ceil((v - 1e-12) / step_v_);
        v = steps * step_v_;
    }
    return v;
}

} // namespace sim
} // namespace gpupm
