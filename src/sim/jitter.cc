#include "jitter.hh"

#include <algorithm>

#include "common/random.hh"

namespace gpupm
{
namespace sim
{

namespace
{

/**
 * One multiplicative jitter factor: N(1, frac) clamped to three
 * sigmas and to a strictly positive floor. The draw order in
 * jitteredGroundTruth is fixed, so a given (seed, frac) always maps
 * to the same board.
 */
double
factor(Rng &rng, double frac)
{
    const double f = rng.normal(1.0, frac);
    const double lo = std::max(0.05, 1.0 - 3.0 * frac);
    const double hi = 1.0 + 3.0 * frac;
    return std::clamp(f, lo, hi);
}

} // namespace

GroundTruth
jitteredGroundTruth(gpu::DeviceKind kind, std::uint64_t instance_seed,
                    double jitter_frac)
{
    GroundTruth truth = PhysicalGpu::defaultGroundTruth(kind);
    if (jitter_frac <= 0.0)
        return truth;

    // Stream decorrelated from the measurement-noise streams, which
    // use the raw seed.
    Rng rng(instance_seed ^ 0xf1ee7c0ffee12345ull);
    truth.static_core_w *= factor(rng, jitter_frac);
    truth.idle_core_w_ghz *= factor(rng, jitter_frac);
    truth.static_mem_w *= factor(rng, jitter_frac);
    truth.idle_mem_w_ghz *= factor(rng, jitter_frac);
    for (double &gamma : truth.gamma_w_ghz)
        gamma *= factor(rng, jitter_frac);
    truth.gamma_issue_w_ghz *= factor(rng, jitter_frac);
    truth.gamma_active_w_ghz *= factor(rng, jitter_frac);
    return truth;
}

} // namespace sim
} // namespace gpupm
