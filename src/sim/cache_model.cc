#include "cache_model.hh"

#include <algorithm>

#include "common/logging.hh"

namespace gpupm
{
namespace sim
{

double
l2MissRate(double working_set_bytes, const gpu::DeviceDescriptor &dev)
{
    GPUPM_ASSERT(working_set_bytes >= 0.0, "negative working set");
    GPUPM_ASSERT(dev.l2_capacity_bytes > 0.0,
                 "device has no L2 capacity configured");
    if (working_set_bytes <= dev.l2_capacity_bytes)
        return 0.0;
    // Random-replacement steady state under uniform far reuse: hit
    // probability ~ capacity / working set.
    return 1.0 - dev.l2_capacity_bytes / working_set_bytes;
}

KernelDemand
applyCacheModel(KernelDemand demand, double working_set_bytes,
                const gpu::DeviceDescriptor &dev)
{
    const double miss = l2MissRate(working_set_bytes, dev);
    // Cold fill: every distinct byte crosses the bus once, amortized
    // over the launch; it is bounded by the authored L2 traffic.
    const double l2_total = demand.bytes_l2_rd + demand.bytes_l2_wr;
    const double cold =
            std::min(working_set_bytes, l2_total);
    const double rd_share =
            l2_total > 0.0 ? demand.bytes_l2_rd / l2_total : 0.0;

    demand.bytes_dram_rd =
            std::max(miss * demand.bytes_l2_rd, cold * rd_share);
    demand.bytes_dram_wr = std::max(miss * demand.bytes_l2_wr,
                                    cold * (1.0 - rd_share));
    return demand;
}

} // namespace sim
} // namespace gpupm
