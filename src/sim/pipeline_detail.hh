/**
 * @file
 * Internal pieces shared by the cycle-approximate execution models
 * (single-SM and device-level): instruction classification, latency
 * table and the debt-capable throughput token bucket. Not part of the
 * public API.
 */

#ifndef GPUPM_SIM_PIPELINE_DETAIL_HH
#define GPUPM_SIM_PIPELINE_DETAIL_HH

#include <algorithm>
#include <cstdint>

#include "common/logging.hh"
#include "gpu/components.hh"
#include "sim/sm_cycle_sim.hh"

namespace gpupm
{
namespace sim
{
namespace detail
{

/** Execution-unit component behind an instruction class
 *  (NumComponents for issue-only instructions). */
inline gpu::Component
unitOf(InstrClass cls)
{
    switch (cls) {
      case InstrClass::Int: return gpu::Component::Int;
      case InstrClass::SP: return gpu::Component::SP;
      case InstrClass::DP: return gpu::Component::DP;
      case InstrClass::SF: return gpu::Component::SF;
      case InstrClass::SharedLd:
      case InstrClass::SharedSt:
        return gpu::Component::Shared;
      case InstrClass::GlobalLd:
      case InstrClass::GlobalSt:
        return gpu::Component::L2;
      case InstrClass::Control:
      default:
        return gpu::Component::NumComponents;
    }
}

/** Result-availability latency in core cycles. */
inline std::uint64_t
latencyOf(InstrClass cls)
{
    switch (cls) {
      case InstrClass::Int: return 6;
      case InstrClass::SP: return 6;
      case InstrClass::DP: return 8;
      case InstrClass::SF: return 12;
      case InstrClass::SharedLd: return 28;
      case InstrClass::SharedSt: return 4;
      case InstrClass::GlobalLd: return 380;
      case InstrClass::GlobalSt: return 8;
      case InstrClass::Control: return 1;
      default: return 1;
    }
}

/**
 * Fractional-capacity token bucket (units-per-cycle throughput).
 * Requests larger than one cycle's refill drive the balance negative
 * (debt); the resource refuses further requests until repaid — a
 * multi-cycle occupancy model that cannot deadlock wide transactions.
 */
class TokenBucket
{
  public:
    explicit TokenBucket(double per_cycle) : per_cycle_(per_cycle)
    {
        GPUPM_ASSERT(per_cycle > 0.0, "zero-throughput resource");
    }

    /** Refill at the start of a cycle. */
    void
    tick()
    {
        tokens_ = std::min(tokens_ + per_cycle_, 4.0 * per_cycle_);
    }

    /** Whether a request may issue now (no outstanding debt). */
    bool
    can(double amount) const
    {
        return amount <= 0.0 || tokens_ > 0.0;
    }

    /** Try to draw the given amount; false when in debt. */
    bool
    take(double amount)
    {
        if (!can(amount))
            return false;
        tokens_ -= amount;
        return true;
    }

  private:
    double per_cycle_;
    double tokens_ = 0.0;
};

} // namespace detail
} // namespace sim
} // namespace gpupm

#endif // GPUPM_SIM_PIPELINE_DETAIL_HH
