/**
 * @file
 * The 83-microbenchmark training suite (Sec. IV of the paper).
 *
 * Family sizes follow Fig. 5: 12 INT, 11 SP, 12 DP, 8 SF, 10 L2,
 * 10 Shared, 12 DRAM, 7 Mix, plus the Idle case — 83 in total. Each
 * microbenchmark mirrors one of the Fig. 3 kernels: a per-thread loop
 * whose arithmetic-intensity knob (the paper's N, or the FMAs-per-load
 * count of the DRAM variant) sweeps the utilization of the stressed
 * component while starving the rest.
 *
 * Every microbenchmark carries both the aggregate KernelDemand the
 * analytic substrate consumes and, for the loop families, the literal
 * LoopKernel body (the Fig. 4 PTX shape: 4 independent FMA chains,
 * 8-deep unroll, loop bookkeeping) for the cycle-level cross-check.
 */

#ifndef GPUPM_UBENCH_SUITE_HH
#define GPUPM_UBENCH_SUITE_HH

#include <optional>
#include <string>
#include <vector>

#include "sim/kernel.hh"
#include "sim/sm_cycle_sim.hh"

namespace gpupm
{
namespace ubench
{

/** Microbenchmark families of the suite. */
enum class Family
{
    Int,
    SP,
    DP,
    SF,
    L2,
    Shared,
    Dram,
    Mix,
    Idle,
};

/** Display name of a family. */
std::string_view familyName(Family f);

/** One microbenchmark of the suite. */
struct Microbenchmark
{
    std::string name;
    Family family = Family::Idle;
    sim::KernelDemand demand;
    /** Loop-level body for the cycle simulator (loop families only). */
    std::optional<sim::LoopKernel> loop;
};

/** Total threads launched by every non-idle microbenchmark. */
inline constexpr double kThreads = 1 << 20;

/** Build one arithmetic-family microbenchmark (Fig. 3a/3b) with the
 *  given iteration count N. */
Microbenchmark makeArithmetic(Family family, int n_iters);

/** Build one shared-memory microbenchmark (Fig. 3c); the intensity
 *  knob adds integer work between shared accesses. */
Microbenchmark makeShared(int int_ops_per_access);

/** Build one L2 microbenchmark (Fig. 3d) with a given compute blend. */
Microbenchmark makeL2(int int_ops_per_access);

/** Build one DRAM microbenchmark (Fig. 3e) with the given
 *  FMAs-per-load count. */
Microbenchmark makeDram(int fmas_per_load);

/** The full 83-benchmark suite, in the Fig. 5 presentation order. */
std::vector<Microbenchmark> buildSuite();

/** Suite entries of one family. */
std::vector<Microbenchmark> buildFamily(Family family);

} // namespace ubench
} // namespace gpupm

#endif // GPUPM_UBENCH_SUITE_HH
