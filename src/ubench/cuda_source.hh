/**
 * @file
 * CUDA-source emission for the microbenchmark suite.
 *
 * The paper's artifact distributes its 83 microbenchmarks as CUDA
 * kernels (Fig. 3 shows the patterns). This module generates that
 * source from the same parameterization the simulator consumes, so
 * the identical suite can be compiled and run on real hardware: each
 * family maps to one of the Fig. 3 templates with the intensity knob
 * substituted in.
 */

#ifndef GPUPM_UBENCH_CUDA_SOURCE_HH
#define GPUPM_UBENCH_CUDA_SOURCE_HH

#include <string>

#include "ubench/suite.hh"

namespace gpupm
{
namespace ubench
{

/**
 * CUDA C source of one microbenchmark kernel (Fig. 3 template of its
 * family with the intensity knob substituted). Fatal for the Idle
 * entry, which has no kernel by definition.
 */
std::string cudaSource(const Microbenchmark &mb);

/** Complete .cu file with every non-idle kernel of the suite plus a
 *  launch table. */
std::string cudaSuiteSource();

} // namespace ubench
} // namespace gpupm

#endif // GPUPM_UBENCH_CUDA_SOURCE_HH
