#include "suite.hh"

#include <algorithm>

#include "common/logging.hh"

namespace gpupm
{
namespace ubench
{

using sim::Instr;
using sim::InstrClass;
using sim::KernelDemand;
using sim::LoopKernel;

namespace
{

constexpr double kWarps = kThreads / 32.0;
/** Loop bookkeeping instructions per 32 unrolled ops (Fig. 4). */
constexpr double kLoopOverheadPer32 = 3.0;

/** Iteration-count sweeps per family (family sizes from Fig. 5). */
const std::vector<int> kIntSweep = {4, 8, 16, 32, 48, 64, 96,
                                    128, 192, 256, 384, 512};
const std::vector<int> kSpSweep = {4, 8, 16, 32, 64, 96, 128,
                                   192, 256, 384, 512};
const std::vector<int> kDpSweep = {1, 2, 3, 4, 6, 8, 12,
                                   16, 24, 32, 48, 64};
const std::vector<int> kSfSweep = {2, 4, 8, 16, 32, 64, 128, 256};
const std::vector<int> kL2Sweep = {0, 2, 4, 8, 16, 32, 64,
                                   96, 128, 192};
const std::vector<int> kSharedSweep = {0, 1, 2, 4, 6, 8, 12,
                                       16, 24, 32};
const std::vector<int> kDramSweep = {0, 1, 2, 4, 8, 16, 24,
                                     32, 48, 64, 96, 128};

InstrClass
unitClass(Family f)
{
    switch (f) {
      case Family::Int: return InstrClass::Int;
      case Family::SP: return InstrClass::SP;
      case Family::DP: return InstrClass::DP;
      case Family::SF: return InstrClass::SF;
      default: GPUPM_PANIC("not an arithmetic family");
    }
}

double &
warpsSlot(Family f, KernelDemand &d)
{
    switch (f) {
      case Family::Int: return d.warps_int;
      case Family::SP: return d.warps_sp;
      case Family::DP: return d.warps_dp;
      case Family::SF: return d.warps_sf;
      default: GPUPM_PANIC("not an arithmetic family");
    }
}

/** Fig. 4 loop body: 8 unrolled iterations of the 4 FMA chains plus
 *  the add/setp/bra bookkeeping. */
LoopKernel
arithmeticLoop(Family family, int n_iters, double elem_bytes)
{
    LoopKernel k;
    const double warp_bytes = 32.0 * elem_bytes;
    k.prologue = {
        {InstrClass::GlobalLd, warp_bytes, false, false},
        {InstrClass::Control, 0.0, true, false},
        {InstrClass::Control, 0.0, false, false},
        {InstrClass::Control, 0.0, false, false},
    };
    const InstrClass cls = unitClass(family);
    for (int unrolled = 0; unrolled < 8; ++unrolled)
        for (int chain = 0; chain < 4; ++chain)
            k.body.push_back({cls, 0.0, false, false});
    k.body.push_back({InstrClass::Control, 0.0, false, false});
    k.body.push_back({InstrClass::Control, 0.0, true, false});
    k.body.push_back({InstrClass::Control, 0.0, true, false});
    k.trip_count = std::max(1, n_iters / 8);
    k.epilogue = {{InstrClass::GlobalSt, warp_bytes, true, false}};
    return k;
}

} // namespace

std::string_view
familyName(Family f)
{
    switch (f) {
      case Family::Int: return "INT";
      case Family::SP: return "SP";
      case Family::DP: return "DP";
      case Family::SF: return "SF";
      case Family::L2: return "L2";
      case Family::Shared: return "Shared";
      case Family::Dram: return "DRAM";
      case Family::Mix: return "MIX";
      case Family::Idle: return "Idle";
      default: return "?";
    }
}

Microbenchmark
makeArithmetic(Family family, int n_iters)
{
    GPUPM_ASSERT(n_iters >= 1, "need at least one iteration");
    const double elem_bytes = family == Family::DP ? 8.0 : 4.0;

    Microbenchmark mb;
    mb.family = family;
    mb.name = std::string(familyName(family)) + "-N" +
              std::to_string(n_iters);

    KernelDemand &d = mb.demand;
    d.name = mb.name;
    // Fig. 3a/3b: 4 dependent-chain ops per loop iteration, one
    // load/store pair per thread.
    const double ops = 4.0 * n_iters;
    warpsSlot(family, d) = kWarps * ops;
    d.warps_other =
            kWarps * (ops * kLoopOverheadPer32 / 32.0 + 5.0);
    d.bytes_dram_rd = kThreads * elem_bytes;
    d.bytes_dram_wr = kThreads * elem_bytes;
    d.bytes_l2_rd = d.bytes_dram_rd;
    d.bytes_l2_wr = d.bytes_dram_wr;

    mb.loop = arithmeticLoop(family, n_iters, elem_bytes);
    return mb;
}

Microbenchmark
makeShared(int int_ops_per_access)
{
    GPUPM_ASSERT(int_ops_per_access >= 0, "negative op count");
    constexpr double iters = 256.0;

    Microbenchmark mb;
    mb.family = Family::Shared;
    mb.name = "Shared-K" + std::to_string(int_ops_per_access);

    KernelDemand &d = mb.demand;
    d.name = mb.name;
    // Fig. 3c: one conflict-free shared load + store per iteration,
    // plus the intensity knob's integer work.
    d.bytes_shared_ld = kThreads * 4.0 * iters;
    d.bytes_shared_st = kThreads * 4.0 * iters;
    d.warps_int = kWarps * iters * (1.0 + int_ops_per_access);
    d.warps_other = kWarps * iters * 2.25; // ld + st + bookkeeping
    d.bytes_dram_rd = kThreads * 4.0;
    d.bytes_dram_wr = kThreads * 4.0;
    d.bytes_l2_rd = d.bytes_dram_rd;
    d.bytes_l2_wr = d.bytes_dram_wr;

    LoopKernel k;
    k.body = {
        {InstrClass::SharedLd, 128.0, false, false},
        {InstrClass::SharedSt, 128.0, true, false},
    };
    for (int i = 0; i < int_ops_per_access + 1; ++i)
        k.body.push_back({InstrClass::Int, 0.0, false, false});
    k.body.push_back({InstrClass::Control, 0.0, false, false});
    k.trip_count = static_cast<std::uint64_t>(iters);
    k.epilogue = {{InstrClass::GlobalSt, 128.0, true, false}};
    mb.loop = k;
    return mb;
}

Microbenchmark
makeL2(int int_ops_per_access)
{
    GPUPM_ASSERT(int_ops_per_access >= 0, "negative op count");
    constexpr double iters = 128.0;

    Microbenchmark mb;
    mb.family = Family::L2;
    mb.name = "L2-K" + std::to_string(int_ops_per_access);

    KernelDemand &d = mb.demand;
    d.name = mb.name;
    // Fig. 3d: pointer-chase-free copy loop over an L2-resident
    // working set ([26]-style access pattern).
    d.bytes_l2_rd = kThreads * 4.0 * iters;
    d.bytes_l2_wr = kThreads * 4.0 * iters;
    d.warps_int = kWarps * iters * int_ops_per_access;
    d.warps_other = kWarps * iters * 2.25; // ld + st + bookkeeping
    // Cold fill of the working set only.
    d.bytes_dram_rd = kThreads * 4.0;
    d.bytes_dram_wr = kThreads * 4.0;

    LoopKernel k;
    k.body = {
        {InstrClass::GlobalLd, 128.0, false, true},
        {InstrClass::GlobalSt, 128.0, true, true},
    };
    for (int i = 0; i < int_ops_per_access; ++i)
        k.body.push_back({InstrClass::Int, 0.0, false, false});
    k.body.push_back({InstrClass::Control, 0.0, false, false});
    k.trip_count = static_cast<std::uint64_t>(iters);
    mb.loop = k;
    return mb;
}

Microbenchmark
makeDram(int fmas_per_load)
{
    GPUPM_ASSERT(fmas_per_load >= 0, "negative op count");
    constexpr double iters = 256.0;

    Microbenchmark mb;
    mb.family = Family::Dram;
    mb.name = "DRAM-K" + std::to_string(fmas_per_load);

    KernelDemand &d = mb.demand;
    d.name = mb.name;
    // Fig. 3e: streaming load per iteration with a small FMA blend;
    // fewer FMAs -> lower arithmetic intensity -> higher DRAM load.
    d.bytes_dram_rd = kThreads * 4.0 * iters;
    d.bytes_l2_rd = d.bytes_dram_rd;
    d.bytes_dram_wr = kThreads * 4.0;
    d.bytes_l2_wr = d.bytes_dram_wr;
    d.warps_sp = kWarps * iters * fmas_per_load;
    d.warps_other =
            kWarps * iters *
            (1.0 + fmas_per_load * kLoopOverheadPer32 / 32.0 + 0.25);

    LoopKernel k;
    k.body = {{InstrClass::GlobalLd, 128.0, false, false}};
    for (int i = 0; i < fmas_per_load; ++i)
        k.body.push_back({InstrClass::SP, 0.0, false, false});
    k.body.push_back({InstrClass::Control, 0.0, false, false});
    k.trip_count = static_cast<std::uint64_t>(iters);
    k.epilogue = {{InstrClass::GlobalSt, 128.0, true, false}};
    mb.loop = k;
    return mb;
}

namespace
{

/**
 * Hand-assembled component blends for the 7 Mix microbenchmarks,
 * authored as target utilizations at the GTX Titan X reference
 * configuration (the same inversion the validation workloads use, so
 * the blends stress several components simultaneously instead of one
 * demand term swamping the rest). The resulting absolute demands run
 * unchanged on every device.
 */
std::vector<Microbenchmark>
buildMixes()
{
    struct Blend
    {
        const char *name;
        double u_int, u_sp, u_dp, u_sf, u_sh, u_l2, u_dram;
    };
    // The last blend is the near-TDP "everything" case that produces
    // the suite's maximum dynamic-power share (Fig. 5B).
    const std::vector<Blend> blends = {
        {"MIX-SpShared", 0.10, 0.60, 0.00, 0.00, 0.80, 0.15, 0.20},
        {"MIX-IntL2", 0.50, 0.10, 0.00, 0.00, 0.00, 0.80, 0.15},
        {"MIX-SpDram", 0.12, 0.50, 0.00, 0.00, 0.00, 0.30, 0.85},
        {"MIX-DpDram", 0.05, 0.05, 0.70, 0.00, 0.00, 0.25, 0.60},
        {"MIX-SfShared", 0.15, 0.10, 0.00, 0.70, 0.60, 0.10, 0.12},
        {"MIX-IntSpDram", 0.40, 0.40, 0.00, 0.00, 0.00, 0.30, 0.60},
        {"MIX-All", 0.35, 0.60, 0.05, 0.30, 0.50, 0.50, 0.60},
    };

    const gpu::DeviceDescriptor &ref_dev =
            gpu::DeviceDescriptor::get(gpu::DeviceKind::GtxTitanX);
    const gpu::FreqConfig ref = ref_dev.referenceConfig();
    constexpr double time_s = 0.01;

    std::vector<Microbenchmark> out;
    for (const Blend &b : blends) {
        Microbenchmark mb;
        mb.family = Family::Mix;
        mb.name = b.name;
        KernelDemand &d = mb.demand;
        d.name = mb.name;
        const auto unit = [&](gpu::Component c, double u) {
            return u * ref_dev.peakWarpsPerSecond(c, ref.core_mhz) *
                   time_s;
        };
        d.warps_int = unit(gpu::Component::Int, b.u_int);
        d.warps_sp = unit(gpu::Component::SP, b.u_sp);
        d.warps_dp = unit(gpu::Component::DP, b.u_dp);
        d.warps_sf = unit(gpu::Component::SF, b.u_sf);
        d.warps_other =
                0.12 * (d.warps_int + d.warps_sp + d.warps_dp +
                        d.warps_sf);
        const auto level = [&](gpu::Component c, double u) {
            return u * ref_dev.peakBandwidth(c, ref) * time_s;
        };
        d.bytes_shared_ld =
                0.5 * level(gpu::Component::Shared, b.u_sh);
        d.bytes_shared_st = d.bytes_shared_ld;
        d.bytes_l2_rd = 0.7 * level(gpu::Component::L2, b.u_l2);
        d.bytes_l2_wr = 0.3 * level(gpu::Component::L2, b.u_l2);
        d.bytes_dram_rd = 0.7 * level(gpu::Component::Dram, b.u_dram);
        d.bytes_dram_wr = 0.3 * level(gpu::Component::Dram, b.u_dram);
        out.push_back(std::move(mb));
    }
    return out;
}

} // namespace

std::vector<Microbenchmark>
buildFamily(Family family)
{
    std::vector<Microbenchmark> out;
    switch (family) {
      case Family::Int:
        for (int n : kIntSweep)
            out.push_back(makeArithmetic(Family::Int, n));
        break;
      case Family::SP:
        for (int n : kSpSweep)
            out.push_back(makeArithmetic(Family::SP, n));
        break;
      case Family::DP:
        for (int n : kDpSweep)
            out.push_back(makeArithmetic(Family::DP, n));
        break;
      case Family::SF:
        for (int n : kSfSweep)
            out.push_back(makeArithmetic(Family::SF, n));
        break;
      case Family::L2:
        for (int k : kL2Sweep)
            out.push_back(makeL2(k));
        break;
      case Family::Shared:
        for (int k : kSharedSweep)
            out.push_back(makeShared(k));
        break;
      case Family::Dram:
        for (int k : kDramSweep)
            out.push_back(makeDram(k));
        break;
      case Family::Mix:
        out = buildMixes();
        break;
      case Family::Idle: {
        Microbenchmark idle;
        idle.family = Family::Idle;
        idle.name = "Idle";
        idle.demand.name = "Idle";
        out.push_back(std::move(idle));
        break;
      }
    }
    return out;
}

std::vector<Microbenchmark>
buildSuite()
{
    // Fig. 5 presentation order: INT, SP, DP, SF, L2, Shared, DRAM,
    // MIX, and the awake-but-idle case. 83 microbenchmarks in total.
    std::vector<Microbenchmark> suite;
    for (Family f : {Family::Int, Family::SP, Family::DP, Family::SF,
                     Family::L2, Family::Shared, Family::Dram,
                     Family::Mix, Family::Idle}) {
        auto fam = buildFamily(f);
        suite.insert(suite.end(),
                     std::make_move_iterator(fam.begin()),
                     std::make_move_iterator(fam.end()));
    }
    GPUPM_ASSERT(suite.size() == 83, "suite has ", suite.size(),
                 " entries, expected 83");
    return suite;
}

} // namespace ubench
} // namespace gpupm
