/**
 * @file
 * Experimental L2 peak-bandwidth calibration (Sec. III-C).
 *
 * The paper: "The L2 cache peak bandwidth cannot be computed as
 * trivially [as DRAM/shared] ... Hence, it was experimentally
 * determined with a set of specific L2 microbenchmarks." This module
 * performs that calibration against a board: it profiles the L2
 * microbenchmark family, computes each kernel's achieved L2 bandwidth
 * from the Table I sector-query events and the measured duration, and
 * reports the maximum — the normalization constant Eq. 9 needs.
 */

#ifndef GPUPM_UBENCH_L2_CALIBRATION_HH
#define GPUPM_UBENCH_L2_CALIBRATION_HH

#include <cstdint>

#include "sim/physical_gpu.hh"

namespace gpupm
{
namespace ubench
{

/** Result of the L2 calibration run. */
struct L2Calibration
{
    /** Highest achieved L2 bandwidth across the family, bytes/s. */
    double peak_bandwidth = 0.0;
    /** The same, expressed in bytes per core cycle. */
    double bytes_per_cycle = 0.0;
    /** Which family member achieved it (intensity knob value). */
    int best_knob = 0;
};

/**
 * Run the L2 microbenchmark family at the reference configuration and
 * determine the device's peak L2 bandwidth from the observed events.
 *
 * @param board  device under calibration.
 * @param seed   profiling-noise seed.
 */
L2Calibration calibrateL2PeakBandwidth(const sim::PhysicalGpu &board,
                                       std::uint64_t seed = 7);

} // namespace ubench
} // namespace gpupm

#endif // GPUPM_UBENCH_L2_CALIBRATION_HH
