#include "cuda_source.hh"

#include <sstream>

#include "common/logging.hh"

namespace gpupm
{
namespace ubench
{

namespace
{

/** Intensity knob parsed back from the microbenchmark name. */
int
knobOf(const Microbenchmark &mb)
{
    const auto pos = mb.name.find_last_of("NK");
    GPUPM_ASSERT(pos != std::string::npos &&
                         pos + 1 < mb.name.size(),
                 "no knob in name '", mb.name, "'");
    return std::stoi(mb.name.substr(pos + 1));
}

std::string
sanitized(const std::string &name)
{
    std::string out;
    for (char c : name)
        out += std::isalnum(static_cast<unsigned char>(c)) ? c : '_';
    return out;
}

/** Fig. 3a: the INT / SP / DP arithmetic template. */
std::string
arithmeticSource(const Microbenchmark &mb, const char *type)
{
    std::ostringstream os;
    const int n = knobOf(mb);
    os << "__global__ void ubench_" << sanitized(mb.name)
       << "(const " << type << " *A, " << type << " *B)\n"
       << "{\n"
       << "    const int threadId = blockIdx.x * blockDim.x + "
          "threadIdx.x;\n"
       << "    " << type << " r0, r1, r2, r3;\n"
       << "    r0 = A[threadId];\n"
       << "    r1 = r2 = r3 = r0;\n"
       << "#pragma unroll 8\n"
       << "    for (int i = 0; i < " << n << "; i++) {\n"
       << "        r0 = r0 * r0 + r1;\n"
       << "        r1 = r1 * r1 + r2;\n"
       << "        r2 = r2 * r2 + r3;\n"
       << "        r3 = r3 * r3 + r0;\n"
       << "    }\n"
       << "    B[threadId] = r0;\n"
       << "}\n";
    return os.str();
}

/** Fig. 3b: the special-function template. */
std::string
sfSource(const Microbenchmark &mb)
{
    std::ostringstream os;
    const int n = knobOf(mb);
    os << "__global__ void ubench_" << sanitized(mb.name)
       << "(const float *A, float *B)\n"
       << "{\n"
       << "    const int threadId = blockIdx.x * blockDim.x + "
          "threadIdx.x;\n"
       << "    float r0, r1, r2, r3;\n"
       << "    r0 = A[threadId];\n"
       << "    r1 = r2 = r3 = r0;\n"
       << "    for (int i = 0; i < " << n << "; i++) {\n"
       << "        r0 = __logf(r1);\n"
       << "        r1 = __cosf(r2);\n"
       << "        r2 = __logf(r3);\n"
       << "        r3 = __sinf(r0);\n"
       << "    }\n"
       << "    B[threadId] = r0;\n"
       << "}\n";
    return os.str();
}

/** Fig. 3c: the shared-memory template with the INT-blend knob. */
std::string
sharedSource(const Microbenchmark &mb)
{
    std::ostringstream os;
    const int k = knobOf(mb);
    os << "#define THREADS 256\n"
       << "__global__ void ubench_" << sanitized(mb.name)
       << "(float *cdout)\n"
       << "{\n"
       << "    __shared__ float shared[THREADS];\n"
       << "    const int threadId = threadIdx.x;\n"
       << "    float r0 = 0.f;\n"
       << "    int acc = threadId;\n"
       << "    for (int i = 0; i < 256; i++) {\n"
       << "        r0 = shared[threadId];\n"
       << "        shared[THREADS - threadId - 1] = r0;\n";
    for (int j = 0; j < k; ++j)
        os << "        acc = acc * 33 + " << (j + 1) << ";\n";
    os << "    }\n"
       << "    cdout[threadId] = r0 + acc;\n"
       << "}\n";
    return os.str();
}

/** Fig. 3d: the L2 template ([26]-style resident working set). */
std::string
l2Source(const Microbenchmark &mb)
{
    std::ostringstream os;
    const int k = knobOf(mb);
    os << "__global__ void ubench_" << sanitized(mb.name)
       << "(const float *cdin, float *cdout)\n"
       << "{\n"
       << "    const int threadId = blockIdx.x * blockDim.x + "
          "threadIdx.x;\n"
       << "    float r0 = 0.f;\n"
       << "    int acc = threadId;\n"
       << "    // working set sized to stay resident in the L2\n"
       << "    for (int i = 0; i < 128; i++) {\n"
       << "        r0 = cdin[threadId];\n"
       << "        cdout[threadId] = r0;\n";
    for (int j = 0; j < k; ++j)
        os << "        acc = acc * 33 + " << (j + 1) << ";\n";
    os << "    }\n"
       << "    cdout[threadId] = r0 + acc;\n"
       << "}\n";
    return os.str();
}

/** Fig. 3e: the DRAM streaming template with the FMA-blend knob. */
std::string
dramSource(const Microbenchmark &mb)
{
    std::ostringstream os;
    const int k = knobOf(mb);
    os << "__global__ void ubench_" << sanitized(mb.name)
       << "(const float *A, float *B, int stride)\n"
       << "{\n"
       << "    const int threadId = blockIdx.x * blockDim.x + "
          "threadIdx.x;\n"
       << "    float r0 = 0.f, r1 = 1.f;\n"
       << "    for (int i = 0; i < 256; i++) {\n"
       << "        r0 = A[threadId + i * stride];\n";
    for (int j = 0; j < k; ++j)
        os << "        r1 = r1 * r1 + r0;\n";
    os << "    }\n"
       << "    B[threadId] = r0 + r1;\n"
       << "}\n";
    return os.str();
}

/** Mix kernels: emitted as a documented combination. */
std::string
mixSource(const Microbenchmark &mb)
{
    std::ostringstream os;
    os << "// " << mb.name << ": combined-component kernel; the\n"
       << "// simulator blend is documented by its demand ratios.\n"
       << "__global__ void ubench_" << sanitized(mb.name)
       << "(const float *A, float *B)\n"
       << "{\n"
       << "    const int threadId = blockIdx.x * blockDim.x + "
          "threadIdx.x;\n"
       << "    __shared__ float sh[256];\n"
       << "    float r0 = A[threadId], r1 = r0;\n"
       << "    int acc = threadId;\n"
       << "    for (int i = 0; i < 256; i++) {\n"
       << "        r0 = r0 * r0 + r1;           // SP\n"
       << "        acc = acc * 33 + i;          // INT\n"
       << "        sh[threadIdx.x] = r0;        // shared\n"
       << "        r1 = A[(threadId + i) & 0xffff] + sh[255 - "
          "threadIdx.x];\n"
       << "    }\n"
       << "    B[threadId] = r0 + r1 + acc;\n"
       << "}\n";
    return os.str();
}

} // namespace

std::string
cudaSource(const Microbenchmark &mb)
{
    switch (mb.family) {
      case Family::Int:
        return arithmeticSource(mb, "int");
      case Family::SP:
        return arithmeticSource(mb, "float");
      case Family::DP:
        return arithmeticSource(mb, "double");
      case Family::SF:
        return sfSource(mb);
      case Family::Shared:
        return sharedSource(mb);
      case Family::L2:
        return l2Source(mb);
      case Family::Dram:
        return dramSource(mb);
      case Family::Mix:
        return mixSource(mb);
      case Family::Idle:
        GPUPM_FATAL("the Idle microbenchmark has no kernel");
    }
    GPUPM_PANIC("unknown family");
}

std::string
cudaSuiteSource()
{
    std::ostringstream os;
    os << "// Auto-generated by gpupm: the 83-microbenchmark training "
          "suite\n"
       << "// (Sec. IV / Fig. 3 of the paper). Compile with nvcc; "
          "each kernel\n"
       << "// is launched over 2^20 threads.\n\n";
    std::size_t kernels = 0;
    for (const auto &mb : buildSuite()) {
        if (mb.family == Family::Idle)
            continue;
        os << cudaSource(mb) << "\n";
        ++kernels;
    }
    os << "// " << kernels << " kernels.\n";
    return os.str();
}

} // namespace ubench
} // namespace gpupm
