#include "l2_calibration.hh"

#include "common/logging.hh"
#include "cupti/profiler.hh"
#include "ubench/suite.hh"

namespace gpupm
{
namespace ubench
{

L2Calibration
calibrateL2PeakBandwidth(const sim::PhysicalGpu &board,
                         std::uint64_t seed)
{
    const gpu::DeviceDescriptor &desc = board.descriptor();
    const gpu::FreqConfig ref = desc.referenceConfig();
    cupti::Profiler profiler(board, seed);

    L2Calibration cal;
    const auto family = buildFamily(Family::L2);
    GPUPM_ASSERT(!family.empty(), "no L2 microbenchmarks");

    for (const Microbenchmark &mb : family) {
        const auto rm = profiler.profile(mb.demand, ref);
        if (rm.time_s <= 0.0)
            continue;
        const double achieved =
                (rm.l2_rd_bytes + rm.l2_wr_bytes) / rm.time_s;
        if (achieved > cal.peak_bandwidth) {
            cal.peak_bandwidth = achieved;
            // Recover the knob from the "L2-K<n>" name.
            cal.best_knob =
                    std::stoi(mb.name.substr(mb.name.find('K') + 1));
        }
    }
    cal.bytes_per_cycle =
            cal.peak_bandwidth / (1e6 * ref.core_mhz);
    return cal;
}

} // namespace ubench
} // namespace gpupm
