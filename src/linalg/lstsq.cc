#include "lstsq.hh"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

namespace gpupm
{
namespace linalg
{

namespace
{

/**
 * In-place Householder QR with column pivoting on a copy of A.
 * Returns the permutation and effective numerical rank; b is replaced
 * by Q^T b.
 */
struct QrPivot
{
    Matrix r;                      // upper-triangular factor (in place)
    Vector qtb;                    // Q^T b
    std::vector<std::size_t> perm; // column permutation
    std::size_t rank = 0;
};

QrPivot
factorize(const Matrix &a, const Vector &b, double rcond)
{
    const std::size_t m = a.rows();
    const std::size_t n = a.cols();
    GPUPM_ASSERT(b.size() == m, "lstsq rhs dimension ", b.size(),
                 " != rows ", m);
    GPUPM_ASSERT(m >= 1 && n >= 1, "empty system");

    QrPivot qr;
    qr.r = a;
    qr.qtb = b;
    qr.perm.resize(n);
    std::iota(qr.perm.begin(), qr.perm.end(), std::size_t{0});

    // Running squared column norms for pivot selection.
    std::vector<double> colnorm(n, 0.0);
    for (std::size_t c = 0; c < n; ++c)
        for (std::size_t r = 0; r < m; ++r)
            colnorm[c] += qr.r(r, c) * qr.r(r, c);

    const std::size_t steps = std::min(m, n);
    double first_pivot = 0.0;

    for (std::size_t k = 0; k < steps; ++k) {
        // Pivot: bring the column with the largest remaining norm to k.
        std::size_t best = k;
        for (std::size_t c = k + 1; c < n; ++c)
            if (colnorm[c] > colnorm[best])
                best = c;
        if (best != k) {
            for (std::size_t r = 0; r < m; ++r)
                std::swap(qr.r(r, k), qr.r(r, best));
            std::swap(colnorm[k], colnorm[best]);
            std::swap(qr.perm[k], qr.perm[best]);
        }

        // Householder reflection for column k.
        double alpha = 0.0;
        for (std::size_t r = k; r < m; ++r)
            alpha += qr.r(r, k) * qr.r(r, k);
        alpha = std::sqrt(alpha);
        if (alpha == 0.0) {
            colnorm[k] = 0.0;
            continue;
        }
        if (qr.r(k, k) > 0.0)
            alpha = -alpha;

        if (k == 0)
            first_pivot = std::abs(alpha);
        if (std::abs(alpha) <= rcond * first_pivot) {
            // Numerically rank-deficient from here on.
            break;
        }

        std::vector<double> v(m - k);
        v[0] = qr.r(k, k) - alpha;
        for (std::size_t r = k + 1; r < m; ++r)
            v[r - k] = qr.r(r, k);
        double vnorm2 = 0.0;
        for (double x : v)
            vnorm2 += x * x;
        if (vnorm2 == 0.0) {
            qr.rank = k + 1;
            continue;
        }

        qr.r(k, k) = alpha;
        for (std::size_t r = k + 1; r < m; ++r)
            qr.r(r, k) = 0.0;

        // Apply reflection to remaining columns and to b.
        for (std::size_t c = k + 1; c < n; ++c) {
            double dot = 0.0;
            for (std::size_t r = k; r < m; ++r)
                dot += v[r - k] * qr.r(r, c);
            const double scale = 2.0 * dot / vnorm2;
            for (std::size_t r = k; r < m; ++r)
                qr.r(r, c) -= scale * v[r - k];
        }
        {
            double dot = 0.0;
            for (std::size_t r = k; r < m; ++r)
                dot += v[r - k] * qr.qtb[r];
            const double scale = 2.0 * dot / vnorm2;
            for (std::size_t r = k; r < m; ++r)
                qr.qtb[r] -= scale * v[r - k];
        }

        // Update running column norms.
        for (std::size_t c = k + 1; c < n; ++c)
            colnorm[c] = std::max(0.0,
                                  colnorm[c] - qr.r(k, c) * qr.r(k, c));

        qr.rank = k + 1;
    }

    return qr;
}

/** Read rank/condition diagnostics off a finished factorization. */
LstsqDiagnostics
diagnosticsOf(const QrPivot &qr, std::size_t m, std::size_t n)
{
    LstsqDiagnostics d;
    d.rank = qr.rank;
    d.rank_deficient = qr.rank < std::min(m, n);
    if (qr.rank > 0) {
        const double top = std::abs(qr.r(0, 0));
        const double bottom = std::abs(qr.r(qr.rank - 1, qr.rank - 1));
        d.condition = bottom > 0.0
                              ? top / bottom
                              : std::numeric_limits<double>::infinity();
    }
    return d;
}

} // namespace

Vector
leastSquares(const Matrix &a, const Vector &b, double rcond,
             LstsqDiagnostics *diag)
{
    const std::size_t n = a.cols();
    QrPivot qr = factorize(a, b, rcond);
    if (diag)
        *diag = diagnosticsOf(qr, a.rows(), n);

    // Back-substitute over the leading rank-by-rank triangle.
    Vector y(n, 0.0);
    for (std::size_t ii = qr.rank; ii-- > 0;) {
        double s = qr.qtb[ii];
        for (std::size_t c = ii + 1; c < qr.rank; ++c)
            s -= qr.r(ii, c) * y[c];
        y[ii] = s / qr.r(ii, ii);
    }

    Vector x(n, 0.0);
    for (std::size_t i = 0; i < n; ++i)
        x[qr.perm[i]] = y[i];
    return x;
}

LstsqDiagnostics
designDiagnostics(const Matrix &a, double rcond)
{
    const Vector zero(a.rows(), 0.0);
    const QrPivot qr = factorize(a, zero, rcond);
    return diagnosticsOf(qr, a.rows(), a.cols());
}

Vector
nnls(const Matrix &a, const Vector &b, std::size_t max_iter)
{
    const std::size_t m = a.rows();
    const std::size_t n = a.cols();
    GPUPM_ASSERT(b.size() == m, "nnls rhs dimension mismatch");
    if (max_iter == 0)
        max_iter = 3 * n + 30;

    // Lawson–Hanson: grow an active (positive) set P greedily by the
    // most positive gradient of the residual, solving the free LS
    // subproblem on P each step and stepping back to the boundary when
    // a coefficient would go negative.
    std::vector<bool> in_p(n, false);
    Vector x(n, 0.0);

    const Matrix at = a.transposed();
    const double tol = 1e-10 * (1.0 + b.norm());

    for (std::size_t outer = 0; outer < max_iter; ++outer) {
        // w = A^T (b - A x)
        Vector resid = b - a * x;
        Vector w = at * resid;

        std::size_t best = n;
        double best_w = tol;
        for (std::size_t j = 0; j < n; ++j) {
            if (!in_p[j] && w[j] > best_w) {
                best_w = w[j];
                best = j;
            }
        }
        if (best == n)
            break; // KKT satisfied.
        in_p[best] = true;

        // Inner loop: solve on P, trim negatives.
        for (std::size_t inner = 0; inner <= max_iter; ++inner) {
            std::vector<std::size_t> p;
            for (std::size_t j = 0; j < n; ++j)
                if (in_p[j])
                    p.push_back(j);

            Matrix ap(m, p.size());
            for (std::size_t r = 0; r < m; ++r)
                for (std::size_t c = 0; c < p.size(); ++c)
                    ap(r, c) = a(r, p[c]);
            Vector z = leastSquares(ap, b);

            bool all_positive = true;
            for (double v : z.data())
                if (v <= 0.0)
                    all_positive = false;
            if (all_positive) {
                for (std::size_t j = 0; j < n; ++j)
                    x[j] = 0.0;
                for (std::size_t c = 0; c < p.size(); ++c)
                    x[p[c]] = z[c];
                break;
            }

            // Step from x toward z, stopping at the first boundary.
            double alpha = 1.0;
            for (std::size_t c = 0; c < p.size(); ++c) {
                if (z[c] <= 0.0) {
                    const double xj = x[p[c]];
                    const double denom = xj - z[c];
                    if (denom > 0.0)
                        alpha = std::min(alpha, xj / denom);
                }
            }
            for (std::size_t c = 0; c < p.size(); ++c)
                x[p[c]] += alpha * (z[c] - x[p[c]]);
            for (std::size_t c = 0; c < p.size(); ++c)
                if (x[p[c]] <= tol) {
                    x[p[c]] = 0.0;
                    in_p[p[c]] = false;
                }
        }
    }
    return x;
}

Vector
nnlsRidge(const Matrix &a, const Vector &b, double ridge)
{
    GPUPM_ASSERT(ridge >= 0.0, "negative ridge ", ridge);
    if (ridge == 0.0)
        return nnls(a, b);
    const std::size_t m = a.rows();
    const std::size_t n = a.cols();
    Matrix aug(m + n, n);
    Vector rhs(m + n, 0.0);
    for (std::size_t r = 0; r < m; ++r) {
        for (std::size_t c = 0; c < n; ++c)
            aug(r, c) = a(r, c);
        rhs[r] = b[r];
    }
    const double s = std::sqrt(ridge);
    for (std::size_t j = 0; j < n; ++j)
        aug(m + j, j) = s;
    return nnls(aug, rhs);
}

double
residualSumSquares(const Matrix &a, const Vector &x, const Vector &b)
{
    Vector r = a * x - b;
    return r.dot(r);
}

} // namespace linalg
} // namespace gpupm
