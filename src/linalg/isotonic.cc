#include "isotonic.hh"

#include <algorithm>

#include "common/logging.hh"

namespace gpupm
{
namespace linalg
{

std::vector<double>
isotonicNonDecreasing(const std::vector<double> &xs,
                      const std::vector<double> &weights)
{
    const std::size_t n = xs.size();
    if (n == 0)
        return {};
    GPUPM_ASSERT(weights.empty() || weights.size() == n,
                 "weights size ", weights.size(), " vs ", n);

    // Blocks of pooled values: (mean, weight, count).
    struct Block
    {
        double mean;
        double weight;
        std::size_t count;
    };
    std::vector<Block> blocks;
    blocks.reserve(n);

    for (std::size_t i = 0; i < n; ++i) {
        const double w = weights.empty() ? 1.0 : weights[i];
        GPUPM_ASSERT(w >= 0.0, "negative weight at ", i);
        blocks.push_back({xs[i], w, 1});
        // Merge while the tail violates monotonicity.
        while (blocks.size() >= 2) {
            Block &b = blocks[blocks.size() - 1];
            Block &a = blocks[blocks.size() - 2];
            if (a.mean <= b.mean)
                break;
            const double tw = a.weight + b.weight;
            const double m = tw > 0.0
                ? (a.mean * a.weight + b.mean * b.weight) / tw
                : 0.5 * (a.mean + b.mean);
            a = {m, tw, a.count + b.count};
            blocks.pop_back();
        }
    }

    std::vector<double> out;
    out.reserve(n);
    for (const Block &b : blocks)
        out.insert(out.end(), b.count, b.mean);
    return out;
}

std::vector<double>
isotonicNonIncreasing(const std::vector<double> &xs,
                      const std::vector<double> &weights)
{
    std::vector<double> flipped(xs.rbegin(), xs.rend());
    std::vector<double> wflip(weights.rbegin(), weights.rend());
    std::vector<double> fitted = isotonicNonDecreasing(flipped, wflip);
    std::reverse(fitted.begin(), fitted.end());
    return fitted;
}

} // namespace linalg
} // namespace gpupm
