#include "matrix.hh"

#include <cmath>

namespace gpupm
{
namespace linalg
{

double &
Vector::at(std::size_t i)
{
    GPUPM_ASSERT(i < data_.size(), "vector index ", i, " >= ",
                 data_.size());
    return data_[i];
}

double
Vector::at(std::size_t i) const
{
    GPUPM_ASSERT(i < data_.size(), "vector index ", i, " >= ",
                 data_.size());
    return data_[i];
}

double
Vector::dot(const Vector &other) const
{
    GPUPM_ASSERT(size() == other.size(), "dot: ", size(), " vs ",
                 other.size());
    double s = 0.0;
    for (std::size_t i = 0; i < size(); ++i)
        s += data_[i] * other.data_[i];
    return s;
}

double
Vector::norm() const
{
    return std::sqrt(dot(*this));
}

Vector
Vector::operator+(const Vector &other) const
{
    GPUPM_ASSERT(size() == other.size(), "add: ", size(), " vs ",
                 other.size());
    Vector out(size());
    for (std::size_t i = 0; i < size(); ++i)
        out[i] = data_[i] + other.data_[i];
    return out;
}

Vector
Vector::operator-(const Vector &other) const
{
    GPUPM_ASSERT(size() == other.size(), "sub: ", size(), " vs ",
                 other.size());
    Vector out(size());
    for (std::size_t i = 0; i < size(); ++i)
        out[i] = data_[i] - other.data_[i];
    return out;
}

Vector
Vector::operator*(double s) const
{
    Vector out(size());
    for (std::size_t i = 0; i < size(); ++i)
        out[i] = data_[i] * s;
    return out;
}

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> rows)
{
    rows_ = rows.size();
    cols_ = rows_ ? rows.begin()->size() : 0;
    data_.reserve(rows_ * cols_);
    for (const auto &r : rows) {
        GPUPM_ASSERT(r.size() == cols_, "ragged initializer row");
        data_.insert(data_.end(), r.begin(), r.end());
    }
}

Matrix
Matrix::identity(std::size_t n)
{
    Matrix m(n, n);
    for (std::size_t i = 0; i < n; ++i)
        m(i, i) = 1.0;
    return m;
}

double &
Matrix::at(std::size_t r, std::size_t c)
{
    GPUPM_ASSERT(r < rows_ && c < cols_, "matrix index (", r, ",", c,
                 ") out of ", rows_, "x", cols_);
    return data_[r * cols_ + c];
}

double
Matrix::at(std::size_t r, std::size_t c) const
{
    GPUPM_ASSERT(r < rows_ && c < cols_, "matrix index (", r, ",", c,
                 ") out of ", rows_, "x", cols_);
    return data_[r * cols_ + c];
}

Vector
Matrix::operator*(const Vector &x) const
{
    GPUPM_ASSERT(x.size() == cols_, "matvec: ", cols_, " vs ", x.size());
    Vector y(rows_);
    for (std::size_t r = 0; r < rows_; ++r) {
        double s = 0.0;
        for (std::size_t c = 0; c < cols_; ++c)
            s += data_[r * cols_ + c] * x[c];
        y[r] = s;
    }
    return y;
}

Matrix
Matrix::operator*(const Matrix &other) const
{
    GPUPM_ASSERT(cols_ == other.rows_, "matmul: ", rows_, "x", cols_,
                 " * ", other.rows_, "x", other.cols_);
    Matrix out(rows_, other.cols_);
    for (std::size_t r = 0; r < rows_; ++r) {
        for (std::size_t k = 0; k < cols_; ++k) {
            const double a = data_[r * cols_ + k];
            if (a == 0.0)
                continue;
            for (std::size_t c = 0; c < other.cols_; ++c)
                out(r, c) += a * other(k, c);
        }
    }
    return out;
}

Matrix
Matrix::transposed() const
{
    Matrix out(cols_, rows_);
    for (std::size_t r = 0; r < rows_; ++r)
        for (std::size_t c = 0; c < cols_; ++c)
            out(c, r) = data_[r * cols_ + c];
    return out;
}

Vector
Matrix::row(std::size_t r) const
{
    GPUPM_ASSERT(r < rows_, "row ", r, " >= ", rows_);
    Vector v(cols_);
    for (std::size_t c = 0; c < cols_; ++c)
        v[c] = data_[r * cols_ + c];
    return v;
}

Vector
Matrix::col(std::size_t c) const
{
    GPUPM_ASSERT(c < cols_, "col ", c, " >= ", cols_);
    Vector v(rows_);
    for (std::size_t r = 0; r < rows_; ++r)
        v[r] = data_[r * cols_ + c];
    return v;
}

void
Matrix::appendRow(const Vector &r)
{
    if (rows_ == 0 && cols_ == 0)
        cols_ = r.size();
    GPUPM_ASSERT(r.size() == cols_, "appendRow: ", r.size(), " vs ",
                 cols_);
    data_.insert(data_.end(), r.data().begin(), r.data().end());
    ++rows_;
}

} // namespace linalg
} // namespace gpupm
