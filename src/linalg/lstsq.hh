/**
 * @file
 * Linear least-squares solvers.
 *
 * The Sec. III-D estimator alternates two least-squares subproblems; the
 * coefficient fit (steps 1 and 3) uses either unconstrained QR least
 * squares or non-negative least squares (the physical coefficients
 * β0, β1, ωi are capacitance/leakage aggregates and cannot be negative).
 */

#ifndef GPUPM_LINALG_LSTSQ_HH
#define GPUPM_LINALG_LSTSQ_HH

#include "matrix.hh"

namespace gpupm
{
namespace linalg
{

/**
 * Numerical-conditioning diagnostics of a design matrix, read off the
 * column-pivoted QR factorization: the effective rank at the rcond
 * cutoff and the ratio of the largest to the smallest accepted pivot
 * magnitude — a cheap, order-of-magnitude estimate of the 2-norm
 * condition number (the normal equations square it). Estimation-layer
 * guardrails use these to reject under-identified systems and to
 * report how trustworthy the fitted coefficients are.
 */
struct LstsqDiagnostics
{
    std::size_t rank = 0;      ///< numerical rank at the rcond cutoff
    double condition = 0.0;    ///< |pivot_1| / |pivot_rank| estimate
    bool rank_deficient = false; ///< rank < min(rows, cols)
};

/**
 * Solve min_x ||A x - b||_2 via Householder QR with column pivoting.
 *
 * Rank-deficient systems are handled by zeroing the trailing pivots
 * (a basic solution, not the minimum-norm one), which is the behaviour
 * the alternating estimator needs: unidentifiable coefficients stay 0
 * instead of exploding.
 *
 * @param a  m-by-n design matrix, m >= 1.
 * @param b  right-hand side of dimension m.
 * @param rcond  relative condition cutoff for rank detection.
 * @param diag  when non-null, receives rank/condition diagnostics.
 * @return  solution vector of dimension n.
 */
Vector leastSquares(const Matrix &a, const Vector &b,
                    double rcond = 1e-12,
                    LstsqDiagnostics *diag = nullptr);

/**
 * Rank and condition diagnostics of a design matrix without solving
 * (one pivoted-QR factorization pass).
 */
LstsqDiagnostics designDiagnostics(const Matrix &a,
                                   double rcond = 1e-12);

/**
 * Solve min_x ||A x - b||_2 subject to x >= 0 (Lawson–Hanson active-set
 * NNLS).
 *
 * @param a  m-by-n design matrix.
 * @param b  right-hand side of dimension m.
 * @param max_iter  iteration cap (0 means 3*n).
 * @return  non-negative solution vector of dimension n.
 */
Vector nnls(const Matrix &a, const Vector &b, std::size_t max_iter = 0);

/**
 * Solve min_x ||A x - b||_2 + ridge * ||x||_2 with x >= 0, by augmenting
 * the system with sqrt(ridge)*I rows. A small ridge keeps the
 * alternating fit stable when microbenchmark utilizations are nearly
 * collinear.
 */
Vector nnlsRidge(const Matrix &a, const Vector &b, double ridge);

/** Residual sum of squares ||A x - b||^2. */
double residualSumSquares(const Matrix &a, const Vector &x,
                          const Vector &b);

} // namespace linalg
} // namespace gpupm

#endif // GPUPM_LINALG_LSTSQ_HH
