/**
 * @file
 * Isotonic regression (pool-adjacent-violators) used to enforce the
 * Eq. 12 constraint of the paper: for frequencies f1 > f2 the fitted
 * normalized voltages must satisfy V̄(f1) >= V̄(f2).
 */

#ifndef GPUPM_LINALG_ISOTONIC_HH
#define GPUPM_LINALG_ISOTONIC_HH

#include <vector>

namespace gpupm
{
namespace linalg
{

/**
 * Weighted isotonic regression: find the non-decreasing sequence y
 * minimizing sum_i w_i (y_i - x_i)^2 (PAVA, O(n)).
 *
 * @param xs  input sequence, ordered by the constraint axis
 *            (ascending frequency).
 * @param weights  optional per-point weights; empty means all 1.
 * @return  non-decreasing fitted sequence of the same length.
 */
std::vector<double> isotonicNonDecreasing(
        const std::vector<double> &xs,
        const std::vector<double> &weights = {});

/** Convenience wrapper fitting a non-increasing sequence. */
std::vector<double> isotonicNonIncreasing(
        const std::vector<double> &xs,
        const std::vector<double> &weights = {});

} // namespace linalg
} // namespace gpupm

#endif // GPUPM_LINALG_ISOTONIC_HH
