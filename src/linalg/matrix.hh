/**
 * @file
 * Dense double-precision vector and matrix types.
 *
 * The estimator (Sec. III-D of the paper) needs ordinary dense linear
 * algebra at modest sizes (hundreds of rows, ~10 columns), so this is a
 * deliberately small, owning, row-major implementation rather than a
 * binding to an external BLAS.
 */

#ifndef GPUPM_LINALG_MATRIX_HH
#define GPUPM_LINALG_MATRIX_HH

#include <cstddef>
#include <initializer_list>
#include <vector>

#include "common/logging.hh"

namespace gpupm
{
namespace linalg
{

/** Owning dense vector of doubles. */
class Vector
{
  public:
    Vector() = default;

    /** Zero vector of the given dimension. */
    explicit Vector(std::size_t n) : data_(n, 0.0) {}

    /** Vector with all entries set to fill. */
    Vector(std::size_t n, double fill) : data_(n, fill) {}

    /** Construct from a braced list of values. */
    Vector(std::initializer_list<double> values) : data_(values) {}

    /** Dimension. */
    std::size_t size() const { return data_.size(); }

    double &operator[](std::size_t i) { return data_[i]; }
    double operator[](std::size_t i) const { return data_[i]; }

    /** Bounds-checked access (panics out of range). */
    double &at(std::size_t i);
    double at(std::size_t i) const;

    /** Underlying storage. */
    const std::vector<double> &data() const { return data_; }
    std::vector<double> &data() { return data_; }

    /** Dot product; dimensions must agree. */
    double dot(const Vector &other) const;

    /** Euclidean norm. */
    double norm() const;

    /** Elementwise sum; dimensions must agree. */
    Vector operator+(const Vector &other) const;

    /** Elementwise difference; dimensions must agree. */
    Vector operator-(const Vector &other) const;

    /** Scalar product. */
    Vector operator*(double s) const;

  private:
    std::vector<double> data_;
};

/** Owning dense row-major matrix of doubles. */
class Matrix
{
  public:
    Matrix() = default;

    /** Zero matrix of the given shape. */
    Matrix(std::size_t rows, std::size_t cols)
        : rows_(rows), cols_(cols), data_(rows * cols, 0.0)
    {}

    /** Construct from nested braces: {{1,2},{3,4}}. */
    Matrix(std::initializer_list<std::initializer_list<double>> rows);

    /** Identity matrix of order n. */
    static Matrix identity(std::size_t n);

    std::size_t rows() const { return rows_; }
    std::size_t cols() const { return cols_; }

    double &operator()(std::size_t r, std::size_t c)
    {
        return data_[r * cols_ + c];
    }

    double operator()(std::size_t r, std::size_t c) const
    {
        return data_[r * cols_ + c];
    }

    /** Bounds-checked access (panics out of range). */
    double &at(std::size_t r, std::size_t c);
    double at(std::size_t r, std::size_t c) const;

    /** Matrix-vector product; x.size() must equal cols(). */
    Vector operator*(const Vector &x) const;

    /** Matrix-matrix product; this->cols() must equal other.rows(). */
    Matrix operator*(const Matrix &other) const;

    /** Transpose. */
    Matrix transposed() const;

    /** Copy of row r as a vector. */
    Vector row(std::size_t r) const;

    /** Copy of column c as a vector. */
    Vector col(std::size_t c) const;

    /** Append a row; must match cols() (sets cols() when empty). */
    void appendRow(const Vector &r);

  private:
    std::size_t rows_ = 0;
    std::size_t cols_ = 0;
    std::vector<double> data_;
};

} // namespace linalg
} // namespace gpupm

#endif // GPUPM_LINALG_MATRIX_HH
