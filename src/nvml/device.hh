/**
 * @file
 * NVML-style host facade over the simulated board.
 *
 * Mirrors how the paper drives real devices (Sec. V-A): application
 * clocks are set only to entries of the supported tables (the voltage
 * follows automatically and invisibly), power is read from a sensor
 * that refreshes every 35 ms (Titan Xp), 100 ms (GTX Titan X) or 15 ms
 * (Tesla K40c), kernels are repeated until the run lasts at least one
 * second at the fastest configuration, the run's samples are averaged,
 * and the whole measurement is repeated 10 times with the median
 * reported. The board also enforces TDP by automatically falling back
 * to the closest core frequency that does not violate it (the Fig. 9
 * footnote behaviour).
 */

#ifndef GPUPM_NVML_DEVICE_HH
#define GPUPM_NVML_DEVICE_HH

#include <string_view>

#include "common/random.hh"
#include "sim/physical_gpu.hh"

namespace gpupm
{
namespace nvml
{

/**
 * Typed outcome of a recoverable NVML-facade request.
 *
 * The real driver rejects off-table clock requests and out-of-range
 * power limits with an error code rather than killing the process; a
 * measurement harness must be able to observe the rejection and move
 * on (skip the configuration, retry, re-enumerate the tables). Panics
 * remain reserved for programmer errors — e.g. measuring an empty
 * kernel.
 */
enum class NvmlStatus
{
    Success,
    UnsupportedClocks,     ///< (mem, core) pair not in the tables
    PowerLimitOutOfRange,  ///< outside the board's [min, TDP] window
};

/** Display name of a status code. */
std::string_view nvmlStatusName(NvmlStatus status);

/** One averaged power measurement of a kernel at a configuration. */
struct PowerMeasurement
{
    double power_w = 0.0;        ///< median-of-runs average power
    double kernel_time_s = 0.0;  ///< single-launch execution time
    double run_duration_s = 0.0; ///< total repeated-run duration
    int samples_per_run = 0;     ///< sensor samples averaged per run
    gpu::FreqConfig effective;   ///< clocks after any TDP fallback
    bool tdp_limited = false;    ///< true when the board down-clocked
};

/** Host-side handle to one simulated device. */
class Device
{
  public:
    /**
     * @param board  simulated board to drive.
     * @param seed   seeds the sensor-noise stream.
     */
    explicit Device(const sim::PhysicalGpu &board,
                    std::uint64_t seed = 99);

    /** Device descriptor (Table II data). */
    const gpu::DeviceDescriptor &descriptor() const
    {
        return board_.descriptor();
    }

    /**
     * Set application clocks. Returns UnsupportedClocks (leaving the
     * current clocks untouched) when the pair is not in the supported
     * tables — the NVIDIA driver rejects such requests.
     */
    NvmlStatus trySetApplicationClocks(int mem_mhz, int core_mhz);

    /**
     * Convenience wrapper over trySetApplicationClocks that treats a
     * rejection as fatal, for call sites that only ever request
     * table entries.
     */
    void setApplicationClocks(int mem_mhz, int core_mhz);

    /** Currently requested clocks. */
    gpu::FreqConfig currentClocks() const { return clocks_; }

    /**
     * Board power-management limit (the NVML
     * SetPowerManagementLimit facility). Defaults to the TDP; the
     * board's automatic clock fallback honours the lower of the two.
     * Returns PowerLimitOutOfRange (limit unchanged) outside the
     * board's supported range [100 W, TDP].
     */
    NvmlStatus trySetPowerLimit(double watts);

    /** Fatal-on-rejection wrapper over trySetPowerLimit. */
    void setPowerLimit(double watts);

    /** Current power-management limit, watts. */
    double powerLimit() const { return power_limit_w_; }

    /** Sensor refresh period for this device, milliseconds. */
    double refreshPeriodMs() const;

    /**
     * Measure the average power of a kernel at the current clocks,
     * following the paper's methodology (repeat to >= min_duration at
     * the fastest configuration, average samples, median of
     * repetitions).
     */
    PowerMeasurement measureKernelPower(const sim::KernelDemand &demand,
                                        int repetitions = 10,
                                        double min_duration_s = 1.0);

    /** Average idle power at the current clocks (awake, no kernel). */
    double measureIdlePower(int samples = 20);

    /**
     * Core clock actually applied when running the demand at the
     * requested clocks: the highest table entry at or below the request
     * whose true power respects TDP.
     */
    gpu::FreqConfig effectiveClocksFor(const sim::KernelDemand &demand)
            const;

    /**
     * Reset the sensor-noise stream to the state a freshly
     * constructed Device(board, seed) would have. Campaign
     * checkpoint/resume re-seeds per measurement cell so an
     * interrupted run replays the exact byte-identical noise the
     * uninterrupted run would have drawn.
     */
    void reseed(std::uint64_t seed);

  private:
    /** One noisy instantaneous sensor reading of a true power. */
    double sampleSensor(double true_power_w);

    const sim::PhysicalGpu &board_;
    gpu::FreqConfig clocks_;
    double power_limit_w_;
    Rng noise_;
};

} // namespace nvml
} // namespace gpupm

#endif // GPUPM_NVML_DEVICE_HH
