#include "device.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "common/stats.hh"

namespace gpupm
{
namespace nvml
{

Device::Device(const sim::PhysicalGpu &board, std::uint64_t seed)
    : board_(board),
      clocks_(board.descriptor().referenceConfig()),
      power_limit_w_(board.descriptor().tdp_w),
      noise_(Rng(seed).split(7))
{}

std::string_view
nvmlStatusName(NvmlStatus status)
{
    switch (status) {
      case NvmlStatus::Success: return "Success";
      case NvmlStatus::UnsupportedClocks: return "UnsupportedClocks";
      case NvmlStatus::PowerLimitOutOfRange:
        return "PowerLimitOutOfRange";
    }
    GPUPM_PANIC("unknown NvmlStatus");
}

NvmlStatus
Device::trySetPowerLimit(double watts)
{
    const double tdp = board_.descriptor().tdp_w;
    if (watts < 100.0 || watts > tdp)
        return NvmlStatus::PowerLimitOutOfRange;
    power_limit_w_ = watts;
    return NvmlStatus::Success;
}

void
Device::setPowerLimit(double watts)
{
    GPUPM_FATAL_IF(trySetPowerLimit(watts) != NvmlStatus::Success,
                   "power limit ", watts, " W outside [100, ",
                   board_.descriptor().tdp_w, "] W");
}

NvmlStatus
Device::trySetApplicationClocks(int mem_mhz, int core_mhz)
{
    const gpu::FreqConfig cfg{core_mhz, mem_mhz};
    if (!board_.descriptor().supports(cfg))
        return NvmlStatus::UnsupportedClocks;
    clocks_ = cfg;
    return NvmlStatus::Success;
}

void
Device::setApplicationClocks(int mem_mhz, int core_mhz)
{
    GPUPM_FATAL_IF(trySetApplicationClocks(mem_mhz, core_mhz) !=
                           NvmlStatus::Success,
                   "unsupported application clocks (", core_mhz, ", ",
                   mem_mhz, ") MHz on ", board_.descriptor().name);
}

void
Device::reseed(std::uint64_t seed)
{
    noise_ = Rng(seed).split(7);
}

double
Device::refreshPeriodMs() const
{
    // Estimated sensor refresh periods from Sec. V-A.
    switch (board_.descriptor().kind) {
      case gpu::DeviceKind::TitanXp: return 35.0;
      case gpu::DeviceKind::GtxTitanX: return 100.0;
      case gpu::DeviceKind::TeslaK40c: return 15.0;
    }
    GPUPM_PANIC("unknown device kind");
}

double
Device::sampleSensor(double true_power_w)
{
    // Board sensors show proportional noise plus a small absolute
    // floor; NVML reports milliwatts, so quantize there.
    const double noisy = true_power_w +
                         noise_.normal(0.0, 0.006 * true_power_w + 0.3);
    return std::max(0.0, std::round(noisy * 1000.0) / 1000.0);
}

gpu::FreqConfig
Device::effectiveClocksFor(const sim::KernelDemand &demand) const
{
    const gpu::DeviceDescriptor &desc = board_.descriptor();
    gpu::FreqConfig cfg = clocks_;
    // Walk down the core table until the true power respects TDP
    // (the driver's automatic fallback observed in Fig. 9).
    auto it = std::find(desc.core_freqs_mhz.rbegin(),
                        desc.core_freqs_mhz.rend(), cfg.core_mhz);
    GPUPM_ASSERT(it != desc.core_freqs_mhz.rend(),
                 "current core clock not in table");
    for (; it != desc.core_freqs_mhz.rend(); ++it) {
        cfg.core_mhz = *it;
        const auto prof = board_.execute(demand, cfg);
        if (board_.truePower(prof, cfg).total_w <= power_limit_w_)
            return cfg;
    }
    // Even the lowest level violates TDP; the board throttles there.
    cfg.core_mhz = desc.core_freqs_mhz.front();
    return cfg;
}

PowerMeasurement
Device::measureKernelPower(const sim::KernelDemand &demand,
                           int repetitions, double min_duration_s)
{
    GPUPM_ASSERT(repetitions >= 1, "repetitions must be >= 1");
    GPUPM_ASSERT(!demand.empty(),
                 "measureKernelPower needs a kernel; use "
                 "measureIdlePower for the idle case");

    const gpu::DeviceDescriptor &desc = board_.descriptor();

    PowerMeasurement m;
    m.effective = effectiveClocksFor(demand);
    m.tdp_limited = m.effective.core_mhz != clocks_.core_mhz;

    const sim::ExecutionProfile prof =
            board_.execute(demand, m.effective);
    m.kernel_time_s = prof.time_s;
    const double true_power = board_.truePower(prof, m.effective).total_w;

    // Pick the repetition count so the run lasts at least
    // min_duration_s at the *fastest* configuration (Sec. V-A), so the
    // same count works across the whole sweep.
    const gpu::FreqConfig fastest{desc.maxCoreMhz(),
                                  desc.mem_freqs_mhz.front()};
    const double t_fastest =
            board_.execute(demand, fastest).time_s;
    const auto reps = static_cast<int>(
            std::ceil(min_duration_s / std::max(t_fastest, 1e-9)));
    m.run_duration_s = prof.time_s * reps;

    const double refresh_s = refreshPeriodMs() / 1000.0;
    m.samples_per_run = std::max(
            1, static_cast<int>(m.run_duration_s / refresh_s));

    std::vector<double> run_means;
    run_means.reserve(repetitions);
    for (int r = 0; r < repetitions; ++r) {
        stats::Accumulator acc;
        for (int s = 0; s < m.samples_per_run; ++s)
            acc.add(sampleSensor(true_power));
        run_means.push_back(acc.mean());
    }
    m.power_w = stats::median(run_means);
    return m;
}

double
Device::measureIdlePower(int samples)
{
    GPUPM_ASSERT(samples >= 1, "samples must be >= 1");
    const double true_power = board_.idlePower(clocks_).total_w;
    stats::Accumulator acc;
    for (int s = 0; s < samples; ++s)
        acc.add(sampleSensor(true_power));
    return acc.mean();
}

} // namespace nvml
} // namespace gpupm
