/**
 * @file
 * GPU device descriptors: every Table II characteristic of the three
 * devices the paper evaluates (Titan Xp / Pascal, GTX Titan X / Maxwell,
 * Tesla K40c / Kepler), plus the peak-throughput and peak-bandwidth
 * calculators of Sec. III-C.
 *
 * Frequencies are expressed in MHz throughout the library (matching the
 * paper's tables); conversions to GHz happen only inside power formulas.
 */

#ifndef GPUPM_GPU_DEVICE_HH
#define GPUPM_GPU_DEVICE_HH

#include <cstddef>
#include <string>
#include <vector>

#include "gpu/components.hh"

namespace gpupm
{
namespace gpu
{

/** NVIDIA microarchitecture generations covered by the paper. */
enum class Architecture
{
    Pascal,
    Maxwell,
    Kepler,
};

/** Display name of an architecture. */
std::string_view architectureName(Architecture arch);

/** The three evaluated devices. */
enum class DeviceKind
{
    TitanXp,
    GtxTitanX,
    TeslaK40c,
};

/** All device kinds, in the paper's presentation order. */
inline constexpr std::array<DeviceKind, 3> kAllDevices = {
    DeviceKind::TitanXp, DeviceKind::GtxTitanX, DeviceKind::TeslaK40c,
};

/** One (fcore, fmem) operating point, MHz. */
struct FreqConfig
{
    int core_mhz = 0;
    int mem_mhz = 0;

    bool operator==(const FreqConfig &) const = default;
};

/** Static description of a GPU device (the paper's Table II row). */
class DeviceDescriptor
{
  public:
    /** Build the descriptor for one of the three evaluated devices. */
    static const DeviceDescriptor &get(DeviceKind kind);

    std::string name;            ///< marketing name
    DeviceKind kind;             ///< which evaluated device
    Architecture architecture;   ///< microarchitecture
    std::string compute_capability;

    std::vector<int> mem_freqs_mhz;   ///< supported memory clocks, desc.
    std::vector<int> core_freqs_mhz;  ///< supported core clocks, asc.
    int default_core_mhz = 0;    ///< reference core clock
    int default_mem_mhz = 0;     ///< reference memory clock

    int warp_size = 32;          ///< threads per warp
    int num_sms = 0;             ///< streaming multiprocessors
    int mem_bus_bytes = 48;      ///< memory bus width, bytes/cycle
    int shared_banks = 32;       ///< shared-memory banks per SM
    int sp_int_units_per_sm = 0; ///< combined SP/INT lanes per SM
    int dp_units_per_sm = 0;     ///< DP lanes per SM
    int sf_units_per_sm = 0;     ///< SFU lanes per SM
    double tdp_w = 0.0;          ///< board power limit, watts

    /**
     * Device-wide L2 bytes/core-cycle. The paper determines the L2 peak
     * experimentally (Sec. III-C); this field holds the value produced
     * by that calibration (see calibrateL2PeakBandwidth()).
     */
    double l2_bytes_per_cycle = 0.0;

    /** L2 cache capacity, bytes (drives the working-set miss model). */
    double l2_capacity_bytes = 0.0;

    /** Reference configuration (default clocks). */
    FreqConfig referenceConfig() const
    {
        return {default_core_mhz, default_mem_mhz};
    }

    /** Full V-F grid: every supported (core, mem) pair. */
    std::vector<FreqConfig> allConfigs() const;

    /** Whether a configuration is in the supported tables. */
    bool supports(const FreqConfig &cfg) const;

    /** Execution lanes per SM for a compute unit (Eq. 8 UnitsPerSM). */
    int unitsPerSm(Component unit) const;

    /**
     * Peak warp throughput of a compute unit, device-wide, in
     * warps/second: fcore * numSMs * unitsPerSM / warpSize.
     */
    double peakWarpsPerSecond(Component unit, int core_mhz) const;

    /**
     * Peak bandwidth of a memory level in bytes/second (Sec. III-C,
     * PeakBand = f * Bytes/Cycle). DRAM scales with the memory clock;
     * shared and L2 scale with the core clock.
     */
    double peakBandwidth(Component level, const FreqConfig &cfg) const;

    /** Lowest supported core clock, MHz. */
    int minCoreMhz() const { return core_freqs_mhz.front(); }

    /** Highest supported core clock, MHz. */
    int maxCoreMhz() const { return core_freqs_mhz.back(); }
};

} // namespace gpu
} // namespace gpupm

#endif // GPUPM_GPU_DEVICE_HH
