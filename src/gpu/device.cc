#include "device.hh"

#include <algorithm>

#include "common/logging.hh"

namespace gpupm
{
namespace gpu
{

std::string_view
architectureName(Architecture arch)
{
    switch (arch) {
      case Architecture::Pascal: return "Pascal";
      case Architecture::Maxwell: return "Maxwell";
      case Architecture::Kepler: return "Kepler";
      default: return "?";
    }
}

namespace
{

DeviceDescriptor
makeTitanXp()
{
    DeviceDescriptor d;
    d.name = "Titan Xp";
    d.kind = DeviceKind::TitanXp;
    d.architecture = Architecture::Pascal;
    d.compute_capability = "6.1";
    // NVIDIA driver does not allow lower memory levels (Table II note).
    d.mem_freqs_mhz = {5705, 4705};
    // 22 core levels over [582:1911]; the driver's table is uniform on
    // either side of the 1404 MHz default.
    d.core_freqs_mhz = {
        582, 645, 708, 772, 835, 898, 961, 1025, 1088, 1151, 1214,
        1278, 1341, 1404, 1467, 1531, 1594, 1658, 1721, 1784, 1848,
        1911,
    };
    d.default_core_mhz = 1404;
    d.default_mem_mhz = 5705;
    d.num_sms = 30;
    d.sp_int_units_per_sm = 128;
    d.dp_units_per_sm = 4;
    d.sf_units_per_sm = 32;
    d.tdp_w = 250.0;
    d.l2_bytes_per_cycle = 768.0;
    d.l2_capacity_bytes = 3.0 * 1024 * 1024;
    return d;
}

DeviceDescriptor
makeGtxTitanX()
{
    DeviceDescriptor d;
    d.name = "GTX Titan X";
    d.kind = DeviceKind::GtxTitanX;
    d.architecture = Architecture::Maxwell;
    d.compute_capability = "5.2";
    d.mem_freqs_mhz = {4005, 3505, 3300, 810};
    // 16 uniform levels over [595:1164]; 975 (default) and 1126 (the
    // Fig. 9 TDP-fallback level) are table entries.
    d.core_freqs_mhz = {
        595, 633, 671, 709, 747, 785, 823, 861, 899, 937, 975, 1013,
        1051, 1089, 1126, 1164,
    };
    d.default_core_mhz = 975;
    d.default_mem_mhz = 3505;
    d.num_sms = 24;
    d.sp_int_units_per_sm = 128;
    d.dp_units_per_sm = 4;
    d.sf_units_per_sm = 32;
    d.tdp_w = 250.0;
    d.l2_bytes_per_cycle = 512.0;
    d.l2_capacity_bytes = 3.0 * 1024 * 1024;
    return d;
}

DeviceDescriptor
makeTeslaK40c()
{
    DeviceDescriptor d;
    d.name = "Tesla K40c";
    d.kind = DeviceKind::TeslaK40c;
    d.architecture = Architecture::Kepler;
    d.compute_capability = "3.5";
    // Single non-idle memory level (Sec. V-A).
    d.mem_freqs_mhz = {3004};
    d.core_freqs_mhz = {666, 745, 810, 875};
    d.default_core_mhz = 875;
    d.default_mem_mhz = 3004;
    d.num_sms = 15;
    d.sp_int_units_per_sm = 192;
    d.dp_units_per_sm = 64;
    d.sf_units_per_sm = 32;
    d.tdp_w = 235.0;
    d.l2_bytes_per_cycle = 384.0;
    d.l2_capacity_bytes = 1.5 * 1024 * 1024;
    return d;
}

} // namespace

const DeviceDescriptor &
DeviceDescriptor::get(DeviceKind kind)
{
    static const DeviceDescriptor xp = makeTitanXp();
    static const DeviceDescriptor tx = makeGtxTitanX();
    static const DeviceDescriptor k40 = makeTeslaK40c();
    switch (kind) {
      case DeviceKind::TitanXp: return xp;
      case DeviceKind::GtxTitanX: return tx;
      case DeviceKind::TeslaK40c: return k40;
    }
    GPUPM_PANIC("unknown device kind");
}

std::vector<FreqConfig>
DeviceDescriptor::allConfigs() const
{
    std::vector<FreqConfig> out;
    out.reserve(mem_freqs_mhz.size() * core_freqs_mhz.size());
    for (int fm : mem_freqs_mhz)
        for (int fc : core_freqs_mhz)
            out.push_back({fc, fm});
    return out;
}

bool
DeviceDescriptor::supports(const FreqConfig &cfg) const
{
    const bool core_ok =
            std::find(core_freqs_mhz.begin(), core_freqs_mhz.end(),
                      cfg.core_mhz) != core_freqs_mhz.end();
    const bool mem_ok =
            std::find(mem_freqs_mhz.begin(), mem_freqs_mhz.end(),
                      cfg.mem_mhz) != mem_freqs_mhz.end();
    return core_ok && mem_ok;
}

int
DeviceDescriptor::unitsPerSm(Component unit) const
{
    switch (unit) {
      case Component::Int:
      case Component::SP:
        return sp_int_units_per_sm;
      case Component::DP:
        return dp_units_per_sm;
      case Component::SF:
        return sf_units_per_sm;
      default:
        GPUPM_PANIC("unitsPerSm: ", componentName(unit),
                    " is not a compute unit");
    }
}

double
DeviceDescriptor::peakWarpsPerSecond(Component unit, int core_mhz) const
{
    const double f_hz = 1e6 * core_mhz;
    return f_hz * num_sms * unitsPerSm(unit) / warp_size;
}

double
DeviceDescriptor::peakBandwidth(Component level,
                                const FreqConfig &cfg) const
{
    switch (level) {
      case Component::Dram:
        return 1e6 * cfg.mem_mhz * mem_bus_bytes;
      case Component::Shared:
        // 32 banks x 4 bytes per cycle per SM.
        return 1e6 * cfg.core_mhz * num_sms * shared_banks * 4.0;
      case Component::L2:
        return 1e6 * cfg.core_mhz * l2_bytes_per_cycle;
      default:
        GPUPM_PANIC("peakBandwidth: ", componentName(level),
                    " is not a memory level");
    }
}

} // namespace gpu
} // namespace gpupm
