/**
 * @file
 * The architectural components whose utilization the model tracks
 * (Sec. III-B of the paper): INT, SP, DP and SF execution units, shared
 * memory, L2 cache (core domain) and DRAM (memory domain).
 */

#ifndef GPUPM_GPU_COMPONENTS_HH
#define GPUPM_GPU_COMPONENTS_HH

#include <array>
#include <cstddef>
#include <string_view>

namespace gpupm
{
namespace gpu
{

/** Modelled GPU components, in the order used across the library. */
enum class Component : std::size_t
{
    Int = 0,     ///< integer units
    SP,          ///< single-precision floating-point units
    DP,          ///< double-precision floating-point units
    SF,          ///< special-function units
    Shared,      ///< shared memory
    L2,          ///< L2 cache (core domain)
    Dram,        ///< device memory (memory domain)
    NumComponents,
};

/** Number of modelled components. */
inline constexpr std::size_t kNumComponents =
        static_cast<std::size_t>(Component::NumComponents);

/** Components in the core V-F domain (everything except DRAM). */
inline constexpr std::size_t kNumCoreComponents = kNumComponents - 1;

/** Compute-unit components, the x of Eq. 8. */
inline constexpr std::array<Component, 4> kComputeUnits = {
    Component::Int, Component::SP, Component::DP, Component::SF,
};

/** Memory-hierarchy components, the y of Eq. 9. */
inline constexpr std::array<Component, 3> kMemoryLevels = {
    Component::L2, Component::Shared, Component::Dram,
};

/** Short display name for a component. */
constexpr std::string_view
componentName(Component c)
{
    switch (c) {
      case Component::Int: return "INT";
      case Component::SP: return "SP";
      case Component::DP: return "DP";
      case Component::SF: return "SF";
      case Component::Shared: return "Shared";
      case Component::L2: return "L2";
      case Component::Dram: return "DRAM";
      default: return "?";
    }
}

/** Index helper. */
constexpr std::size_t
componentIndex(Component c)
{
    return static_cast<std::size_t>(c);
}

/** Fixed-size per-component value bundle (utilizations, powers, ...). */
using ComponentArray = std::array<double, kNumComponents>;

} // namespace gpu
} // namespace gpupm

#endif // GPUPM_GPU_COMPONENTS_HH
