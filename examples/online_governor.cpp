/**
 * @file
 * The Sec. VII future-work direction, end to end: an online DVFS
 * governor that profiles each kernel's first invocation and steers
 * the clocks for all subsequent invocations.
 *
 * The simulated "application" is an iterative solver that alternates
 * three kernels (a DRAM-bound stencil, a compute-bound update and an
 * SF-flavoured residual check) for many iterations — the structure
 * the paper calls out as common in GPU workloads. The example runs it
 * once under the default clocks and once under the governor, and
 * compares the true energy drawn from the (hidden) ground truth.
 */

#include <cstdio>
#include <iostream>

#include "common/table.hh"
#include "core/campaign.hh"
#include "core/governor.hh"
#include "workloads/multi_kernel.hh"
#include "workloads/workloads.hh"

namespace
{

using namespace gpupm;
using gpu::Component;
using gpu::componentIndex;

/** The three-phase iterative application. */
std::vector<sim::KernelDemand>
solverKernels()
{
    const auto sig = [](double u_int, double u_sp, double u_sf,
                        double u_sh, double u_l2, double u_dram) {
        workloads::UtilSignature s;
        s.util[componentIndex(Component::Int)] = u_int;
        s.util[componentIndex(Component::SP)] = u_sp;
        s.util[componentIndex(Component::SF)] = u_sf;
        s.util[componentIndex(Component::Shared)] = u_sh;
        s.util[componentIndex(Component::L2)] = u_l2;
        s.util[componentIndex(Component::Dram)] = u_dram;
        return s;
    };
    return {
        workloads::demandFromSignature(
                "solver_stencil", sig(0.15, 0.25, 0.0, 0.02, 0.5, 0.85),
                0.012),
        workloads::demandFromSignature(
                "solver_update", sig(0.2, 0.65, 0.0, 0.35, 0.3, 0.2),
                0.008),
        workloads::demandFromSignature(
                "solver_residual", sig(0.12, 0.2, 0.3, 0.05, 0.3, 0.3),
                0.003),
    };
}

/** True energy of running the kernels once at the given clocks. */
double
trueEnergy(const sim::PhysicalGpu &board,
           const std::vector<sim::KernelDemand> &kernels,
           const gpu::FreqConfig &cfg)
{
    double e = 0.0;
    for (const auto &k : kernels) {
        const auto prof = board.execute(k, cfg);
        e += board.truePower(prof, cfg).total_w * prof.time_s;
    }
    return e;
}

} // namespace

int
main()
{
    sim::PhysicalGpu board(gpu::DeviceKind::GtxTitanX);
    const auto &desc = board.descriptor();

    std::printf("building the power model...\n");
    const auto data =
            model::runTrainingCampaign(board, ubench::buildSuite());
    const auto fit = model::ModelEstimator().estimate(data);

    nvml::Device device(board, 55);
    cupti::Profiler profiler(board, 56);

    model::GovernorPolicy policy;
    policy.objective = model::GovernorObjective::MinEnergy;
    policy.max_slowdown = 1.15; // tolerate at most 15% slowdown
    model::OnlineGovernor governor(fit.model, device, profiler,
                                   policy);

    const auto kernels = solverKernels();
    constexpr int iterations = 200;

    TextTable t({"kernel", "chosen fcore", "chosen fmem",
                 "pred. power [W]", "pred. slowdown"});
    t.setTitle("governor decisions (made on each kernel's first "
               "invocation)");

    // Run the iterative application under the governor. Only the
    // first iteration profiles; the rest replay cached decisions.
    double governed_energy = 0.0;
    double governed_time = 0.0;
    for (int it = 0; it < iterations; ++it) {
        for (const auto &k : kernels) {
            const auto d = governor.onKernelLaunch(k);
            if (it == 0) {
                t.addRow({k.name, std::to_string(d.cfg.core_mhz),
                          std::to_string(d.cfg.mem_mhz),
                          TextTable::num(d.predicted_power_w, 1),
                          TextTable::num(d.predicted_slowdown, 3)});
            }
            const auto prof = board.execute(k, d.cfg);
            governed_energy +=
                    board.truePower(prof, d.cfg).total_w *
                    prof.time_s;
            governed_time += prof.time_s;
        }
    }
    t.print(std::cout);

    // The same application at the default clocks.
    double default_energy = 0.0;
    double default_time = 0.0;
    for (int it = 0; it < iterations; ++it) {
        default_energy += trueEnergy(board, kernels,
                                     desc.referenceConfig());
        for (const auto &k : kernels)
            default_time +=
                    board.execute(k, desc.referenceConfig()).time_s;
    }

    std::printf("\n%d iterations x %zu kernels (ground truth):\n",
                iterations, kernels.size());
    std::printf("  default clocks: %.1f J in %.2f s\n", default_energy,
                default_time);
    std::printf("  governed:       %.1f J in %.2f s\n",
                governed_energy, governed_time);
    std::printf("  energy saved:   %.1f%%  (slowdown %.1f%%)\n",
                100.0 * (default_energy - governed_energy) /
                        default_energy,
                100.0 * (governed_time - default_time) / default_time);
    return 0;
}
