/**
 * @file
 * Authoring a new microbenchmark the way the paper presents them: as
 * PTX (Fig. 4). The example parses a PTX kernel, runs it through both
 * performance models (the cycle-level SM simulator and the analytic
 * substrate), measures its power on the board, and checks the fitted
 * model's prediction for it — the workflow for extending the training
 * suite with new component-stressing kernels.
 */

#include <cstdio>
#include <iostream>

#include "common/table.hh"
#include "core/campaign.hh"
#include "core/metrics.hh"
#include "core/predictor.hh"
#include "sim/ptx.hh"

namespace
{

/** A new mixed SP + special-function microbenchmark, in PTX. */
const char *kMyKernel = R"(
    ld.global.f32  %f1, [%rd1];
    mov.f32  %f2, %f1;
LOOP:
    fma.rn.f32  %f3, %f1, %f1, %f2;
    fma.rn.f32  %f4, %f2, %f2, %f1;
    sin.approx.f32  %f5, %f3;
    lg2.approx.f32  %f6, %f4;
    add.s32  %r5, %r5, 1;
    setp.lt.s32  %p1, %r5, 256;
    bra  LOOP;
    st.global.f32  [%rd1], %f5;
)";

} // namespace

int
main()
{
    using namespace gpupm;

    // Parse the PTX into both representations.
    const auto loop = sim::parsePtxKernel(kMyKernel);
    const auto demand =
            sim::demandFromLoop(loop, 1 << 20, "sp-sf-mix");
    std::printf("parsed kernel: %zu prologue + %zu body x %llu trips "
                "+ %zu epilogue instructions\n",
                loop.prologue.size(), loop.body.size(),
                static_cast<unsigned long long>(loop.trip_count),
                loop.epilogue.size());

    const auto &dev =
            gpu::DeviceDescriptor::get(gpu::DeviceKind::GtxTitanX);

    // Cycle-level view of one SM.
    sim::SmCycleSim cyc(dev, dev.referenceConfig(), 48);
    const auto res = cyc.run(loop);
    std::printf("\ncycle-level SM simulation: %llu cycles\n",
                static_cast<unsigned long long>(res.cycles));
    for (gpu::Component c : gpu::kComputeUnits)
        std::printf("  %s utilization: %.2f\n",
                    std::string(gpu::componentName(c)).c_str(),
                    res.util[gpu::componentIndex(c)]);

    // Board-level: measure its power and compare with the model.
    sim::PhysicalGpu board(gpu::DeviceKind::GtxTitanX);
    std::printf("\nbuilding the power model...\n");
    const auto data =
            model::runTrainingCampaign(board, ubench::buildSuite());
    const auto fit = model::ModelEstimator().estimate(data);
    model::Predictor predictor(fit.model);

    cupti::Profiler profiler(board, 42);
    const auto rm = profiler.profile(demand, dev.referenceConfig());
    const auto util = model::utilizationsFromMetrics(
            rm, dev, dev.referenceConfig());

    nvml::Device nv(board, 43);
    TextTable t({"fcore", "fmem", "measured [W]", "predicted [W]"});
    t.setTitle("sp-sf-mix across a few configurations");
    for (const gpu::FreqConfig cfg :
         {gpu::FreqConfig{975, 3505}, gpu::FreqConfig{595, 3505},
          gpu::FreqConfig{1164, 3505}, gpu::FreqConfig{975, 810}}) {
        nv.setApplicationClocks(cfg.mem_mhz, cfg.core_mhz);
        const auto m = nv.measureKernelPower(demand, 5);
        t.addRow({std::to_string(cfg.core_mhz),
                  std::to_string(cfg.mem_mhz),
                  TextTable::num(m.power_w, 1),
                  TextTable::num(predictor.at(util, cfg).total_w,
                                 1)});
    }
    t.print(std::cout);
    return 0;
}
