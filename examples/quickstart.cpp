/**
 * @file
 * Quickstart: build a DVFS-aware power model for the GTX Titan X and
 * predict an application's power across the V-F space.
 *
 * Walks the full paper pipeline:
 *   1. run the 83-microbenchmark training campaign (CUPTI events at
 *      the reference configuration, NVML power everywhere);
 *   2. estimate the model with the Sec. III-D iterative algorithm;
 *   3. profile an unseen application (BlackScholes) once, at the
 *      reference configuration;
 *   4. predict its power at every supported configuration and compare
 *      against measurements.
 */

#include <cstdio>
#include <iostream>

#include "core/campaign.hh"
#include "core/metrics.hh"
#include "core/predictor.hh"
#include "common/stats.hh"
#include "common/table.hh"
#include "workloads/workloads.hh"

int
main()
{
    using namespace gpupm;

    // The "hardware": a simulated GTX Titan X board.
    sim::PhysicalGpu board(gpu::DeviceKind::GtxTitanX);
    const gpu::DeviceDescriptor &dev = board.descriptor();
    std::printf("device: %s (%s, %d SMs, TDP %.0f W)\n",
                dev.name.c_str(),
                std::string(architectureName(dev.architecture)).c_str(),
                dev.num_sms, dev.tdp_w);

    // 1. Training campaign over the microbenchmark suite.
    const auto suite = ubench::buildSuite();
    std::printf("running training campaign: %zu microbenchmarks x %zu "
                "V-F configs...\n",
                suite.size(), dev.allConfigs().size());
    const model::TrainingData data =
            model::runTrainingCampaign(board, suite);

    // 2. Model estimation (Sec. III-D).
    const model::ModelEstimator estimator;
    const model::EstimationResult fit = estimator.estimate(data);
    std::printf("estimator: %d iterations, converged=%s, fit RMSE "
                "%.2f W\n",
                fit.iterations, fit.converged ? "yes" : "no",
                fit.rmse_w);
    const auto &p = fit.model.params();
    std::printf("  beta = [%.1f %.1f %.1f %.1f] W | W/GHz\n", p.beta0,
                p.beta1, p.beta2, p.beta3);
    std::printf("  omega =");
    for (std::size_t i = 0; i < gpu::kNumComponents; ++i)
        std::printf(" %s:%.1f",
                    std::string(gpu::componentName(
                            static_cast<gpu::Component>(i))).c_str(),
                    p.omega[i]);
    std::printf(" W/GHz\n");

    // Fitted vs true core voltage at the reference memory clock.
    model::Predictor predictor(fit.model);
    std::printf("\ncore voltage at fmem=%d MHz (fitted vs true):\n",
                dev.default_mem_mhz);
    for (const auto &[fc, v] :
         predictor.coreVoltageCurve(dev.default_mem_mhz)) {
        std::printf("  %4d MHz: V=%.3f  (true %.3f)\n", fc, v,
                    board.trueCoreVoltageNorm(fc));
    }

    // 3. Profile one unseen application at the reference config.
    const workloads::Workload app = workloads::blackScholes();
    const auto meas =
            model::measureApp(board, app.demand, dev.allConfigs());

    // 4. Predict everywhere, compare against measurements.
    std::vector<double> pred, measd;
    for (std::size_t i = 0; i < meas.configs.size(); ++i) {
        pred.push_back(
                predictor.at(meas.util, meas.configs[i]).total_w);
        measd.push_back(meas.power_w[i]);
    }
    std::printf("\n%s over %zu configurations: MAE %.1f%%\n",
                app.name.c_str(), pred.size(),
                stats::meanAbsPercentError(pred, measd));

    TextTable t({"fcore", "fmem", "measured W", "predicted W"});
    t.setTitle("BlackScholes power across memory clocks "
               "(core at reference)");
    for (std::size_t i = 0; i < meas.configs.size(); ++i) {
        if (meas.configs[i].core_mhz != dev.default_core_mhz)
            continue;
        t.addRow({std::to_string(meas.configs[i].core_mhz),
                  std::to_string(meas.configs[i].mem_mhz),
                  TextTable::num(measd[i], 1),
                  TextTable::num(pred[i], 1)});
    }
    t.print(std::cout);
    return 0;
}
