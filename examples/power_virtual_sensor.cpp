/**
 * @file
 * Virtual power sensor use case (Sec. V-B "Use cases", item 1): GPUs
 * without an embedded power sensor — or guest VMs in a virtualized
 * deployment — can estimate their total and per-component power from
 * performance events alone, using a model built once on an
 * instrumented board.
 *
 * The example builds and serializes a model on a "lab" board (the one
 * with a sensor), then reloads it in a context where only the CUPTI
 * facade is available and estimates the power of short-lived kernels
 * that a 100 ms-refresh sensor could never time-resolve.
 */

#include <cstdio>
#include <iostream>

#include "common/table.hh"
#include "core/campaign.hh"
#include "core/metrics.hh"
#include "core/predictor.hh"
#include "workloads/workloads.hh"

int
main()
{
    using namespace gpupm;

    // --- In the lab: build and export the model. ------------------
    sim::PhysicalGpu lab_board(gpu::DeviceKind::GtxTitanX);
    std::printf("lab: building the model on %s...\n",
                lab_board.descriptor().name.c_str());
    const auto data = model::runTrainingCampaign(lab_board,
                                                 ubench::buildSuite());
    const auto fit = model::ModelEstimator().estimate(data);
    const std::string exported = fit.model.serialize();
    std::printf("lab: exported model (%zu bytes)\n", exported.size());

    // --- In the field: sensorless estimation from events only. ----
    const auto field_model =
            model::DvfsPowerModel::deserialize(exported);
    model::Predictor predictor(field_model);

    sim::PhysicalGpu field_board(gpu::DeviceKind::GtxTitanX);
    const auto &desc = field_board.descriptor();
    cupti::Profiler profiler(field_board, 1234);

    TextTable t({"kernel", "time [ms]", "estimated [W]",
                 "true [W] (hidden)", "error [%]"});
    t.setTitle("\nfield: sensorless power estimates at the reference "
               "configuration");

    for (const auto &w : workloads::validationSet()) {
        // Short-lived kernel: a single launch, far below the sensor's
        // 100 ms refresh period.
        const auto rm =
                profiler.profile(w.demand, desc.referenceConfig());
        const auto util = model::utilizationsFromMetrics(
                rm, desc, desc.referenceConfig());
        const double est =
                predictor.at(util, desc.referenceConfig()).total_w;

        const auto prof = field_board.execute(
                w.demand, desc.referenceConfig());
        const double truth =
                field_board.truePower(prof, desc.referenceConfig())
                        .total_w;
        t.addRow({w.name, TextTable::num(1e3 * rm.time_s, 1),
                  TextTable::num(est, 1), TextTable::num(truth, 1),
                  TextTable::num(100.0 * (est - truth) / truth, 1)});
    }
    t.print(std::cout);

    // Per-component decomposition of one kernel — the estimate a
    // guest VM could use to attribute its own power.
    const auto app = workloads::blackScholes();
    const auto rm = profiler.profile(app.demand,
                                     desc.referenceConfig());
    const auto util = model::utilizationsFromMetrics(
            rm, desc, desc.referenceConfig());
    const auto p = predictor.at(util, desc.referenceConfig());
    std::printf("\nBlackScholes decomposition: constant %.1f W",
                p.constant_w);
    for (std::size_t i = 0; i < gpu::kNumComponents; ++i)
        std::printf(", %s %.1f W",
                    std::string(gpu::componentName(
                            static_cast<gpu::Component>(i))).c_str(),
                    p.component_w[i]);
    std::printf("  (total %.1f W)\n", p.total_w);
    return 0;
}
