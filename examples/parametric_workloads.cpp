/**
 * @file
 * Describing your own application to the model, from first
 * principles: flop and byte counts as a function of the problem size,
 * with DRAM traffic derived by the working-set cache model. The
 * example sweeps four classic kernels (GEMM, 5-point stencil, STREAM
 * triad, CSR SpMV) over problem sizes and asks the fitted model where
 * each one's power goes and which V-F configuration minimizes its
 * energy.
 */

#include <cstdio>
#include <iostream>

#include "common/table.hh"
#include "core/campaign.hh"
#include "core/latency_scaler.hh"
#include "core/metrics.hh"
#include "core/predictor.hh"
#include "workloads/parametric.hh"

int
main()
{
    using namespace gpupm;

    sim::PhysicalGpu board(gpu::DeviceKind::GtxTitanX);
    const auto &desc = board.descriptor();
    const auto ref = desc.referenceConfig();

    std::printf("building the power model...\n");
    const auto data =
            model::runTrainingCampaign(board, ubench::buildSuite());
    const auto fit = model::ModelEstimator().estimate(data);
    model::Predictor predictor(fit.model);
    const model::LatencyScaler scaler(ref);
    cupti::Profiler profiler(board, 61);
    nvml::Device dev(board, 62);

    const std::vector<sim::KernelDemand> kernels = {
        workloads::gemm(64, desc),
        workloads::gemm(512, desc),
        workloads::gemm(4096, desc),
        workloads::stencil2d(4096, desc),
        workloads::streamTriad(1 << 26, desc),
        workloads::reduction(1 << 24, desc),
        workloads::spmv(1 << 20, 1 << 24, desc),
    };

    TextTable t({"kernel", "measured [W]", "predicted [W]",
                 "dominant component", "min-energy config",
                 "energy saved [%]"});
    t.setTitle("first-principles kernels through the fitted model");

    for (const auto &k : kernels) {
        const auto rm = profiler.profile(k, ref);
        const auto util =
                model::utilizationsFromMetrics(rm, desc, ref);
        const auto p = predictor.at(util, ref);
        const auto m = dev.measureKernelPower(k, 5);

        std::size_t dom = 0;
        for (std::size_t i = 1; i < gpu::kNumComponents; ++i)
            if (p.component_w[i] > p.component_w[dom])
                dom = i;

        // Minimum predicted energy under a 15% slowdown budget.
        gpu::FreqConfig best = ref;
        double best_e = 1e300;
        for (const auto &cfg : desc.allConfigs()) {
            const double slow = scaler.slowdown(util, cfg);
            if (slow > 1.15)
                continue;
            const double e = predictor.at(util, cfg).total_w * slow;
            if (e < best_e) {
                best_e = e;
                best = cfg;
            }
        }
        const double e_ref = p.total_w;
        const double saved = 100.0 * (e_ref - best_e) / e_ref;

        t.addRow({k.name, TextTable::num(m.power_w, 1),
                  TextTable::num(p.total_w, 1),
                  std::string(gpu::componentName(
                          static_cast<gpu::Component>(dom))),
                  std::to_string(best.core_mhz) + "/" +
                          std::to_string(best.mem_mhz),
                  TextTable::num(saved, 1)});
    }
    t.print(std::cout);

    std::printf("\nThe GEMM sweep reproduces the Fig. 9 story from "
                "first principles: a 64x64 launch cannot fill the "
                "device, 512x512 is mid-utilization, and 4096x4096 "
                "saturates the SP units.\n");
    return 0;
}
