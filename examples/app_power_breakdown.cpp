/**
 * @file
 * Application-analysis use case (Sec. V-B "Use cases", item 2): use
 * the per-component power breakdown to find an application's power
 * bottleneck — the power-oriented counterpart of the usual
 * performance profiling.
 *
 * The example profiles two variants of the same computation — a naive
 * global-memory kernel and a shared-memory-tiled rewrite — and shows
 * how the breakdown shifts from DRAM-dominated to compute-dominated,
 * and what each variant's power would be across the V-F space.
 */

#include <algorithm>
#include <cstdio>
#include <iostream>

#include "common/table.hh"
#include "core/campaign.hh"
#include "core/metrics.hh"
#include "core/predictor.hh"
#include "workloads/workloads.hh"

namespace
{

using namespace gpupm;
using gpu::Component;
using gpu::componentIndex;

/** Naive stencil: every input element re-read from DRAM. */
sim::KernelDemand
naiveStencil()
{
    workloads::UtilSignature sig;
    sig.util[componentIndex(Component::SP)] = 0.22;
    sig.util[componentIndex(Component::Int)] = 0.15;
    sig.util[componentIndex(Component::L2)] = 0.55;
    sig.util[componentIndex(Component::Dram)] = 0.88;
    return workloads::demandFromSignature("stencil-naive", sig);
}

/** Tiled stencil: inputs staged through shared memory. */
sim::KernelDemand
tiledStencil()
{
    workloads::UtilSignature sig;
    sig.util[componentIndex(Component::SP)] = 0.45;
    sig.util[componentIndex(Component::Int)] = 0.22;
    sig.util[componentIndex(Component::Shared)] = 0.55;
    sig.util[componentIndex(Component::L2)] = 0.25;
    sig.util[componentIndex(Component::Dram)] = 0.24;
    return workloads::demandFromSignature("stencil-tiled", sig);
}

} // namespace

int
main()
{
    sim::PhysicalGpu board(gpu::DeviceKind::GtxTitanX);
    const auto &desc = board.descriptor();

    std::printf("building the power model...\n");
    const auto data =
            model::runTrainingCampaign(board, ubench::buildSuite());
    const auto fit = model::ModelEstimator().estimate(data);
    model::Predictor predictor(fit.model);
    cupti::Profiler profiler(board, 77);

    for (const auto &demand : {naiveStencil(), tiledStencil()}) {
        const auto rm =
                profiler.profile(demand, desc.referenceConfig());
        const auto util = model::utilizationsFromMetrics(
                rm, desc, desc.referenceConfig());
        const auto p = predictor.at(util, desc.referenceConfig());

        TextTable t({"component", "utilization", "power [W]",
                     "share of dynamic [%]"});
        t.setTitle("\n" + demand.name + " @ (975, 3505) MHz — total " +
                   TextTable::num(p.total_w, 1) + " W (constant " +
                   TextTable::num(p.constant_w, 1) + " W)");
        const double dyn =
                std::max(1e-9, p.total_w - p.constant_w);
        std::size_t bottleneck = 0;
        for (std::size_t i = 0; i < gpu::kNumComponents; ++i) {
            if (p.component_w[i] > p.component_w[bottleneck])
                bottleneck = i;
            t.addRow({std::string(gpu::componentName(
                              static_cast<gpu::Component>(i))),
                      TextTable::num(util[i], 2),
                      TextTable::num(p.component_w[i], 1),
                      TextTable::num(100.0 * p.component_w[i] / dyn,
                                     0)});
        }
        t.print(std::cout);
        std::printf("power bottleneck: %s\n",
                    std::string(gpu::componentName(
                            static_cast<gpu::Component>(bottleneck)))
                            .c_str());

        // Where would DVFS take this kernel?
        const auto best = predictor.lowestPower(util);
        std::printf("lowest-power configuration: (%d, %d) MHz at "
                    "%.1f W\n",
                    best.cfg.core_mhz, best.cfg.mem_mhz,
                    best.prediction.total_w);
    }

    std::printf("\nTakeaway: the tiled variant trades DRAM power for "
                "SP/shared power; its DRAM clock can be dropped with "
                "little cost, while the naive variant cannot.\n");
    return 0;
}
