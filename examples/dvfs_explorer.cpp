/**
 * @file
 * DVFS-management use case (Sec. V-B "Use cases", item 3): pick the
 * best V-F configuration for a kernel without executing it anywhere
 * but at the reference configuration.
 *
 * The model predicts power at every supported configuration from one
 * profiling pass; a simple bottleneck-scaling latency estimate (the
 * kernel's measured reference time stretched by the dominant domain's
 * clock ratio) turns that into energy and energy-delay estimates. The
 * example then verifies the chosen configurations against the
 * simulated board's ground truth.
 */

#include <algorithm>
#include <cstdio>
#include <iostream>

#include "common/table.hh"
#include "core/campaign.hh"
#include "core/latency_scaler.hh"
#include "core/metrics.hh"
#include "core/predictor.hh"
#include "workloads/workloads.hh"

using namespace gpupm;

int
main()
{
    sim::PhysicalGpu board(gpu::DeviceKind::GtxTitanX);
    const auto &desc = board.descriptor();

    std::printf("building the power model (83 microbenchmarks x %zu "
                "configs)...\n",
                desc.allConfigs().size());
    const auto data =
            model::runTrainingCampaign(board, ubench::buildSuite());
    const auto fit = model::ModelEstimator().estimate(data);
    model::Predictor predictor(fit.model);

    for (const auto &app :
         {workloads::blackScholes(), workloads::cutcp()}) {
        // One profiling pass at the reference configuration only.
        cupti::Profiler profiler(board, 5);
        const auto rm =
                profiler.profile(app.demand, desc.referenceConfig());
        const auto util = model::utilizationsFromMetrics(
                rm, desc, desc.referenceConfig());
        const double t_ref = rm.time_s;

        // Rank every configuration by predicted energy.
        struct Choice
        {
            gpu::FreqConfig cfg;
            double power_w, time_s, energy_j, edp;
        };
        const model::LatencyScaler scaler(desc.referenceConfig());
        std::vector<Choice> choices;
        for (const auto &cfg : desc.allConfigs()) {
            const double p = predictor.at(util, cfg).total_w;
            const double t = scaler.scaledTime(t_ref, util, cfg);
            choices.push_back({cfg, p, t, p * t, p * t * t});
        }
        const auto by_energy = *std::min_element(
                choices.begin(), choices.end(),
                [](const Choice &a, const Choice &b) {
                    return a.energy_j < b.energy_j;
                });
        const auto by_edp = *std::min_element(
                choices.begin(), choices.end(),
                [](const Choice &a, const Choice &b) {
                    return a.edp < b.edp;
                });

        TextTable t({"objective", "fcore", "fmem", "pred. power [W]",
                     "pred. time [ms]", "pred. energy [J]"});
        t.setTitle("\n" + app.name + ": configuration choice "
                   "(profiled once at the reference)");
        const auto addChoice = [&](const char *label,
                                   const Choice &c) {
            t.addRow({label, std::to_string(c.cfg.core_mhz),
                      std::to_string(c.cfg.mem_mhz),
                      TextTable::num(c.power_w, 1),
                      TextTable::num(1e3 * c.time_s, 2),
                      TextTable::num(c.energy_j, 3)});
        };
        const auto ref_it = std::find_if(
                choices.begin(), choices.end(), [&](const Choice &c) {
                    return c.cfg == desc.referenceConfig();
                });
        addChoice("reference (default)", *ref_it);
        addChoice("min energy", by_energy);
        addChoice("min energy-delay", by_edp);
        t.print(std::cout);

        // The full power/performance Pareto frontier the DVFS manager
        // would choose from.
        TextTable pf({"fcore", "fmem", "pred. power [W]",
                      "pred. slowdown"});
        pf.setTitle(app.name + ": power/performance Pareto frontier");
        for (const auto &ppt : predictor.paretoFrontier(util))
            pf.addRow({std::to_string(ppt.cfg.core_mhz),
                       std::to_string(ppt.cfg.mem_mhz),
                       TextTable::num(ppt.power_w, 1),
                       TextTable::num(ppt.slowdown, 3)});
        pf.print(std::cout);

        // Verify against the ground truth the model never saw.
        const auto verify = [&](const Choice &c) {
            const auto prof = board.execute(app.demand, c.cfg);
            const auto p = board.truePower(prof, c.cfg);
            return p.total_w * prof.time_s;
        };
        const double e_ref = verify(*ref_it);
        const double e_best = verify(by_energy);
        std::printf("ground truth: energy at reference %.3f J, at the "
                    "chosen config %.3f J (%.0f%% saved)\n",
                    e_ref, e_best, 100.0 * (e_ref - e_best) / e_ref);
    }
    return 0;
}
