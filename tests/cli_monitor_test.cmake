# Drives the live-telemetry daemon end to end without external tools:
# gpupm_scrape's monitor-selftest mode fork/execs
# `gpupm monitor <device>` on an ephemeral port, waits for the port
# file, scrapes /metrics, /healthz, /scoreboard and /tracez (asserting
# build info, accuracy series, per-endpoint latency histograms and
# plausible sampled wattage), exercises the 404/405 error paths, then
# SIGTERMs the daemon and requires a clean exit 0. Expects CLI, SCRAPE
# and WORK to be defined.
file(MAKE_DIRECTORY ${WORK})

execute_process(COMMAND ${SCRAPE} monitor-selftest ${CLI} titanx
                        --work=${WORK}
                RESULT_VARIABLE rc OUTPUT_VARIABLE out
                ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "monitor selftest failed: ${rc}: ${err}")
endif()
if(NOT err MATCHES "clean SIGTERM exit")
    message(FATAL_ERROR "selftest did not confirm clean exit: ${err}")
endif()

# The selftest leaves the daemon's artifacts behind: the port file and
# the NDJSON event log with one object per completed sample.
if(NOT EXISTS ${WORK}/monitor.port)
    message(FATAL_ERROR "port file missing after selftest")
endif()
if(NOT EXISTS ${WORK}/monitor.ndjson)
    message(FATAL_ERROR "event log missing after selftest")
endif()
file(STRINGS ${WORK}/monitor.ndjson events LIMIT_COUNT 4)
list(LENGTH events n_events)
if(n_events LESS 1)
    message(FATAL_ERROR "event log is empty")
endif()
# Sample lines carry the per-tick audit; alert-transition lines from
# the rule engine interleave with them.
foreach(line IN LISTS events)
    if(NOT line MATCHES "^\\{\"tick\":.*\"abs_err_pct\":.*\\}$" AND
       NOT line MATCHES "^\\{\"event\":\"alert\".*\"state\":.*\\}$")
        message(FATAL_ERROR "malformed NDJSON event: ${line}")
    endif()
endforeach()

# A too-short duration still shuts down cleanly on its own (no signal
# involved), and `gpupm monitor` rejects bad arguments by name.
execute_process(COMMAND ${CLI} monitor titanx --port=0
                        --period-ms=50 --duration=500ms
                RESULT_VARIABLE rc ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "duration-bounded monitor failed: ${rc}: ${err}")
endif()
if(NOT err MATCHES "monitor: listening on 127.0.0.1:")
    message(FATAL_ERROR "monitor never announced its port: ${err}")
endif()
if(NOT err MATCHES "flight recorder tail")
    message(FATAL_ERROR "no post-mortem flight-recorder dump: ${err}")
endif()

execute_process(COMMAND ${CLI} monitor notadevice
                RESULT_VARIABLE rc ERROR_VARIABLE err)
if(rc EQUAL 0 OR NOT err MATCHES "unknown device 'notadevice'")
    message(FATAL_ERROR "bad device not rejected by name: ${rc}: ${err}")
endif()
execute_process(COMMAND ${CLI} monitor titanx --duration=banana
                RESULT_VARIABLE rc ERROR_VARIABLE err)
if(rc EQUAL 0 OR NOT err MATCHES "--duration")
    message(FATAL_ERROR "bad duration not rejected by name: ${rc}: ${err}")
endif()
