/**
 * @file
 * Tests of the NVML-style host facade: clock control, sampled power
 * measurement, TDP fallback.
 */

#include <gtest/gtest.h>

#include "nvml/device.hh"

namespace
{

using namespace gpupm;

sim::KernelDemand
moderateKernel()
{
    sim::KernelDemand d;
    d.name = "moderate";
    d.warps_sp = 2e9;
    d.bytes_dram_rd = 2e9;
    d.bytes_l2_rd = 2e9;
    return d;
}

TEST(NvmlDevice, StartsAtReferenceClocks)
{
    sim::PhysicalGpu board(gpu::DeviceKind::GtxTitanX);
    nvml::Device dev(board);
    EXPECT_EQ(dev.currentClocks().core_mhz, 975);
    EXPECT_EQ(dev.currentClocks().mem_mhz, 3505);
}

TEST(NvmlDevice, SetApplicationClocksValidatesTable)
{
    sim::PhysicalGpu board(gpu::DeviceKind::GtxTitanX);
    nvml::Device dev(board);
    EXPECT_NO_THROW(dev.setApplicationClocks(810, 595));
    EXPECT_EQ(dev.currentClocks().core_mhz, 595);
    EXPECT_EQ(dev.currentClocks().mem_mhz, 810);
    // The NVIDIA driver rejects off-table requests.
    EXPECT_THROW(dev.setApplicationClocks(3505, 1000),
                 std::runtime_error);
    EXPECT_THROW(dev.setApplicationClocks(2000, 975),
                 std::runtime_error);
}

TEST(NvmlDevice, RefreshPeriodsMatchSecVA)
{
    sim::PhysicalGpu xp(gpu::DeviceKind::TitanXp);
    sim::PhysicalGpu tx(gpu::DeviceKind::GtxTitanX);
    sim::PhysicalGpu k40(gpu::DeviceKind::TeslaK40c);
    EXPECT_DOUBLE_EQ(nvml::Device(xp).refreshPeriodMs(), 35.0);
    EXPECT_DOUBLE_EQ(nvml::Device(tx).refreshPeriodMs(), 100.0);
    EXPECT_DOUBLE_EQ(nvml::Device(k40).refreshPeriodMs(), 15.0);
}

TEST(NvmlDevice, MeasurementTracksTruePower)
{
    sim::PhysicalGpu board(gpu::DeviceKind::GtxTitanX);
    nvml::Device dev(board, 11);
    const auto d = moderateKernel();
    const auto m = dev.measureKernelPower(d);
    const auto prof = board.execute(d, m.effective);
    const double truth = board.truePower(prof, m.effective).total_w;
    EXPECT_NEAR(m.power_w, truth, 0.05 * truth);
    EXPECT_GT(m.samples_per_run, 0);
    EXPECT_GE(m.run_duration_s, 0.9);
}

TEST(NvmlDevice, MeasurementRepeatsToMinimumDuration)
{
    sim::PhysicalGpu board(gpu::DeviceKind::GtxTitanX);
    nvml::Device dev(board, 11);
    const auto m = dev.measureKernelPower(moderateKernel(), 3, 2.0);
    EXPECT_GE(m.run_duration_s, 1.9);
}

TEST(NvmlDevice, IdlePowerMatchesGroundTruth)
{
    sim::PhysicalGpu board(gpu::DeviceKind::GtxTitanX);
    nvml::Device dev(board, 11);
    dev.setApplicationClocks(810, 595);
    const double idle = dev.measureIdlePower();
    const double truth = board.idlePower({595, 810}).total_w;
    EXPECT_NEAR(idle, truth, 0.05 * truth + 1.0);
}

TEST(NvmlDevice, TdpFallbackDownclocksHotKernel)
{
    // A kernel saturating every component at the top clocks exceeds
    // 250 W; the board must fall back to a lower core level
    // (the Fig. 9 footnote behaviour).
    sim::PhysicalGpu board(gpu::DeviceKind::GtxTitanX);
    const auto &desc = board.descriptor();
    sim::KernelDemand hot;
    hot.name = "hot";
    const gpu::FreqConfig top{desc.maxCoreMhz(), 4005};
    const double t = 0.01;
    hot.warps_sp = 0.95 * desc.peakWarpsPerSecond(gpu::Component::SP,
                                                  top.core_mhz) * t;
    hot.warps_int = 0.4 * desc.peakWarpsPerSecond(gpu::Component::Int,
                                                  top.core_mhz) * t;
    hot.warps_sf = 0.5 * desc.peakWarpsPerSecond(gpu::Component::SF,
                                                 top.core_mhz) * t;
    hot.bytes_dram_rd =
            0.9 * desc.peakBandwidth(gpu::Component::Dram, top) * t;
    hot.bytes_l2_rd =
            0.8 * desc.peakBandwidth(gpu::Component::L2, top) * t;
    hot.bytes_shared_ld =
            0.6 * desc.peakBandwidth(gpu::Component::Shared, top) * t;

    nvml::Device dev(board, 13);
    dev.setApplicationClocks(4005, desc.maxCoreMhz());
    const auto m = dev.measureKernelPower(hot, 3);
    EXPECT_TRUE(m.tdp_limited);
    EXPECT_LT(m.effective.core_mhz, desc.maxCoreMhz());
    // The effective configuration respects TDP.
    const auto prof = board.execute(hot, m.effective);
    EXPECT_LE(board.truePower(prof, m.effective).total_w,
              desc.tdp_w + 1e-6);
    // A gentle kernel at the same clocks is not limited.
    const auto gentle = dev.measureKernelPower(moderateKernel(), 3);
    EXPECT_FALSE(gentle.tdp_limited);
}

TEST(NvmlDevice, MeasuringEmptyKernelPanics)
{
    sim::PhysicalGpu board(gpu::DeviceKind::GtxTitanX);
    nvml::Device dev(board);
    EXPECT_THROW(dev.measureKernelPower(sim::KernelDemand{}),
                 std::logic_error);
}

TEST(NvmlDevice, MeasurementIsDeterministicPerSeed)
{
    sim::PhysicalGpu board(gpu::DeviceKind::GtxTitanX);
    nvml::Device a(board, 21), b(board, 21), c(board, 22);
    const auto d = moderateKernel();
    EXPECT_DOUBLE_EQ(a.measureKernelPower(d, 3).power_w,
                     b.measureKernelPower(d, 3).power_w);
    EXPECT_NE(a.measureKernelPower(d, 3).power_w,
              c.measureKernelPower(d, 3).power_w);
}

} // namespace

namespace
{

TEST(NvmlDevice, PowerLimitDefaultsToTdpAndValidatesRange)
{
    sim::PhysicalGpu board(gpu::DeviceKind::GtxTitanX);
    nvml::Device dev(board);
    EXPECT_DOUBLE_EQ(dev.powerLimit(), 250.0);
    EXPECT_NO_THROW(dev.setPowerLimit(180.0));
    EXPECT_DOUBLE_EQ(dev.powerLimit(), 180.0);
    EXPECT_THROW(dev.setPowerLimit(50.0), std::runtime_error);
    EXPECT_THROW(dev.setPowerLimit(400.0), std::runtime_error);
}

TEST(NvmlDevice, TrySettersReturnTypedStatusInsteadOfThrowing)
{
    // The recoverable driver rejections surface as NvmlStatus codes;
    // the throwing setters remain as fatal-on-error conveniences.
    sim::PhysicalGpu board(gpu::DeviceKind::GtxTitanX);
    nvml::Device dev(board);

    EXPECT_EQ(dev.trySetApplicationClocks(810, 595),
              nvml::NvmlStatus::Success);
    EXPECT_EQ(dev.currentClocks().core_mhz, 595);
    EXPECT_EQ(dev.trySetApplicationClocks(3505, 1000),
              nvml::NvmlStatus::UnsupportedClocks);
    // A rejected request leaves the clocks untouched.
    EXPECT_EQ(dev.currentClocks().core_mhz, 595);
    EXPECT_EQ(dev.currentClocks().mem_mhz, 810);

    EXPECT_EQ(dev.trySetPowerLimit(180.0), nvml::NvmlStatus::Success);
    EXPECT_DOUBLE_EQ(dev.powerLimit(), 180.0);
    EXPECT_EQ(dev.trySetPowerLimit(50.0),
              nvml::NvmlStatus::PowerLimitOutOfRange);
    EXPECT_EQ(dev.trySetPowerLimit(400.0),
              nvml::NvmlStatus::PowerLimitOutOfRange);
    EXPECT_DOUBLE_EQ(dev.powerLimit(), 180.0);
}

TEST(NvmlDevice, StatusNamesAreStable)
{
    EXPECT_EQ(nvml::nvmlStatusName(nvml::NvmlStatus::Success),
              "Success");
    EXPECT_EQ(nvml::nvmlStatusName(
                      nvml::NvmlStatus::UnsupportedClocks),
              "UnsupportedClocks");
    EXPECT_EQ(nvml::nvmlStatusName(
                      nvml::NvmlStatus::PowerLimitOutOfRange),
              "PowerLimitOutOfRange");
}

TEST(NvmlDevice, LowerPowerLimitForcesDeeperClockFallback)
{
    sim::PhysicalGpu board(gpu::DeviceKind::GtxTitanX);
    const auto &desc = board.descriptor();
    sim::KernelDemand warm = [] {
        sim::KernelDemand d;
        d.name = "warm";
        d.warps_sp = 4e9;
        d.warps_int = 1e9;
        d.bytes_dram_rd = 4e9;
        d.bytes_l2_rd = 5e9;
        d.bytes_shared_ld = 2e9;
        return d;
    }();

    nvml::Device dev(board, 17);
    dev.setApplicationClocks(desc.default_mem_mhz, desc.maxCoreMhz());
    const auto unlimited = dev.measureKernelPower(warm, 3);

    dev.setPowerLimit(150.0);
    const auto limited = dev.measureKernelPower(warm, 3);
    EXPECT_TRUE(limited.tdp_limited);
    EXPECT_LT(limited.effective.core_mhz,
              unlimited.effective.core_mhz);
    // The measured power honours the limit.
    EXPECT_LE(limited.power_w, 150.0 * 1.05);
}

} // namespace
