/**
 * @file
 * Tests of the first-principles parametric workload generators.
 */

#include <gtest/gtest.h>

#include "nvml/device.hh"
#include "sim/perf_model.hh"
#include "sim/physical_gpu.hh"
#include "workloads/parametric.hh"

namespace
{

using namespace gpupm;
using gpu::Component;
using gpu::componentIndex;

const gpu::DeviceDescriptor &titanx()
{
    return gpu::DeviceDescriptor::get(gpu::DeviceKind::GtxTitanX);
}

TEST(Parametric, GemmFlopCountIsExact)
{
    const auto d = workloads::gemm(1024, titanx());
    // 2 n^3 flops = n^3 FMAs = n^3 / 32 warp instructions.
    EXPECT_DOUBLE_EQ(d.warps_sp, 1024.0 * 1024.0 * 1024.0 / 32.0);
}

TEST(Parametric, GemmBecomesComputeBoundAtLargeSizes)
{
    const sim::AnalyticPerfModel perf;
    const auto ref = titanx().referenceConfig();
    const auto small = perf.execute(titanx(),
                                    workloads::gemm(128, titanx()),
                                    ref);
    const auto large = perf.execute(titanx(),
                                    workloads::gemm(4096, titanx()),
                                    ref);
    EXPECT_GT(large.util[componentIndex(Component::SP)],
              small.util[componentIndex(Component::SP)]);
    EXPECT_GT(large.util[componentIndex(Component::SP)], 0.6);
    // Arithmetic intensity grows with n: DRAM share falls.
    EXPECT_LT(large.util[componentIndex(Component::Dram)],
              small.util[componentIndex(Component::Dram)] + 0.3);
}

TEST(Parametric, SmallGemmIsL2Resident)
{
    // 3 * 4 * 128^2 bytes = 192 KiB << 3 MiB: no capacity misses.
    const auto d = workloads::gemm(128, titanx());
    EXPECT_LE(d.bytes_dram_rd + d.bytes_dram_wr,
              3.0 * 4.0 * 128.0 * 128.0 + 1.0);
}

TEST(Parametric, StencilBytesPerCellAreExact)
{
    const auto d = workloads::stencil2d(512, titanx());
    EXPECT_DOUBLE_EQ(d.bytes_l2_rd, 5.0 * 4.0 * 512.0 * 512.0);
    EXPECT_DOUBLE_EQ(d.bytes_l2_wr, 4.0 * 512.0 * 512.0);
}

TEST(Parametric, TriadIsMemoryBound)
{
    const sim::AnalyticPerfModel perf;
    const auto prof = perf.execute(
            titanx(), workloads::streamTriad(1 << 26, titanx()),
            titanx().referenceConfig());
    EXPECT_GT(prof.util[componentIndex(Component::Dram)], 0.85);
    EXPECT_LT(prof.util[componentIndex(Component::SP)], 0.2);
}

TEST(Parametric, TriadStreamsEverythingAtLargeSizes)
{
    const auto d = workloads::streamTriad(1 << 26, titanx());
    // 768 MiB working set: essentially every access misses.
    EXPECT_GT(d.bytes_dram_rd, 0.95 * d.bytes_l2_rd);
}

TEST(Parametric, ReductionReadsInputOnce)
{
    const auto d = workloads::reduction(1 << 20, titanx());
    EXPECT_DOUBLE_EQ(d.bytes_l2_rd, 4.0 * (1 << 20));
}

TEST(Parametric, SpmvScalesWithNonZeros)
{
    const auto sparse = workloads::spmv(1 << 16, 1 << 20, titanx());
    const auto denser = workloads::spmv(1 << 16, 1 << 24, titanx());
    EXPECT_NEAR(denser.warps_sp / sparse.warps_sp, 16.0, 1e-9);
    EXPECT_GT(denser.bytes_dram_rd, sparse.bytes_dram_rd);
}

TEST(Parametric, SpmvDenseVectorReuseDependsOnRowCount)
{
    // Same nnz, more rows -> bigger x working set -> more x misses.
    const auto small_x = workloads::spmv(1 << 14, 1 << 24, titanx());
    const auto large_x = workloads::spmv(1 << 22, 1 << 24, titanx());
    EXPECT_GT(large_x.bytes_dram_rd, small_x.bytes_dram_rd);
}

TEST(Parametric, PowerRisesWithGemmSizeThenPlateaus)
{
    // The Fig. 9 observation, generated from first principles: small
    // matrices underutilize the SMs; once the compute units saturate
    // (n ~ 512 here) power plateaus — and even eases slightly as the
    // growing arithmetic intensity sheds DRAM power.
    sim::PhysicalGpu board(gpu::DeviceKind::GtxTitanX);
    nvml::Device dev(board, 5);
    const auto p64 = dev.measureKernelPower(
            workloads::gemm(64, titanx()), 3);
    const auto p512 = dev.measureKernelPower(
            workloads::gemm(512, titanx()), 3);
    const auto p4096 = dev.measureKernelPower(
            workloads::gemm(4096, titanx()), 3);
    EXPECT_GT(p512.power_w, p64.power_w + 10.0);
    EXPECT_GT(p4096.power_w, p512.power_w + 10.0);
    // Beyond saturation (n >= 1024) the power curve flattens.
    const auto p1024 = dev.measureKernelPower(
            workloads::gemm(1024, titanx()), 3);
    EXPECT_NEAR(p4096.power_w, p1024.power_w,
                0.08 * p1024.power_w);
}

TEST(Parametric, InvalidParametersPanic)
{
    EXPECT_THROW(workloads::gemm(0, titanx()), std::logic_error);
    EXPECT_THROW(workloads::reduction(1, titanx()), std::logic_error);
    EXPECT_THROW(workloads::spmv(100, 50, titanx()),
                 std::logic_error);
}

} // namespace
