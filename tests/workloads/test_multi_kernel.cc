/**
 * @file
 * Tests of multi-kernel applications and the Sec. V-A time-weighted
 * measurement / prediction path.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "core/campaign.hh"
#include "core/metrics.hh"
#include "core/predictor.hh"
#include "workloads/multi_kernel.hh"

namespace
{

using namespace gpupm;

model::CampaignOptions
fastOpts()
{
    model::CampaignOptions o;
    o.power_repetitions = 2;
    return o;
}

TEST(MultiKernel, AppsAreWellFormed)
{
    const auto apps = workloads::multiKernelApps();
    ASSERT_GE(apps.size(), 4u);
    for (const auto &app : apps) {
        EXPECT_FALSE(app.name.empty());
        EXPECT_GE(app.kernels.size(), 2u) << app.name;
        for (const auto &k : app.kernels)
            EXPECT_FALSE(k.empty()) << app.name;
    }
}

TEST(MultiKernel, WeightedPowerLiesBetweenKernelExtremes)
{
    sim::PhysicalGpu board(gpu::DeviceKind::GtxTitanX);
    const auto ref = board.descriptor().referenceConfig();
    const auto apps = workloads::multiKernelApps();
    for (const auto &app : apps) {
        const auto m = model::measureKernelSequence(
                board, app.name, app.kernels, {ref}, fastOpts());
        ASSERT_EQ(m.power_w.size(), 1u);
        double lo = 1e9, hi = 0.0;
        for (const auto &k : app.kernels) {
            const auto km =
                    model::measureApp(board, k, {ref}, fastOpts());
            lo = std::min(lo, km.power_w[0]);
            hi = std::max(hi, km.power_w[0]);
        }
        EXPECT_GE(m.power_w[0], lo - 2.0) << app.name;
        EXPECT_LE(m.power_w[0], hi + 2.0) << app.name;
    }
}

TEST(MultiKernel, WeightsFollowExecutionTime)
{
    // An application made of one long kernel and one short kernel must
    // report power close to the long kernel's.
    sim::PhysicalGpu board(gpu::DeviceKind::GtxTitanX);
    const auto ref = board.descriptor().referenceConfig();
    const auto apps = workloads::multiKernelApps();
    // KMEANS-multi: the membership kernel is 5x the sums kernel.
    const auto &km = *std::find_if(
            apps.begin(), apps.end(), [](const auto &a) {
                return a.name == "KMEANS-multi";
            });
    const auto m = model::measureKernelSequence(
            board, km.name, km.kernels, {ref}, fastOpts());
    const auto long_k = model::measureApp(board, km.kernels[0], {ref},
                                          fastOpts());
    const auto short_k = model::measureApp(board, km.kernels[1],
                                           {ref}, fastOpts());
    EXPECT_LT(std::abs(m.power_w[0] - long_k.power_w[0]),
              std::abs(m.power_w[0] - short_k.power_w[0]));
}

TEST(MultiKernel, UtilizationIsTimeWeightedBlend)
{
    sim::PhysicalGpu board(gpu::DeviceKind::GtxTitanX);
    const auto ref = board.descriptor().referenceConfig();
    const auto apps = workloads::multiKernelApps();
    for (const auto &app : apps) {
        const auto m = model::measureKernelSequence(
                board, app.name, app.kernels, {ref}, fastOpts());
        for (double u : m.util) {
            EXPECT_GE(u, 0.0);
            EXPECT_LE(u, 1.0);
        }
        // The blend cannot exceed the max of the members.
        for (std::size_t i = 0; i < gpu::kNumComponents; ++i) {
            double mx = 0.0;
            for (const auto &k : app.kernels) {
                const auto km = model::measureApp(board, k, {ref},
                                                  fastOpts());
                mx = std::max(mx, km.util[i]);
            }
            EXPECT_LE(m.util[i], mx + 0.05);
        }
    }
}

TEST(MultiKernel, WeightedPredictionTracksWeightedMeasurement)
{
    // Full pipeline: train, then predict the composite applications
    // with Predictor::atWeighted across several configurations.
    sim::PhysicalGpu board(gpu::DeviceKind::GtxTitanX);
    model::CampaignOptions o;
    o.power_repetitions = 3;
    const auto data = model::runTrainingCampaign(
            board, ubench::buildSuite(), o);
    const auto fit = model::ModelEstimator().estimate(data);
    model::Predictor predictor(fit.model);
    const auto ref = board.descriptor().referenceConfig();

    const std::vector<gpu::FreqConfig> configs = {
        ref, {595, 3505}, {1164, 3505}, {975, 810}};

    for (const auto &app : workloads::multiKernelApps()) {
        // Per-kernel profiling for the weighted prediction.
        cupti::Profiler profiler(board, 3);
        std::vector<model::Predictor::WeightedKernel> wks;
        for (const auto &k : app.kernels) {
            const auto rm = profiler.profile(k, ref);
            wks.push_back({model::utilizationsFromMetrics(
                                   rm, board.descriptor(), ref),
                           rm.time_s});
        }
        const auto meas = model::measureKernelSequence(
                board, app.name, app.kernels, configs, o);
        for (std::size_t i = 0; i < configs.size(); ++i) {
            const double pred =
                    predictor.atWeighted(wks, configs[i]).total_w;
            EXPECT_NEAR(pred, meas.power_w[i],
                        0.15 * meas.power_w[i])
                    << app.name << " @ (" << configs[i].core_mhz
                    << "," << configs[i].mem_mhz << ")";
        }
    }
}

TEST(MultiKernel, EmptySequencePanics)
{
    sim::PhysicalGpu board(gpu::DeviceKind::GtxTitanX);
    EXPECT_THROW(model::measureKernelSequence(
                         board, "empty", {},
                         {board.descriptor().referenceConfig()}),
                 std::logic_error);
}

} // namespace
