/**
 * @file
 * Tests of the Table III validation workloads and the
 * signature-to-demand inversion.
 */

#include <gtest/gtest.h>

#include <set>

#include "sim/perf_model.hh"
#include "workloads/workloads.hh"

namespace
{

using namespace gpupm;
using gpu::Component;
using gpu::componentIndex;

const gpu::DeviceDescriptor &titanx()
{
    return gpu::DeviceDescriptor::get(gpu::DeviceKind::GtxTitanX);
}

gpu::ComponentArray
utilAtRef(const sim::KernelDemand &d)
{
    static const sim::AnalyticPerfModel perf;
    return perf.execute(titanx(), d, titanx().referenceConfig()).util;
}

TEST(Workloads, ValidationSetHas26Applications)
{
    EXPECT_EQ(workloads::validationSet().size(), 26u);
    EXPECT_EQ(workloads::fullValidationSet().size(), 27u);
    EXPECT_EQ(workloads::fullValidationSet().back().name, "CUBLAS");
}

TEST(Workloads, NamesAreUniqueAndSuitesMatchTableIII)
{
    std::set<std::string> names;
    std::set<std::string> suites;
    for (const auto &w : workloads::validationSet()) {
        EXPECT_TRUE(names.insert(w.name).second) << w.name;
        suites.insert(w.suite);
    }
    EXPECT_EQ(suites, (std::set<std::string>{"Rodinia", "Parboil",
                                             "Polybench", "CUDA SDK"}));
}

TEST(Workloads, SignatureInversionHitsTargets)
{
    // A moderate signature must reproduce its target utilizations at
    // the GTX Titan X reference configuration.
    workloads::UtilSignature sig;
    sig.util[componentIndex(Component::SP)] = 0.4;
    sig.util[componentIndex(Component::L2)] = 0.5;
    sig.util[componentIndex(Component::Dram)] = 0.6;
    sig.util[componentIndex(Component::Shared)] = 0.2;
    const auto d = workloads::demandFromSignature("probe", sig);
    const auto u = utilAtRef(d);
    EXPECT_NEAR(u[componentIndex(Component::SP)], 0.4, 0.03);
    EXPECT_NEAR(u[componentIndex(Component::L2)], 0.5, 0.03);
    EXPECT_NEAR(u[componentIndex(Component::Dram)], 0.6, 0.03);
    EXPECT_NEAR(u[componentIndex(Component::Shared)], 0.2, 0.03);
}

TEST(Workloads, BlackScholesMatchesFig2ALabels)
{
    const auto u = utilAtRef(workloads::blackScholes().demand);
    // Fig. 2A: DRAM 0.85, L2 0.47, SP 0.25, SF 0.19.
    EXPECT_NEAR(u[componentIndex(Component::Dram)], 0.85, 0.06);
    EXPECT_NEAR(u[componentIndex(Component::L2)], 0.47, 0.06);
    EXPECT_NEAR(u[componentIndex(Component::SP)], 0.25, 0.06);
    EXPECT_NEAR(u[componentIndex(Component::SF)], 0.19, 0.06);
}

TEST(Workloads, CutcpMatchesFig2BLabels)
{
    const auto u = utilAtRef(workloads::cutcp().demand);
    // Fig. 2B: Shared 0.51, SP ~0.28, INT 0.15, SF 0.11.
    EXPECT_NEAR(u[componentIndex(Component::Shared)], 0.51, 0.06);
    EXPECT_NEAR(u[componentIndex(Component::SP)], 0.28, 0.06);
    EXPECT_NEAR(u[componentIndex(Component::Int)], 0.15, 0.06);
    EXPECT_NEAR(u[componentIndex(Component::SF)], 0.11, 0.06);
}

TEST(Workloads, SyrkDoubleIsTheDpHeavyApplication)
{
    for (const auto &w : workloads::validationSet()) {
        const auto u = utilAtRef(w.demand);
        if (w.name == "SYRK_D")
            EXPECT_GT(u[componentIndex(Component::DP)], 0.6);
        else
            EXPECT_LT(u[componentIndex(Component::DP)], 0.1)
                    << w.name;
    }
}

TEST(Workloads, CublasUtilizationGrowsWithInputSize)
{
    // Fig. 9: larger matrices raise SP / shared / power.
    const auto u64 = utilAtRef(workloads::matrixMulCublas(64).demand);
    const auto u512 =
            utilAtRef(workloads::matrixMulCublas(512).demand);
    const auto u4096 =
            utilAtRef(workloads::matrixMulCublas(4096).demand);
    EXPECT_LT(u64[componentIndex(Component::SP)],
              u512[componentIndex(Component::SP)]);
    EXPECT_LT(u512[componentIndex(Component::SP)],
              u4096[componentIndex(Component::SP)]);
    EXPECT_GT(u4096[componentIndex(Component::SP)], 0.75);
    EXPECT_LT(u64[componentIndex(Component::Shared)],
              u4096[componentIndex(Component::Shared)]);
}

TEST(Workloads, CublasRejectsUnsupportedSizes)
{
    EXPECT_THROW(workloads::matrixMulCublas(128), std::runtime_error);
}

TEST(Workloads, DistortionIsDeterministicAndBounded)
{
    const auto a = workloads::validationSet();
    const auto b = workloads::validationSet();
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_DOUBLE_EQ(a[i].demand.counter_distortion,
                         b[i].demand.counter_distortion);
        EXPECT_GE(a[i].demand.counter_distortion, -0.25);
        EXPECT_LE(a[i].demand.counter_distortion, 0.35);
    }
    // Not all identical (the per-app replay signature varies).
    std::set<double> distinct;
    for (const auto &w : a)
        distinct.insert(w.demand.counter_distortion);
    EXPECT_GT(distinct.size(), 10u);
}

TEST(Workloads, EveryWorkloadRunsOnEveryDevice)
{
    const sim::AnalyticPerfModel perf;
    for (auto kind : gpu::kAllDevices) {
        const auto &dev = gpu::DeviceDescriptor::get(kind);
        for (const auto &w : workloads::fullValidationSet()) {
            const auto prof = perf.execute(dev, w.demand,
                                           dev.referenceConfig());
            EXPECT_GT(prof.time_s, 0.0) << w.name;
            for (double u : prof.util) {
                EXPECT_GE(u, 0.0);
                EXPECT_LE(u, 1.0);
            }
        }
    }
}

TEST(Workloads, InvalidSignatureTimePanics)
{
    workloads::UtilSignature sig;
    EXPECT_THROW(workloads::demandFromSignature("x", sig, 0.0),
                 std::logic_error);
}

} // namespace
