/**
 * @file
 * Tests of the device-level cycle simulator: block scheduling, DRAM
 * contention, tail effects, occupancy, and cross-validation against
 * both the single-SM simulator and the analytic substrate.
 */

#include <gtest/gtest.h>

#include "sim/device_cycle_sim.hh"
#include "sim/perf_model.hh"
#include "sim/ptx.hh"
#include "ubench/suite.hh"

namespace
{

using namespace gpupm;
using gpu::Component;
using gpu::componentIndex;

const gpu::DeviceDescriptor &titanx()
{
    return gpu::DeviceDescriptor::get(gpu::DeviceKind::GtxTitanX);
}

/** A launch filling every SM exactly once. */
sim::LaunchConfig
fullLaunch(int blocks_per_sm = 1)
{
    sim::LaunchConfig l;
    l.blocks = titanx().num_sms * blocks_per_sm;
    l.warps_per_block = 16;
    l.blocks_per_sm = blocks_per_sm;
    return l;
}

TEST(DeviceCycleSim, ComputeKernelSaturatesAllSms)
{
    const auto mb = ubench::makeArithmetic(ubench::Family::SP, 256);
    sim::DeviceCycleSim dsim(titanx(), {975, 3505});
    const auto res = dsim.run(*mb.loop, fullLaunch(2));
    EXPECT_GT(res.util[componentIndex(Component::SP)], 0.6);
    EXPECT_GT(res.occupancy, 0.95);
}

TEST(DeviceCycleSim, MatchesSingleSmOnUniformComputeLoad)
{
    // With one identical block per SM and no shared resources in
    // play, the device result must match the single-SM simulator.
    const auto mb = ubench::makeArithmetic(ubench::Family::Int, 256);
    sim::SmCycleSim single(titanx(), {975, 3505}, 16);
    const auto one = single.run(*mb.loop);
    sim::DeviceCycleSim dsim(titanx(), {975, 3505});
    const auto dev = dsim.run(*mb.loop, fullLaunch(1));
    EXPECT_NEAR(dev.util[componentIndex(Component::Int)],
                one.util[componentIndex(Component::Int)], 0.1);
    EXPECT_NEAR(static_cast<double>(dev.cycles) / one.cycles, 1.0,
                0.15);
}

TEST(DeviceCycleSim, DramIsSharedAcrossSms)
{
    // A streaming kernel on 1 SM gets the full bus; on 24 SMs each
    // gets a slice: per-SM progress must slow down by roughly the SM
    // count while total DRAM utilization saturates.
    const auto mb = ubench::makeDram(0);
    sim::DeviceCycleSim dsim(titanx(), {975, 3505});

    sim::LaunchConfig one_sm;
    one_sm.blocks = 1;
    one_sm.warps_per_block = 16;
    one_sm.blocks_per_sm = 1;
    const auto alone = dsim.run(*mb.loop, one_sm);

    const auto full = dsim.run(*mb.loop, fullLaunch(1));
    // 24 blocks move 24x the data but take only ~3x as long: a lone
    // block is limited by its SM's L2 slice (~21 B/cycle), while the
    // full grid saturates the shared DRAM bus (~7 B/cycle/SM).
    EXPECT_GT(full.cycles, 2 * alone.cycles);
    EXPECT_LT(full.cycles, 5 * alone.cycles);
    EXPECT_GT(full.util[componentIndex(Component::Dram)], 0.75);
    // The lone block cannot come close to saturating the bus.
    EXPECT_LT(alone.util[componentIndex(Component::Dram)], 0.25);
}

TEST(DeviceCycleSim, SchedulingTailLowersOccupancy)
{
    // 25 blocks on 24 SMs: the last block runs alone.
    const auto mb = ubench::makeArithmetic(ubench::Family::SP, 128);
    sim::DeviceCycleSim dsim(titanx(), {975, 3505});
    auto even = fullLaunch(1); // 24 blocks
    auto tail = even;
    tail.blocks = titanx().num_sms + 1;
    const auto r_even = dsim.run(*mb.loop, even);
    const auto r_tail = dsim.run(*mb.loop, tail);
    // Roughly double the time for 1/24 more work.
    EXPECT_GT(r_tail.cycles, 1.6 * r_even.cycles);
    EXPECT_LT(r_tail.occupancy, 0.7);
    EXPECT_LT(r_tail.util[componentIndex(Component::SP)],
              r_even.util[componentIndex(Component::SP)]);
}

TEST(DeviceCycleSim, MoreResidentBlocksHideLatency)
{
    // A latency-heavy kernel (dependent SF chain) benefits from
    // higher occupancy.
    const auto k = sim::parsePtxKernel(R"(
LOOP:
  sin.approx.f32 %f1, %f0;
  cos.approx.f32 %f2, %f1;
  add.s32 %r5, %r5, 1;
  setp.lt.s32 %p1, %r5, 64;
  bra LOOP;
)");
    sim::DeviceCycleSim dsim(titanx(), {975, 3505});
    sim::LaunchConfig low;
    low.blocks = titanx().num_sms;
    low.warps_per_block = 2;
    low.blocks_per_sm = 1;
    sim::LaunchConfig high = low;
    high.blocks = titanx().num_sms * 4;
    high.blocks_per_sm = 4;
    const auto r_low = dsim.run(k, low);
    const auto r_high = dsim.run(k, high);
    // 4x the work in far less than 4x the time.
    EXPECT_LT(static_cast<double>(r_high.cycles),
              2.5 * static_cast<double>(r_low.cycles));
}

TEST(DeviceCycleSim, LowerMemClockStretchesStreamingGrid)
{
    const auto mb = ubench::makeDram(0);
    sim::DeviceCycleSim hi(titanx(), {975, 3505});
    sim::DeviceCycleSim lo(titanx(), {975, 810});
    const auto rh = hi.run(*mb.loop, fullLaunch(1));
    const auto rl = lo.run(*mb.loop, fullLaunch(1));
    const double stretch =
            static_cast<double>(rl.cycles) / rh.cycles;
    EXPECT_GT(stretch, 2.8);
    EXPECT_LT(stretch, 6.0);
}

TEST(DeviceCycleSim, CrossValidatesAnalyticModelDeviceWide)
{
    // Device-level utilizations of a saturating launch agree with the
    // analytic model's prediction for the equivalent demand.
    const sim::AnalyticPerfModel perf;
    for (auto family : {ubench::Family::SP, ubench::Family::Dram}) {
        const auto mb =
                family == ubench::Family::SP
                        ? ubench::makeArithmetic(family, 512)
                        : ubench::makeDram(0);
        sim::DeviceCycleSim dsim(titanx(), {975, 3505});
        const auto dres = dsim.run(*mb.loop, fullLaunch(2));
        const auto ares = perf.execute(titanx(), mb.demand,
                                       {975, 3505});
        const Component c = family == ubench::Family::SP
                                    ? Component::SP
                                    : Component::Dram;
        EXPECT_NEAR(dres.util[componentIndex(c)],
                    ares.util[componentIndex(c)], 0.25)
                << ubench::familyName(family);
    }
}

TEST(DeviceCycleSim, InvalidLaunchPanics)
{
    sim::DeviceCycleSim dsim(titanx(), {975, 3505});
    sim::LaunchConfig bad;
    bad.blocks = 0;
    EXPECT_THROW(dsim.run(sim::LoopKernel{}, bad), std::logic_error);
    EXPECT_THROW(sim::DeviceCycleSim(titanx(), {0, 0}),
                 std::logic_error);
}

TEST(DeviceCycleSim, CycleBudgetPanics)
{
    const auto mb = ubench::makeArithmetic(ubench::Family::SP, 512);
    sim::DeviceCycleSim dsim(titanx(), {975, 3505});
    EXPECT_THROW(dsim.run(*mb.loop, fullLaunch(1), 10),
                 std::logic_error);
}

} // namespace
