/**
 * @file
 * Tests of the working-set L2 miss model and its effect on power.
 */

#include <gtest/gtest.h>

#include "nvml/device.hh"
#include "sim/cache_model.hh"
#include "sim/physical_gpu.hh"

namespace
{

using namespace gpupm;

const gpu::DeviceDescriptor &titanx()
{
    return gpu::DeviceDescriptor::get(gpu::DeviceKind::GtxTitanX);
}

sim::KernelDemand
l2HeavyKernel()
{
    sim::KernelDemand d;
    d.name = "cache-probe";
    d.warps_sp = 2e9;
    d.bytes_l2_rd = 8e9;
    d.bytes_l2_wr = 2e9;
    return d;
}

TEST(CacheModel, ResidentWorkingSetHasZeroMissRate)
{
    EXPECT_DOUBLE_EQ(sim::l2MissRate(1 << 20, titanx()), 0.0);
    EXPECT_DOUBLE_EQ(
            sim::l2MissRate(titanx().l2_capacity_bytes, titanx()),
            0.0);
}

TEST(CacheModel, MissRateGrowsTowardStreaming)
{
    const double c = titanx().l2_capacity_bytes;
    EXPECT_NEAR(sim::l2MissRate(2.0 * c, titanx()), 0.5, 1e-12);
    EXPECT_NEAR(sim::l2MissRate(10.0 * c, titanx()), 0.9, 1e-12);
    double prev = 0.0;
    for (double ws = c; ws < 64.0 * c; ws *= 2.0) {
        const double m = sim::l2MissRate(ws, titanx());
        EXPECT_GE(m, prev);
        EXPECT_LE(m, 1.0);
        prev = m;
    }
}

TEST(CacheModel, ResidentKernelOnlyColdFills)
{
    const double ws = 1 << 20; // 1 MiB, resident
    const auto d =
            sim::applyCacheModel(l2HeavyKernel(), ws, titanx());
    // Cold fill bounded by the working set, split by the rd share.
    EXPECT_NEAR(d.bytes_dram_rd + d.bytes_dram_wr, ws, 1.0);
    EXPECT_LT(d.bytes_dram_rd, d.bytes_l2_rd);
}

TEST(CacheModel, StreamingKernelMissesEverything)
{
    const double ws = 1e9; // far beyond the 3 MiB L2
    const auto d =
            sim::applyCacheModel(l2HeavyKernel(), ws, titanx());
    const double miss = sim::l2MissRate(ws, titanx());
    EXPECT_NEAR(d.bytes_dram_rd, miss * 8e9, 1e6);
    EXPECT_NEAR(d.bytes_dram_wr, miss * 2e9, 1e6);
}

TEST(CacheModel, SpillingToDramRaisesPowerThenStretchesExecution)
{
    // The Fig. 9 mechanism: the same kernel on a growing input spills
    // to DRAM. Power rises from the resident case to the first
    // spilling sizes (DRAM dynamic power turns on); at extreme
    // working sets the kernel becomes bandwidth-bound and *stretches*,
    // idling the core units — so total power is not monotone, but the
    // DRAM utilization is.
    sim::PhysicalGpu board(gpu::DeviceKind::GtxTitanX);
    nvml::Device dev(board, 3);
    const auto cfg = titanx().referenceConfig();

    const auto resident =
            sim::applyCacheModel(l2HeavyKernel(), 0.5e6, titanx());
    const auto spilling =
            sim::applyCacheModel(l2HeavyKernel(), 8e6, titanx());
    EXPECT_GT(dev.measureKernelPower(spilling, 3).power_w,
              dev.measureKernelPower(resident, 3).power_w + 5.0);

    double prev_util = -1.0;
    for (double ws : {0.5e6, 2e6, 8e6, 32e6, 128e6}) {
        const auto d =
                sim::applyCacheModel(l2HeavyKernel(), ws, titanx());
        const auto prof = board.execute(d, cfg);
        const double u = prof.util[gpu::componentIndex(
                gpu::Component::Dram)];
        EXPECT_GE(u, prev_util - 1e-9) << "ws=" << ws;
        prev_util = u;
    }
}

TEST(CacheModel, InvalidInputsPanic)
{
    EXPECT_THROW(sim::l2MissRate(-1.0, titanx()), std::logic_error);
    gpu::DeviceDescriptor broken = titanx();
    broken.l2_capacity_bytes = 0.0;
    EXPECT_THROW(sim::l2MissRate(1e6, broken), std::logic_error);
}

} // namespace
