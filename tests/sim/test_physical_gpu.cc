/**
 * @file
 * Tests of the ground-truth physical power model.
 */

#include <gtest/gtest.h>

#include "sim/physical_gpu.hh"

namespace
{

using namespace gpupm;
using gpu::Component;
using gpu::componentIndex;

sim::KernelDemand
busyKernel()
{
    sim::KernelDemand d;
    d.name = "busy";
    d.warps_sp = 5e9;
    d.warps_int = 2e9;
    d.bytes_dram_rd = 5e9;
    d.bytes_l2_rd = 6e9;
    d.warps_other = 1e9;
    return d;
}

class PhysicalGpuAll : public ::testing::TestWithParam<gpu::DeviceKind>
{
  protected:
    sim::PhysicalGpu board{GetParam()};
};

TEST_P(PhysicalGpuAll, IdlePowerPositiveAndBelowTdp)
{
    for (const auto &cfg : board.descriptor().allConfigs()) {
        const auto idle = board.idlePower(cfg);
        EXPECT_GT(idle.total_w, 5.0);
        EXPECT_LT(idle.total_w, board.descriptor().tdp_w);
        EXPECT_DOUBLE_EQ(idle.total_w, idle.constant_w);
        EXPECT_DOUBLE_EQ(idle.core_dynamic_w, 0.0);
        EXPECT_DOUBLE_EQ(idle.hidden_w, 0.0);
    }
}

TEST_P(PhysicalGpuAll, LoadedPowerExceedsIdle)
{
    const auto cfg = board.descriptor().referenceConfig();
    const auto prof = board.execute(busyKernel(), cfg);
    const auto p = board.truePower(prof, cfg);
    EXPECT_GT(p.total_w, board.idlePower(cfg).total_w + 10.0);
}

TEST_P(PhysicalGpuAll, BreakdownSumsToTotal)
{
    const auto cfg = board.descriptor().referenceConfig();
    const auto prof = board.execute(busyKernel(), cfg);
    const auto p = board.truePower(prof, cfg);
    EXPECT_NEAR(p.total_w,
                p.constant_w + p.core_dynamic_w + p.mem_dynamic_w +
                        p.hidden_w,
                1e-9);
    double comp_sum = 0.0;
    for (double w : p.component_w)
        comp_sum += w;
    EXPECT_NEAR(comp_sum, p.core_dynamic_w + p.mem_dynamic_w, 1e-9);
}

TEST_P(PhysicalGpuAll, IdlePowerRisesWithCoreClock)
{
    const auto &d = board.descriptor();
    double prev = 0.0;
    for (int fc : d.core_freqs_mhz) {
        const double w =
                board.idlePower({fc, d.default_mem_mhz}).total_w;
        EXPECT_GT(w, prev);
        prev = w;
    }
}

TEST_P(PhysicalGpuAll, TrueCoreVoltageIsOneAtReference)
{
    EXPECT_DOUBLE_EQ(board.trueCoreVoltageNorm(
                             board.descriptor().default_core_mhz),
                     1.0);
    EXPECT_DOUBLE_EQ(board.trueMemVoltageNorm(
                             board.descriptor().default_mem_mhz),
                     1.0);
}

TEST_P(PhysicalGpuAll, VoltageCurveIsMonotone)
{
    const auto &d = board.descriptor();
    double prev = 0.0;
    for (int fc : d.core_freqs_mhz) {
        const double v = board.trueCoreVoltageNorm(fc);
        EXPECT_GE(v, prev);
        prev = v;
    }
}

TEST_P(PhysicalGpuAll, MemVoltageConstantAcrossMemClocks)
{
    // The paper observed no memory-voltage scaling on any device.
    const auto &d = board.descriptor();
    for (int fm : d.mem_freqs_mhz)
        EXPECT_DOUBLE_EQ(board.trueMemVoltageNorm(fm), 1.0);
}

TEST_P(PhysicalGpuAll, UnsupportedConfigPanics)
{
    EXPECT_THROW(board.execute(busyKernel(), {123, 456}),
                 std::logic_error);
}

TEST_P(PhysicalGpuAll, PeakLoadStaysNearTdpScale)
{
    // A kernel saturating everything at the top clocks should land in
    // the same ballpark as the board's TDP (not 10x off).
    const auto &d = board.descriptor();
    sim::KernelDemand sat;
    sat.name = "saturate";
    const gpu::FreqConfig top{d.maxCoreMhz(), d.mem_freqs_mhz.front()};
    const double t = 0.01;
    sat.warps_sp =
            0.9 * d.peakWarpsPerSecond(Component::SP, top.core_mhz) * t;
    sat.warps_int = 0.15 * d.peakWarpsPerSecond(Component::Int,
                                                top.core_mhz) * t;
    sat.bytes_dram_rd =
            0.9 * d.peakBandwidth(Component::Dram, top) * t;
    sat.bytes_l2_rd = 0.7 * d.peakBandwidth(Component::L2, top) * t;
    sat.bytes_shared_ld =
            0.5 * d.peakBandwidth(Component::Shared, top) * t;
    const auto prof = board.execute(sat, top);
    const auto p = board.truePower(prof, top);
    EXPECT_GT(p.total_w, 0.6 * d.tdp_w);
    EXPECT_LT(p.total_w, 1.6 * d.tdp_w);
}

INSTANTIATE_TEST_SUITE_P(AllDevices, PhysicalGpuAll,
                         ::testing::Values(gpu::DeviceKind::TitanXp,
                                           gpu::DeviceKind::GtxTitanX,
                                           gpu::DeviceKind::TeslaK40c));

TEST(PhysicalGpu, TitanXAnchorsMatchPaperFigures)
{
    // The GTX Titan X ground truth is calibrated against the paper's
    // printed anchors.
    sim::PhysicalGpu board(gpu::DeviceKind::GtxTitanX);

    // Fig. 10: constant (idle-like) power ~80 W at (975, 3505) and
    // ~50 W at (975, 810).
    EXPECT_NEAR(board.idlePower({975, 3505}).total_w, 80.0, 10.0);
    EXPECT_NEAR(board.idlePower({975, 810}).total_w, 50.0, 8.0);
}

TEST(PhysicalGpu, CustomGroundTruthIsUsed)
{
    gpu::DeviceDescriptor desc =
            gpu::DeviceDescriptor::get(gpu::DeviceKind::GtxTitanX);
    sim::GroundTruth t;
    t.static_core_w = 100.0;
    t.core_voltage = sim::VoltageCurve::constant(1.0);
    t.mem_voltage = sim::VoltageCurve::constant(1.0);
    sim::PhysicalGpu board(desc, t);
    EXPECT_NEAR(board.idlePower({975, 3505}).total_w, 100.0, 1e-9);
}

} // namespace

namespace
{

TEST(PhysicalGpu, ThermalFeedbackRaisesStaticPower)
{
    auto truth = sim::PhysicalGpu::defaultGroundTruth(
            gpu::DeviceKind::GtxTitanX);
    truth.thermal_resistance_c_w = 0.3;
    truth.leakage_temp_coeff = 0.005;
    sim::PhysicalGpu hot(
            gpu::DeviceDescriptor::get(gpu::DeviceKind::GtxTitanX),
            truth);
    sim::PhysicalGpu cold(gpu::DeviceKind::GtxTitanX);

    const auto cfg = hot.descriptor().referenceConfig();
    const auto prof = hot.execute(busyKernel(), cfg);
    const auto ph = hot.truePower(prof, cfg);
    const auto pc = cold.truePower(prof, cfg);
    EXPECT_GT(ph.total_w, pc.total_w);
    EXPECT_GT(ph.temperature_c, 50.0);
    EXPECT_DOUBLE_EQ(pc.temperature_c, 25.0);
    // The increase sits in the constant (static) share.
    EXPECT_GT(ph.constant_w, pc.constant_w);
    EXPECT_NEAR(ph.core_dynamic_w, pc.core_dynamic_w, 1e-9);
}

TEST(PhysicalGpu, ThermalFixedPointMatchesClosedForm)
{
    // With static s0, other d, temperature T = amb + R*P and
    // static(T) = s0*(1 + k*(T-amb)):  P = (d + s0) / (1 - s0*k*R).
    auto truth = sim::PhysicalGpu::defaultGroundTruth(
            gpu::DeviceKind::GtxTitanX);
    truth.thermal_resistance_c_w = 0.2;
    truth.leakage_temp_coeff = 0.004;
    sim::PhysicalGpu board(
            gpu::DeviceDescriptor::get(gpu::DeviceKind::GtxTitanX),
            truth);
    sim::PhysicalGpu base(gpu::DeviceKind::GtxTitanX);

    const auto cfg = board.descriptor().referenceConfig();
    const auto prof = board.execute(busyKernel(), cfg);
    const auto p0 = base.truePower(prof, cfg);
    const double s0 = p0.constant_w;
    const double d = p0.total_w - s0;
    const double expect = (d + s0) / (1.0 - s0 * 0.004 * 0.2);
    EXPECT_NEAR(board.truePower(prof, cfg).total_w, expect, 0.1);
}

TEST(PhysicalGpu, HotterKernelsRunHotter)
{
    auto truth = sim::PhysicalGpu::defaultGroundTruth(
            gpu::DeviceKind::GtxTitanX);
    truth.thermal_resistance_c_w = 0.25;
    truth.leakage_temp_coeff = 0.004;
    sim::PhysicalGpu board(
            gpu::DeviceDescriptor::get(gpu::DeviceKind::GtxTitanX),
            truth);
    const auto cfg = board.descriptor().referenceConfig();
    const auto idle = board.idlePower(cfg);
    const auto prof = board.execute(busyKernel(), cfg);
    const auto busy = board.truePower(prof, cfg);
    EXPECT_GT(busy.temperature_c, idle.temperature_c + 10.0);
}

} // namespace
