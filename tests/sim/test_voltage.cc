/**
 * @file
 * Tests of the ground-truth voltage curves.
 */

#include <gtest/gtest.h>

#include "sim/voltage.hh"

namespace
{

using gpupm::sim::VoltageCurve;

TEST(Voltage, ConstantCurve)
{
    const auto c = VoltageCurve::constant(1.35);
    EXPECT_DOUBLE_EQ(c.volts(100.0), 1.35);
    EXPECT_DOUBLE_EQ(c.volts(5000.0), 1.35);
    EXPECT_DOUBLE_EQ(c.normalized(810.0, 3505.0), 1.0);
}

TEST(Voltage, TwoRegionShape)
{
    const auto v = VoltageCurve::twoRegion(700.0, 0.95, 1.24, 1164.0);
    // Flat below the knee.
    EXPECT_DOUBLE_EQ(v.volts(500.0), 0.95);
    EXPECT_DOUBLE_EQ(v.volts(700.0), 0.95);
    // Linear above, hitting the anchors.
    EXPECT_DOUBLE_EQ(v.volts(1164.0), 1.24);
    const double mid = v.volts(932.0);
    EXPECT_GT(mid, 0.95);
    EXPECT_LT(mid, 1.24);
    // Linearity: midpoint of the ramp is the mean of the endpoints.
    EXPECT_NEAR(v.volts(0.5 * (700.0 + 1164.0)), 0.5 * (0.95 + 1.24),
                1e-12);
}

TEST(Voltage, MonotoneNonDecreasing)
{
    const auto v = VoltageCurve::twoRegion(700.0, 0.95, 1.24, 1164.0);
    double prev = 0.0;
    for (int f = 300; f <= 1300; f += 25) {
        const double x = v.volts(f);
        EXPECT_GE(x, prev);
        prev = x;
    }
}

TEST(Voltage, NormalizedIsOneAtReference)
{
    const auto v = VoltageCurve::twoRegion(700.0, 0.95, 1.24, 1164.0);
    EXPECT_DOUBLE_EQ(v.normalized(975.0, 975.0), 1.0);
    EXPECT_LT(v.normalized(595.0, 975.0), 1.0);
    EXPECT_GT(v.normalized(1164.0, 975.0), 1.0);
}

TEST(Voltage, KneeAccessor)
{
    const auto v = VoltageCurve::twoRegion(700.0, 0.95, 1.24, 1164.0);
    EXPECT_DOUBLE_EQ(v.kneeMhz(), 700.0);
    EXPECT_DOUBLE_EQ(VoltageCurve::constant(1.0).kneeMhz(), 0.0);
}

TEST(Voltage, InvalidCurvesPanic)
{
    EXPECT_THROW(VoltageCurve::constant(0.0), std::logic_error);
    EXPECT_THROW(VoltageCurve::twoRegion(1200.0, 0.9, 1.2, 1000.0),
                 std::logic_error);
    EXPECT_THROW(VoltageCurve::twoRegion(700.0, 1.3, 1.2, 1164.0),
                 std::logic_error);
}

} // namespace
