/**
 * @file
 * Cross-validation of the cycle-approximate SM simulator against the
 * analytic bottleneck model, plus unit behaviour of the pipeline.
 */

#include <gtest/gtest.h>

#include <utility>

#include "sim/perf_model.hh"
#include "sim/sm_cycle_sim.hh"
#include "ubench/suite.hh"

namespace
{

using namespace gpupm;
using gpu::Component;
using gpu::componentIndex;

const gpu::DeviceDescriptor &titanx()
{
    return gpu::DeviceDescriptor::get(gpu::DeviceKind::GtxTitanX);
}

TEST(SmCycleSim, SpLoopSaturatesSpUnits)
{
    const auto mb = ubench::makeArithmetic(ubench::Family::SP, 512);
    ASSERT_TRUE(mb.loop.has_value());
    sim::SmCycleSim simr(titanx(), {975, 3505}, 48);
    const auto res = simr.run(*mb.loop);
    // 128 SP lanes = 4 warps/cycle; with ample warps the loop should
    // keep the units mostly busy.
    EXPECT_GT(res.util[componentIndex(Component::SP)], 0.7);
    EXPECT_LE(res.util[componentIndex(Component::SP)], 1.0);
    EXPECT_LT(res.util[componentIndex(Component::Int)], 0.1);
}

TEST(SmCycleSim, DpLoopThrottledByFewUnits)
{
    const auto mb = ubench::makeArithmetic(ubench::Family::DP, 64);
    sim::SmCycleSim simr(titanx(), {975, 3505}, 48);
    const auto res = simr.run(*mb.loop);
    // 4 DP lanes = 1/8 warp per cycle; the unit saturates long before
    // the issue stage does.
    EXPECT_GT(res.util[componentIndex(Component::DP)], 0.7);
    EXPECT_LT(res.issue_util, 0.2);
}

TEST(SmCycleSim, SharedLoopBoundByBankBandwidth)
{
    const auto mb = ubench::makeShared(0);
    sim::SmCycleSim simr(titanx(), {975, 3505}, 48);
    const auto res = simr.run(*mb.loop);
    // Each iteration moves 256 B/warp against a 128 B/cycle budget:
    // two cycles per warp-iteration at saturation.
    const double shared_bytes_per_cycle =
            res.warps_issued[componentIndex(Component::Shared)] *
            128.0 / static_cast<double>(res.cycles);
    EXPECT_GT(shared_bytes_per_cycle, 0.6 * 128.0);
}

TEST(SmCycleSim, DramLoopBoundByMemoryBudget)
{
    const auto mb = ubench::makeDram(0);
    sim::SmCycleSim simr(titanx(), {975, 3505}, 48);
    const auto res = simr.run(*mb.loop);
    const double dram_bytes_per_cycle =
            res.warps_issued[componentIndex(Component::Dram)] * 128.0 /
            static_cast<double>(res.cycles);
    const double budget = titanx().mem_bus_bytes *
                          (3505.0 / 975.0) / titanx().num_sms;
    EXPECT_GT(dram_bytes_per_cycle, 0.5 * budget);
    EXPECT_LE(dram_bytes_per_cycle, budget * 1.05);
}

TEST(SmCycleSim, LowerMemClockSlowsStreamingLoop)
{
    const auto mb = ubench::makeDram(0);
    sim::SmCycleSim hi(titanx(), {975, 3505}, 48);
    sim::SmCycleSim lo(titanx(), {975, 810}, 48);
    const auto rh = hi.run(*mb.loop);
    const auto rl = lo.run(*mb.loop);
    const double stretch = static_cast<double>(rl.cycles) / rh.cycles;
    EXPECT_GT(stretch, 2.5);
    EXPECT_LT(stretch, 6.0);
}

TEST(SmCycleSim, MoreWarpsHideLatency)
{
    const auto mb = ubench::makeArithmetic(ubench::Family::SP, 128);
    sim::SmCycleSim few(titanx(), {975, 3505}, 2);
    sim::SmCycleSim many(titanx(), {975, 3505}, 48);
    const auto rf = few.run(*mb.loop);
    const auto rm = many.run(*mb.loop);
    // 24x the warps should complete 24x the work in far fewer than
    // 24x the cycles.
    EXPECT_LT(rm.cycles, rf.cycles * 8);
    EXPECT_GT(rm.util[componentIndex(Component::SP)],
              rf.util[componentIndex(Component::SP)]);
}

TEST(SmCycleSim, CrossValidatesAnalyticModelOnComputeLoops)
{
    // The two independent performance models must agree on the
    // saturated utilization of the stressed unit for register-only
    // loops (the regime both model exactly).
    const sim::AnalyticPerfModel perf;
    for (ubench::Family f :
         {ubench::Family::SP, ubench::Family::Int}) {
        const auto mb = ubench::makeArithmetic(f, 512);
        const auto analytic =
                perf.execute(titanx(), mb.demand, {975, 3505});
        sim::SmCycleSim simr(titanx(), {975, 3505}, 48);
        const auto cyc = simr.run(*mb.loop);
        const Component unit =
                f == ubench::Family::SP ? Component::SP
                                        : Component::Int;
        EXPECT_NEAR(cyc.util[componentIndex(unit)],
                    analytic.util[componentIndex(unit)], 0.25)
                << "family " << ubench::familyName(f);
    }
}

TEST(SmCycleSim, EmptyKernelFinishesImmediately)
{
    sim::LoopKernel k;
    k.trip_count = 0;
    sim::SmCycleSim simr(titanx(), {975, 3505}, 4);
    const auto res = simr.run(k);
    EXPECT_LT(res.cycles, 16u);
}

TEST(SmCycleSim, CycleBudgetExceededPanics)
{
    const auto mb = ubench::makeArithmetic(ubench::Family::SP, 512);
    sim::SmCycleSim simr(titanx(), {975, 3505}, 48);
    EXPECT_THROW(simr.run(*mb.loop, 10), std::logic_error);
}

TEST(SmCycleSim, NeedsAtLeastOneWarp)
{
    EXPECT_THROW(sim::SmCycleSim(titanx(), {975, 3505}, 0),
                 std::logic_error);
}

} // namespace

namespace
{

TEST(SmCycleSim, BankConflictsSerializeSharedAccesses)
{
    // The Fig. 3c microbenchmark chooses addresses that avoid bank
    // conflicts; this test shows why: a 4-way conflicting variant of
    // the same loop takes roughly 4x the shared-memory time.
    const auto mb = ubench::makeShared(0);
    sim::LoopKernel conflicting = *mb.loop;
    for (auto &ins : conflicting.body) {
        if (ins.cls == sim::InstrClass::SharedLd ||
            ins.cls == sim::InstrClass::SharedSt)
            ins.conflict_ways = 4;
    }
    sim::SmCycleSim clean_sim(titanx(), {975, 3505}, 48);
    sim::SmCycleSim conflict_sim(titanx(), {975, 3505}, 48);
    const auto clean = clean_sim.run(*mb.loop);
    const auto slow = conflict_sim.run(conflicting);
    const double stretch =
            static_cast<double>(slow.cycles) / clean.cycles;
    EXPECT_GT(stretch, 2.5);
    EXPECT_LT(stretch, 5.0);
}

} // namespace

namespace
{

/** Cross-validation across V-F configurations: the SM simulator and
 *  the analytic model must agree wherever both are defined. */
class SimAgreement
    : public ::testing::TestWithParam<std::pair<int, int>>
{
};

TEST_P(SimAgreement, SpUtilizationMatchesAcrossConfigs)
{
    const gpu::FreqConfig cfg{GetParam().first, GetParam().second};
    const auto mb = ubench::makeArithmetic(ubench::Family::SP, 256);
    const sim::AnalyticPerfModel perf;
    const auto a = perf.execute(titanx(), mb.demand, cfg);
    sim::SmCycleSim simr(titanx(), cfg, 48);
    const auto c = simr.run(*mb.loop);
    EXPECT_NEAR(c.util[componentIndex(Component::SP)],
                a.util[componentIndex(Component::SP)], 0.25)
            << cfg.core_mhz << "/" << cfg.mem_mhz;
}

INSTANTIATE_TEST_SUITE_P(
        Configs, SimAgreement,
        ::testing::Values(std::make_pair(595, 3505),
                          std::make_pair(975, 3505),
                          std::make_pair(1164, 3505),
                          std::make_pair(975, 810),
                          std::make_pair(595, 810),
                          std::make_pair(1164, 4005)));

} // namespace
