/**
 * @file
 * Tests of the analytic bottleneck performance model.
 */

#include <gtest/gtest.h>

#include "gpu/device.hh"
#include "sim/perf_model.hh"

namespace
{

using namespace gpupm;
using gpu::Component;
using gpu::componentIndex;

const gpu::DeviceDescriptor &titanx()
{
    return gpu::DeviceDescriptor::get(gpu::DeviceKind::GtxTitanX);
}

sim::KernelDemand
spOnly(double warps)
{
    sim::KernelDemand d;
    d.name = "sp-only";
    d.warps_sp = warps;
    return d;
}

TEST(PerfModel, EmptyDemandTakesNoTime)
{
    sim::AnalyticPerfModel perf;
    const auto prof = perf.execute(titanx(), {}, {975, 3505});
    EXPECT_DOUBLE_EQ(prof.time_s, 0.0);
    for (double u : prof.util)
        EXPECT_DOUBLE_EQ(u, 0.0);
}

TEST(PerfModel, PureComputeBoundBySpUnits)
{
    sim::AnalyticPerfModel perf;
    const auto prof = perf.execute(titanx(), spOnly(1e9), {975, 3505});
    // Time is close to the SP service time.
    const double t_sp = 1e9 / titanx().peakWarpsPerSecond(
                                      Component::SP, 975);
    EXPECT_GT(prof.time_s, t_sp);
    EXPECT_LT(prof.time_s, 1.15 * t_sp);
    // SP is the near-saturated bottleneck.
    EXPECT_GT(prof.util[componentIndex(Component::SP)], 0.85);
    EXPECT_LE(prof.util[componentIndex(Component::SP)], 1.0);
    EXPECT_DOUBLE_EQ(prof.util[componentIndex(Component::Dram)], 0.0);
}

TEST(PerfModel, UtilizationsAlwaysInUnitInterval)
{
    sim::AnalyticPerfModel perf;
    sim::KernelDemand d;
    d.name = "mixed";
    d.warps_sp = 5e8;
    d.warps_int = 3e8;
    d.warps_dp = 1e7;
    d.warps_sf = 1e8;
    d.warps_other = 2e8;
    d.bytes_dram_rd = 1e9;
    d.bytes_l2_rd = 2e9;
    d.bytes_shared_ld = 1e9;
    d.latency_cycles = 1e8;
    for (const auto &cfg : titanx().allConfigs()) {
        const auto prof = perf.execute(titanx(), d, cfg);
        for (double u : prof.util) {
            EXPECT_GE(u, 0.0);
            EXPECT_LE(u, 1.0);
        }
        EXPECT_GE(prof.util_issue, 0.0);
        EXPECT_LE(prof.util_issue, 1.0);
    }
}

TEST(PerfModel, ComputeTimeScalesInverselyWithCoreClock)
{
    sim::AnalyticPerfModel perf;
    const auto fast = perf.execute(titanx(), spOnly(1e9), {1164, 3505});
    const auto slow = perf.execute(titanx(), spOnly(1e9), {595, 3505});
    EXPECT_NEAR(slow.time_s / fast.time_s, 1164.0 / 595.0, 1e-6);
}

TEST(PerfModel, MemoryBoundKernelStretchesWithMemClock)
{
    sim::AnalyticPerfModel perf;
    sim::KernelDemand d;
    d.name = "stream";
    d.bytes_dram_rd = 4e9;
    d.bytes_l2_rd = 4e9;
    const auto hi = perf.execute(titanx(), d, {975, 3505});
    const auto lo = perf.execute(titanx(), d, {975, 810});
    // Time stretches roughly with the 4.33x clock ratio.
    EXPECT_NEAR(lo.time_s / hi.time_s, 3505.0 / 810.0, 0.2);
    // DRAM stays the bottleneck at both points.
    EXPECT_GT(lo.util[componentIndex(Component::Dram)], 0.9);
}

TEST(PerfModel, MixedKernelShiftsBottleneckWithMemClock)
{
    // Compute-bound at the reference, memory-bound at the low clock:
    // the core-unit utilization must collapse when memory stretches
    // the execution (the Fig. 8 drift mechanism).
    sim::AnalyticPerfModel perf;
    sim::KernelDemand d = spOnly(1e9);
    const double t_sp =
            1e9 / titanx().peakWarpsPerSecond(Component::SP, 975);
    d.bytes_dram_rd = 0.5 * t_sp *
                      titanx().peakBandwidth(Component::Dram,
                                             {975, 3505});
    d.bytes_l2_rd = d.bytes_dram_rd;

    const auto ref = perf.execute(titanx(), d, {975, 3505});
    const auto low = perf.execute(titanx(), d, {975, 810});
    EXPECT_GT(ref.util[componentIndex(Component::SP)], 0.8);
    EXPECT_LT(low.util[componentIndex(Component::SP)],
              0.6 * ref.util[componentIndex(Component::SP)]);
    EXPECT_GT(low.util[componentIndex(Component::Dram)], 0.85);
}

TEST(PerfModel, LatencyFloorDominatesSmallKernels)
{
    sim::AnalyticPerfModel perf;
    sim::KernelDemand d;
    d.name = "latency";
    d.latency_cycles = 1e9;
    d.warps_sp = 1e6; // negligible work
    const auto prof = perf.execute(titanx(), d, {975, 3505});
    EXPECT_NEAR(prof.time_s, 1e9 / 0.975e9, 0.05);
    EXPECT_LT(prof.util[componentIndex(Component::SP)], 0.05);
}

TEST(PerfModel, ActiveCyclesEqualTimeTimesClock)
{
    sim::AnalyticPerfModel perf;
    const auto prof = perf.execute(titanx(), spOnly(1e8), {785, 3505});
    EXPECT_NEAR(prof.active_cycles, prof.time_s * 785e6, 1.0);
}

TEST(PerfModel, AchievedBandwidthConsistent)
{
    sim::AnalyticPerfModel perf;
    sim::KernelDemand d;
    d.name = "bw";
    d.bytes_dram_rd = 3e9;
    d.bytes_dram_wr = 1e9;
    d.bytes_l2_rd = 4e9;
    const auto prof = perf.execute(titanx(), d, {975, 3505});
    EXPECT_NEAR(prof.achieved_bw[componentIndex(Component::Dram)],
                4e9 / prof.time_s, 1.0);
    // Achieved bandwidth never exceeds the peak.
    EXPECT_LE(prof.achieved_bw[componentIndex(Component::Dram)],
              titanx().peakBandwidth(Component::Dram, {975, 3505}) *
                      (1.0 + 1e-9));
}

TEST(PerfModel, LargerOverlapExponentShortensExecution)
{
    sim::KernelDemand d = spOnly(1e9);
    d.bytes_dram_rd =
            1e9 / titanx().peakWarpsPerSecond(Component::SP, 975) *
            titanx().peakBandwidth(Component::Dram, {975, 3505});
    d.bytes_l2_rd = d.bytes_dram_rd;
    const auto loose =
            sim::AnalyticPerfModel(2.0).execute(titanx(), d,
                                                {975, 3505});
    const auto tight =
            sim::AnalyticPerfModel(12.0).execute(titanx(), d,
                                                 {975, 3505});
    EXPECT_GT(loose.time_s, tight.time_s);
}

TEST(PerfModel, InvalidParametersPanic)
{
    EXPECT_THROW(sim::AnalyticPerfModel(0.5), std::logic_error);
    EXPECT_THROW(sim::AnalyticPerfModel(6.0, 0), std::logic_error);
    sim::AnalyticPerfModel perf;
    EXPECT_THROW(perf.execute(titanx(), spOnly(1.0), {0, 3505}),
                 std::logic_error);
}

TEST(PerfModel, DemandScalingIsLinearInTime)
{
    sim::AnalyticPerfModel perf;
    sim::KernelDemand d = spOnly(1e9);
    d.bytes_dram_rd = 1e9;
    d.bytes_l2_rd = 1e9;
    const auto one = perf.execute(titanx(), d, {975, 3505});
    const auto two = perf.execute(titanx(), d.scaled(2.0),
                                  {975, 3505});
    EXPECT_NEAR(two.time_s, 2.0 * one.time_s, 1e-9);
    // Utilizations are scale-invariant.
    for (std::size_t i = 0; i < gpu::kNumComponents; ++i)
        EXPECT_NEAR(two.util[i], one.util[i], 1e-9);
}

} // namespace
