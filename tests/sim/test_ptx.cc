/**
 * @file
 * Tests of the PTX-subset kernel frontend, centred on the paper's
 * Fig. 4 listing.
 */

#include <gtest/gtest.h>

#include "sim/perf_model.hh"
#include "sim/ptx.hh"
#include "ubench/suite.hh"

namespace
{

using namespace gpupm;
using sim::InstrClass;

/** The paper's Fig. 4 SP microbenchmark, verbatim structure. */
const char *kFig4 = R"(
ld.global.f32  %f1, [%rd1];
mov.f32  %f2, %f1;
mov.f32  %f3, %f1;
mov.f32  %f4, %f1;
BA1:
  fma.rn.f32  %f5, %f1, %f1, %f2;   // 4 independent chains,
  fma.rn.f32  %f6, %f2, %f2, %f3;   // unrolled 32x in the paper
  fma.rn.f32  %f7, %f3, %f3, %f3;
  fma.rn.f32  %f8, %f4, %f4, %f1;
  add.s32  %r5, %r5, 32;
  setp.lt.s32 %p1, %r5, 512;
  bra  BA1;
st.global.f32  [%rd1], %f5;
)";

TEST(Ptx, ParsesFig4Structure)
{
    const auto k = sim::parsePtxKernel(kFig4);
    // Prologue: ld + 3 movs.
    ASSERT_EQ(k.prologue.size(), 4u);
    EXPECT_EQ(k.prologue[0].cls, InstrClass::GlobalLd);
    EXPECT_DOUBLE_EQ(k.prologue[0].bytes, 128.0);
    EXPECT_EQ(k.prologue[1].cls, InstrClass::Control);
    // Body: 4 FMAs + add + setp + bra = 7 instructions.
    ASSERT_EQ(k.body.size(), 7u);
    for (int i = 0; i < 4; ++i)
        EXPECT_EQ(k.body[i].cls, InstrClass::SP);
    EXPECT_EQ(k.body[4].cls, InstrClass::Int);      // add.s32
    EXPECT_EQ(k.body[5].cls, InstrClass::Control);  // setp
    EXPECT_EQ(k.body[6].cls, InstrClass::Control);  // bra
    // Epilogue: the store.
    ASSERT_EQ(k.epilogue.size(), 1u);
    EXPECT_EQ(k.epilogue[0].cls, InstrClass::GlobalSt);
}

TEST(Ptx, InfersTripCountFromBookkeeping)
{
    // 512 bound / 32 per iteration = 16 trips.
    const auto k = sim::parsePtxKernel(kFig4);
    EXPECT_EQ(k.trip_count, 16u);
}

TEST(Ptx, TripCountOverrideWins)
{
    const auto k = sim::parsePtxKernel(kFig4, 99);
    EXPECT_EQ(k.trip_count, 99u);
}

TEST(Ptx, TracksRegisterDependencies)
{
    const auto k = sim::parsePtxKernel(R"(
BA1:
  mul.f32 %f1, %f0, %f0;
  add.f32 %f2, %f1, %f1;   // depends on %f1
  add.f32 %f3, %f0, %f0;   // independent of %f2
  add.s32 %r5, %r5, 1;
  setp.lt.s32 %p1, %r5, 8;
  bra BA1;
)");
    ASSERT_GE(k.body.size(), 3u);
    EXPECT_FALSE(k.body[0].depends_on_prev);
    EXPECT_TRUE(k.body[1].depends_on_prev);
    EXPECT_FALSE(k.body[2].depends_on_prev);
}

TEST(Ptx, ClassifiesTypesAndSpecialFunctions)
{
    const auto k = sim::parsePtxKernel(R"(
add.f64 %fd1, %fd0, %fd0;
sin.approx.f32 %f1, %f0;
lg2.approx.f32 %f2, %f1;
add.s32 %r1, %r0, 1;
ld.shared.f32 %f3, [%rs0];
st.shared.f32 [%rs1], %f3;
ld.global.v4.f32 %f4, [%rd0];
)");
    ASSERT_EQ(k.prologue.size(), 7u); // no loop -> straight line
    EXPECT_EQ(k.prologue[0].cls, InstrClass::DP);
    EXPECT_EQ(k.prologue[1].cls, InstrClass::SF);
    EXPECT_EQ(k.prologue[2].cls, InstrClass::SF);
    EXPECT_EQ(k.prologue[3].cls, InstrClass::Int);
    EXPECT_EQ(k.prologue[4].cls, InstrClass::SharedLd);
    EXPECT_DOUBLE_EQ(k.prologue[4].bytes, 128.0);
    EXPECT_EQ(k.prologue[5].cls, InstrClass::SharedSt);
    EXPECT_EQ(k.prologue[6].cls, InstrClass::GlobalLd);
    EXPECT_DOUBLE_EQ(k.prologue[6].bytes, 512.0); // v4.f32 = 16 B/thr
}

TEST(Ptx, DemandFromLoopMatchesHandAccounting)
{
    const auto k = sim::parsePtxKernel(kFig4);
    const double threads = 1 << 20;
    const auto d = sim::demandFromLoop(k, threads, "fig4");
    const double warps = threads / 32.0;
    // 4 SP FMAs x 16 trips.
    EXPECT_DOUBLE_EQ(d.warps_sp, warps * 4.0 * 16.0);
    // 1 INT add per trip.
    EXPECT_DOUBLE_EQ(d.warps_int, warps * 16.0);
    // 128 B/warp load + store.
    EXPECT_DOUBLE_EQ(d.bytes_dram_rd, warps * 128.0);
    EXPECT_DOUBLE_EQ(d.bytes_dram_wr, warps * 128.0);
    EXPECT_DOUBLE_EQ(d.bytes_l2_rd, warps * 128.0);
}

TEST(Ptx, ParsedKernelRunsOnBothSimulators)
{
    const auto k = sim::parsePtxKernel(kFig4, 128);
    const auto &dev =
            gpu::DeviceDescriptor::get(gpu::DeviceKind::GtxTitanX);

    // Cycle-level.
    sim::SmCycleSim cyc(dev, {975, 3505}, 48);
    const auto res = cyc.run(k);
    EXPECT_GT(res.util[gpu::componentIndex(gpu::Component::SP)], 0.5);

    // Analytic, via the derived demand.
    const sim::AnalyticPerfModel perf;
    const auto d = sim::demandFromLoop(k, 1 << 20, "fig4");
    const auto prof = perf.execute(dev, d, {975, 3505});
    EXPECT_GT(prof.util[gpu::componentIndex(gpu::Component::SP)],
              0.5);
}

TEST(Ptx, AgreesWithTheHandBuiltSuiteGenerator)
{
    // demandFromLoop over the generated loop of an arithmetic
    // microbenchmark reproduces the generator's own demand for the
    // stressed unit (the hand generator uses slightly different
    // bookkeeping constants for the rest).
    const auto mb = ubench::makeArithmetic(ubench::Family::SP, 64);
    const auto d = sim::demandFromLoop(*mb.loop, ubench::kThreads,
                                       "regen");
    EXPECT_NEAR(d.warps_sp / mb.demand.warps_sp, 1.0, 0.01);
    EXPECT_NEAR(d.bytes_dram_rd / mb.demand.bytes_dram_rd, 1.0, 0.01);
}

TEST(Ptx, MalformedInputIsFatal)
{
    EXPECT_THROW(sim::parsePtxKernel(""), std::runtime_error);
    EXPECT_THROW(sim::parsePtxKernel("bra NOWHERE;"),
                 std::runtime_error);
}

TEST(Ptx, DemandNeedsAWarp)
{
    const auto k = sim::parsePtxKernel(kFig4);
    EXPECT_THROW(sim::demandFromLoop(k, 8, "tiny"), std::logic_error);
}

} // namespace

namespace
{

TEST(Ptx, CommentsAndBlankLinesAreIgnored)
{
    const auto k = sim::parsePtxKernel(R"(
// leading comment

add.f32 %f1, %f0, %f0;   // trailing comment

// another
mul.f32 %f2, %f1, %f1;
)");
    ASSERT_EQ(k.prologue.size(), 2u);
    EXPECT_EQ(k.prologue[0].cls, InstrClass::SP);
    EXPECT_TRUE(k.prologue[1].depends_on_prev);
}

TEST(Ptx, StoreSourcesCountAsReads)
{
    const auto k = sim::parsePtxKernel(R"(
add.f32 %f1, %f0, %f0;
st.global.f32 [%rd0], %f1;
)");
    ASSERT_EQ(k.prologue.size(), 2u);
    // The store reads %f1 produced by the add.
    EXPECT_TRUE(k.prologue[1].depends_on_prev);
}

TEST(Ptx, TripCountFallsBackToOneWithoutBookkeeping)
{
    const auto k = sim::parsePtxKernel(R"(
LOOP:
  add.f32 %f1, %f0, %f0;
  bra LOOP;
)");
    EXPECT_EQ(k.trip_count, 1u);
}

TEST(Ptx, DoublePrecisionMemoryWidth)
{
    const auto k = sim::parsePtxKernel(
            "ld.global.f64 %fd1, [%rd0];\n");
    ASSERT_EQ(k.prologue.size(), 1u);
    EXPECT_DOUBLE_EQ(k.prologue[0].bytes, 256.0); // 32 x 8 B
}

} // namespace
