# Drives `gpupm traces` — the offline, virtually-clocked per-tick
# trace replay. Every tick's measure -> predict -> audit chain must
# assemble into one stored trace, the injected drift fault must
# surface as a retained error trace, and the JSON report must be
# bit-identical across two runs at the same parameters (seeded ids,
# virtual clock, deterministic fields only). Expects CLI and WORK.
file(MAKE_DIRECTORY ${WORK})

set(replay_flags
    --json --ticks=30 --period-ms=50 --rolling-window=16
    --inject-drift=5:15:1.5)

execute_process(COMMAND ${CLI} traces titanx ${replay_flags}
                RESULT_VARIABLE rc OUTPUT_VARIABLE out1
                ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "traces run 1 failed: ${rc}: ${err}")
endif()

# One trace per tick, correlated ids, and the fault retained: the
# report carries per-span parent links and at least one error trace.
foreach(marker
        "\"ticks\":30"
        "\"trace_id\":\""
        "\"parent_span_id\":\""
        "\"root\":\"monitor.tick\""
        "\"error\":true"
        "\"errors_evicted\":0")
    if(NOT out1 MATCHES "${marker}")
        message(FATAL_ERROR "traces report lacks ${marker}: ${out1}")
    endif()
endforeach()

# Determinism: same seed, same virtual clock, same bytes.
execute_process(COMMAND ${CLI} traces titanx ${replay_flags}
                RESULT_VARIABLE rc OUTPUT_VARIABLE out2
                ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "traces run 2 failed: ${rc}: ${err}")
endif()
if(NOT out1 STREQUAL out2)
    message(FATAL_ERROR "traces JSON differs between identical runs")
endif()

# The human-readable mode names roots and nests children.
execute_process(COMMAND ${CLI} traces titanx --ticks=5 --period-ms=50
                RESULT_VARIABLE rc OUTPUT_VARIABLE out
                ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "text traces run failed: ${rc}: ${err}")
endif()
if(NOT out MATCHES "trace [0-9a-f]+" OR NOT out MATCHES "\\(root\\)")
    message(FATAL_ERROR "text traces output malformed: ${out}")
endif()

# Bad device and bad flag values are rejected by name.
execute_process(COMMAND ${CLI} traces notadevice
                RESULT_VARIABLE rc ERROR_VARIABLE err)
if(rc EQUAL 0 OR NOT err MATCHES "notadevice")
    message(FATAL_ERROR "bad device not rejected: ${rc}: ${err}")
endif()
execute_process(COMMAND ${CLI} traces titanx --inject-drift=banana
                RESULT_VARIABLE rc ERROR_VARIABLE err)
if(NOT rc EQUAL 2 OR NOT err MATCHES "--inject-drift")
    message(FATAL_ERROR "bad inject spec not rejected: ${rc}: ${err}")
endif()
