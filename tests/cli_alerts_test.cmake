# Drives `gpupm alerts` — the one-shot, virtually-clocked alert
# evaluation — end to end. The injected accuracy fault must walk the
# drift rule through pending -> firing -> resolved, the JSON report
# must be bit-identical across two runs at the same parameters, and
# the exit code must distinguish "ended firing" (1) from "ended
# clear" (0). Expects CLI and WORK to be defined.
file(MAKE_DIRECTORY ${WORK})

set(demo_flags
    --json --ticks=200 --period-ms=50 --rolling-window=16
    --inject-drift=40:80:1.5 --drift-window=1s --drift-for=250ms
    --drift-cooldown=1s --drift-tolerance=9)

execute_process(COMMAND ${CLI} alerts titanx ${demo_flags}
                RESULT_VARIABLE rc OUTPUT_VARIABLE out1
                ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "alerts run 1 failed: ${rc}: ${err}")
endif()

# The full lifecycle is in the report: the drift rule fired while the
# fault window was active and resolved after it passed.
foreach(marker
        "\"name\":\"accuracy_drift_titanx\""
        "\"kind\":\"drift\""
        "\"envelope_pct\":5.5"
        "\"state\":\"resolved\""
        "\"state\":\"pending\""
        "\"state\":\"firing\"")
    if(NOT out1 MATCHES "${marker}")
        message(FATAL_ERROR "alerts report lacks ${marker}: ${out1}")
    endif()
endforeach()
if(out1 MATCHES "\"firing\":\\[\"")
    message(FATAL_ERROR "rule still firing after recovery: ${out1}")
endif()

# Determinism: same seed, same virtual clock, same bytes.
execute_process(COMMAND ${CLI} alerts titanx ${demo_flags}
                RESULT_VARIABLE rc OUTPUT_VARIABLE out2
                ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "alerts run 2 failed: ${rc}: ${err}")
endif()
if(NOT out1 STREQUAL out2)
    message(FATAL_ERROR "alerts JSON differs between identical runs")
endif()

# Stopping mid-fault must exit 1 with the rule still firing.
execute_process(COMMAND ${CLI} alerts titanx --ticks=70
                        --period-ms=50 --rolling-window=16
                        --inject-drift=40:80:1.5 --drift-window=1s
                        --drift-for=250ms --drift-cooldown=1s
                        --drift-tolerance=9
                RESULT_VARIABLE rc OUTPUT_VARIABLE out
                ERROR_VARIABLE err)
if(NOT rc EQUAL 1)
    message(FATAL_ERROR "firing run should exit 1, got ${rc}: ${err}")
endif()
if(NOT err MATCHES "firing")
    message(FATAL_ERROR "firing run did not say so: ${err}")
endif()

# Bad flag values are rejected by name with exit 2.
execute_process(COMMAND ${CLI} alerts titanx --inject-drift=banana
                RESULT_VARIABLE rc ERROR_VARIABLE err)
if(NOT rc EQUAL 2 OR NOT err MATCHES "--inject-drift")
    message(FATAL_ERROR "bad inject spec not rejected: ${rc}: ${err}")
endif()
execute_process(COMMAND ${CLI} alerts notadevice
                RESULT_VARIABLE rc ERROR_VARIABLE err)
if(rc EQUAL 0 OR NOT err MATCHES "notadevice")
    message(FATAL_ERROR "bad device not rejected: ${rc}: ${err}")
endif()

# Custom --alert rules ride alongside (or replace) the drift rule:
# an absurdly low threshold on the tick counter fires immediately.
execute_process(COMMAND ${CLI} alerts titanx --json --ticks=30
                        --period-ms=50 --no-drift-rule
                        --alert=ticks:threshold:gpupm_monitor_ticks_total:gt:5:1s:0s:10s
                RESULT_VARIABLE rc OUTPUT_VARIABLE out
                ERROR_VARIABLE err)
if(NOT rc EQUAL 1)
    message(FATAL_ERROR "custom rule run should exit 1 (firing), "
                        "got ${rc}: ${err}")
endif()
if(NOT out MATCHES "\"firing\":\\[\"ticks\"\\]")
    message(FATAL_ERROR "custom rule not firing: ${out}")
endif()
if(out MATCHES "accuracy_drift")
    message(FATAL_ERROR "--no-drift-rule left the drift rule in: ${out}")
endif()

# A malformed --alert spec is rejected by name.
execute_process(COMMAND ${CLI} alerts titanx --alert=nonsense
                RESULT_VARIABLE rc ERROR_VARIABLE err)
if(NOT rc EQUAL 2 OR NOT err MATCHES "--alert")
    message(FATAL_ERROR "bad alert spec not rejected: ${rc}: ${err}")
endif()
