/**
 * @file
 * Tests of the work-stealing pool: completion accounting, stealing
 * under a forced imbalance, nested submission from inside a running
 * task (the supervisor's retry path), and the single-thread clamp.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "fleet/pool.hh"

namespace
{

using namespace gpupm;

TEST(WorkStealingPool, ExecutesEverySubmittedTask)
{
    fleet::WorkStealingPool pool(4);
    std::atomic<int> ran{0};
    for (int i = 0; i < 200; ++i)
        pool.submit([&ran] { ran.fetch_add(1); });
    pool.wait();
    EXPECT_EQ(ran.load(), 200);
    EXPECT_EQ(pool.executedCount(), 200);
}

TEST(WorkStealingPool, StealsFromAnOverloadedQueue)
{
    fleet::WorkStealingPool pool(4);
    ASSERT_EQ(pool.threadCount(), 4);
    std::atomic<int> ran{0};
    // Everything lands on worker 0's queue; the other three workers
    // have nothing of their own and must steal to participate.
    for (int i = 0; i < 64; ++i)
        pool.submitTo(0, [&ran] {
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
            ran.fetch_add(1);
        });
    pool.wait();
    EXPECT_EQ(ran.load(), 64);
    EXPECT_GT(pool.stealCount(), 0);
}

TEST(WorkStealingPool, WaitCoversTasksSubmittedByTasks)
{
    // The supervisor's retry path submits follow-up work from inside
    // a running task; wait() must not return between the parent
    // finishing and the child starting.
    fleet::WorkStealingPool pool(2);
    std::atomic<int> ran{0};
    pool.submit([&] {
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
        pool.submit([&] {
            std::this_thread::sleep_for(
                    std::chrono::milliseconds(5));
            pool.submit([&ran] { ran.fetch_add(1); });
            ran.fetch_add(1);
        });
        ran.fetch_add(1);
    });
    pool.wait();
    EXPECT_EQ(ran.load(), 3);
}

TEST(WorkStealingPool, ClampsToAtLeastOneWorker)
{
    fleet::WorkStealingPool pool(0);
    EXPECT_EQ(pool.threadCount(), 1);
    std::atomic<bool> ran{false};
    pool.submit([&ran] { ran.store(true); });
    pool.wait();
    EXPECT_TRUE(ran.load());
}

TEST(WorkStealingPool, WaitWithNoWorkReturnsImmediately)
{
    fleet::WorkStealingPool pool(2);
    pool.wait();
    EXPECT_EQ(pool.executedCount(), 0);
}

} // namespace
