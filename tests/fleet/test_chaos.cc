/**
 * @file
 * Tests of the chaos harness: every injection decision is a pure
 * function of the spec seed and its coordinates, so a chaos run is
 * exactly reproducible and the chaos-gate test can predict which
 * devices the fault-free comparison run must exclude.
 */

#include <gtest/gtest.h>

#include "fleet/chaos.hh"

namespace
{

using namespace gpupm;

TEST(Chaos, DecisionsAreDeterministic)
{
    fleet::ChaosSpec spec;
    spec.seed = 99;
    spec.shard_kill_rate = 0.3;
    spec.shard_stall_rate = 0.3;
    for (int shard = 0; shard < 16; ++shard)
        for (int attempt = 0; attempt < 2; ++attempt) {
            const auto a =
                    fleet::chaosForAttempt(spec, shard, attempt);
            const auto b =
                    fleet::chaosForAttempt(spec, shard, attempt);
            EXPECT_EQ(a.kill, b.kill);
            EXPECT_EQ(a.stall, b.stall);
            // One roll decides both, mutually exclusively.
            EXPECT_FALSE(a.kill && a.stall);
        }
}

TEST(Chaos, ZeroRatesInjectNothing)
{
    fleet::ChaosSpec spec; // all rates default to zero
    EXPECT_FALSE(spec.any());
    for (int shard = 0; shard < 32; ++shard) {
        const auto d = fleet::chaosForAttempt(spec, shard, 0);
        EXPECT_FALSE(d.kill);
        EXPECT_FALSE(d.stall);
        EXPECT_FALSE(fleet::chaosPoisonsDevice(spec, shard));
    }
}

TEST(Chaos, MaxFaultyAttemptsGuaranteesACleanAttempt)
{
    fleet::ChaosSpec spec;
    spec.shard_kill_rate = 1.0;
    spec.shard_stall_rate = 1.0;
    spec.max_faulty_attempts = 2;
    for (int shard = 0; shard < 8; ++shard) {
        // Attempts before the cap are always faulty at rate 1.
        for (int attempt = 0; attempt < 2; ++attempt) {
            const auto d =
                    fleet::chaosForAttempt(spec, shard, attempt);
            EXPECT_TRUE(d.kill || d.stall);
        }
        // At and past the cap chaos backs off entirely.
        for (int attempt = 2; attempt < 5; ++attempt) {
            const auto d =
                    fleet::chaosForAttempt(spec, shard, attempt);
            EXPECT_FALSE(d.kill);
            EXPECT_FALSE(d.stall);
        }
    }
}

TEST(Chaos, PoisonFractionIsRoughlyHonored)
{
    fleet::ChaosSpec spec;
    spec.seed = 7;
    spec.poison_fraction = 0.25;
    int poisoned = 0;
    for (long id = 0; id < 2000; ++id)
        if (fleet::chaosPoisonsDevice(spec, id))
            ++poisoned;
    // 2000 draws at p=0.25: a ±5 sigma band is [403, 597].
    EXPECT_GT(poisoned, 400);
    EXPECT_LT(poisoned, 600);

    spec.poison_fraction = 1.0;
    for (long id = 0; id < 64; ++id)
        EXPECT_TRUE(fleet::chaosPoisonsDevice(spec, id));
}

TEST(Chaos, PoisonFlavorIsDeterministicAndMixed)
{
    fleet::ChaosSpec spec;
    spec.seed = 5;
    int nan = 0, config = 0;
    for (long id = 0; id < 256; ++id) {
        const bool flavor = fleet::chaosPoisonIsNan(spec, id);
        EXPECT_EQ(flavor, fleet::chaosPoisonIsNan(spec, id));
        (flavor ? nan : config)++;
    }
    // Both poison flavors actually occur.
    EXPECT_GT(nan, 0);
    EXPECT_GT(config, 0);
}

} // namespace
