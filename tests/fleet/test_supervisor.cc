/**
 * @file
 * Tests of the fleet supervisor: clean runs, sharding, watchdog +
 * retry recovery from stalled attempts, quarantine past the retry
 * budget with explicit accounting, checkpoint resume, and pool
 * starvation riding along without correctness impact.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <set>
#include <string>

#include "fleet/supervisor.hh"
#include "obs/metrics.hh"

namespace
{

using namespace gpupm;

/** Small-but-real fleet options sized for a unit test. */
fleet::FleetOptions
fastOpts()
{
    fleet::FleetOptions opts;
    opts.devices = 6;
    opts.shards = 3;
    opts.threads = 3;
    opts.seed = 42;
    return opts;
}

class FleetSupervisorTest : public ::testing::Test
{
  protected:
    void SetUp() override { obs::Registry::global().reset(); }
    void TearDown() override { obs::Registry::global().reset(); }
};

TEST_F(FleetSupervisorTest, ShardingIsContiguousAndNearEven)
{
    fleet::FleetOptions opts;
    opts.devices = 7;
    const auto specs = fleet::buildFleetSpecs(opts);
    ASSERT_EQ(specs.size(), 7u);
    const auto shards = fleet::shardDevices(specs, 3);
    ASSERT_EQ(shards.size(), 3u);
    EXPECT_EQ(shards[0].devices.size(), 3u);
    EXPECT_EQ(shards[1].devices.size(), 2u);
    EXPECT_EQ(shards[2].devices.size(), 2u);
    long next = 0;
    for (const auto &shard : shards)
        for (const auto &spec : shard.devices)
            EXPECT_EQ(spec.id, next++);
    // More shards than devices collapses to one device per shard.
    EXPECT_EQ(fleet::shardDevices(specs, 100).size(), 7u);
}

TEST_F(FleetSupervisorTest, SpecsRotateArchitecturesWithUniqueSeeds)
{
    fleet::FleetOptions opts;
    opts.devices = 9;
    const auto specs = fleet::buildFleetSpecs(opts);
    std::set<std::uint64_t> seeds;
    for (long id = 0; id < 9; ++id) {
        EXPECT_EQ(specs[static_cast<std::size_t>(id)].kind,
                  gpu::kAllDevices[static_cast<std::size_t>(id) %
                                   gpu::kAllDevices.size()]);
        seeds.insert(specs[static_cast<std::size_t>(id)].seed);
    }
    EXPECT_EQ(seeds.size(), 9u); // per-instance jitter differs
}

TEST_F(FleetSupervisorTest, CleanFleetTrainsEveryDevice)
{
    const auto result = fleet::runFleetCampaign(fastOpts());
    EXPECT_EQ(result.scoreboard.devices_total, 6);
    EXPECT_EQ(result.scoreboard.devices_ok, 6);
    EXPECT_EQ(result.scoreboard.devices_failed, 0);
    ASSERT_EQ(result.scoreboard.per_arch.size(), 3u);
    for (const auto &agg : result.scoreboard.per_arch) {
        EXPECT_EQ(agg.devices_ok, 2);
        EXPECT_GT(agg.stats.samples, 0);
        EXPECT_GT(agg.stats.mae_pct, 0.0);
        EXPECT_LT(agg.stats.mae_pct, 50.0);
    }
    EXPECT_EQ(result.shard_retries, 0);
    EXPECT_EQ(result.shards_quarantined, 0);
    EXPECT_EQ(result.chaos_kills, 0);
    EXPECT_EQ(result.watchdog_fires, 0);

    // The report JSON carries the supervisor counters.
    const std::string json = result.toJson();
    EXPECT_NE(json.find("\"schema\":\"gpupm_fleet_report_v1\""),
              std::string::npos);
    EXPECT_NE(json.find("\"shards_quarantined\":0"),
              std::string::npos);
}

TEST_F(FleetSupervisorTest, StalledShardsRecoverThroughRetry)
{
    fleet::FleetOptions opts = fastOpts();
    opts.devices = 3;
    opts.shards = 3;
    opts.watchdog_deadline_s = 0.25;
    opts.chaos.shard_stall_rate = 1.0;
    opts.chaos.max_faulty_attempts = 1; // attempt 0 stalls, 1 clean
    const auto result = fleet::runFleetCampaign(opts);

    // Every shard stalled once, was cancelled by the watchdog,
    // retried, and then completed: full accuracy, no quarantine.
    EXPECT_EQ(result.scoreboard.devices_ok, 3);
    EXPECT_EQ(result.chaos_stalls, 3);
    EXPECT_GE(result.watchdog_fires, 3);
    EXPECT_GE(result.shard_retries, 3);
    EXPECT_EQ(result.shards_quarantined, 0);
}

TEST_F(FleetSupervisorTest, QuarantineKeepsExplicitAccounting)
{
    fleet::FleetOptions opts = fastOpts();
    opts.devices = 4;
    opts.shards = 2;
    opts.watchdog_deadline_s = 0.1;
    opts.shard_retry_budget = 1;
    opts.chaos.shard_stall_rate = 1.0;
    opts.chaos.max_faulty_attempts = 100; // never a clean attempt
    const auto result = fleet::runFleetCampaign(opts);

    EXPECT_EQ(result.shards_quarantined, 2);
    EXPECT_EQ(result.scoreboard.devices_ok, 0);
    EXPECT_EQ(result.scoreboard.devices_failed, 4);
    ASSERT_EQ(result.scoreboard.failures.size(), 4u);
    for (const auto &failure : result.scoreboard.failures) {
        EXPECT_EQ(failure.fail,
                  fleet::DeviceFailKind::ShardQuarantined);
        EXPECT_NE(failure.message.find("retry budget exhausted"),
                  std::string::npos);
    }
    ASSERT_EQ(result.scoreboard.failures_by_kind.size(), 1u);
    EXPECT_EQ(result.scoreboard.failures_by_kind[0].first,
              "shard-quarantined");
    EXPECT_EQ(result.scoreboard.failures_by_kind[0].second, 4);

    // Degradation is loud in both renderings.
    EXPECT_NE(result.summary().find("shard-quarantined=4"),
              std::string::npos);
    EXPECT_NE(result.scoreboard.toJson(true).find(
                      "\"devices_failed\":4"),
              std::string::npos);
}

TEST_F(FleetSupervisorTest, CheckpointedFleetResumesWithoutRerun)
{
    const std::string dir =
            (std::filesystem::temp_directory_path() /
             "gpupm_fleet_resume_test")
                    .string();
    std::filesystem::remove_all(dir);

    fleet::FleetOptions opts = fastOpts();
    opts.checkpoint_dir = dir;
    const auto first = fleet::runFleetCampaign(opts);
    EXPECT_EQ(first.shards_resumed, 0);
    EXPECT_EQ(first.scoreboard.devices_ok, 6);

    const auto second = fleet::runFleetCampaign(opts);
    EXPECT_EQ(second.shards_resumed, 3);
    for (const auto &shard : second.shards)
        EXPECT_TRUE(shard.resumed);
    EXPECT_EQ(second.scoreboard.toJson(true),
              first.scoreboard.toJson(true));

    // A reconfigured fleet must not resume stale checkpoints.
    fleet::FleetOptions reseeded = opts;
    reseeded.seed = opts.seed + 1;
    const auto third = fleet::runFleetCampaign(reseeded);
    EXPECT_EQ(third.shards_resumed, 0);
    EXPECT_EQ(third.scoreboard.devices_ok, 6);
    std::filesystem::remove_all(dir);
}

TEST_F(FleetSupervisorTest, StarvedPoolStillCompletesTheFleet)
{
    fleet::FleetOptions opts = fastOpts();
    opts.threads = 4;
    opts.chaos.starve_tasks = 8;
    opts.chaos.starve_ms = 20;
    const auto clean = fleet::runFleetCampaign(fastOpts());
    const auto starved = fleet::runFleetCampaign(opts);
    EXPECT_EQ(starved.scoreboard.devices_ok, 6);
    // Starvation changes scheduling, never accuracy.
    EXPECT_EQ(starved.scoreboard.toJson(false),
              clean.scoreboard.toJson(false));
}

} // namespace
