/**
 * @file
 * The chaos gate (acceptance criterion of the fleet tentpole): a
 * 200-device fleet campaign runs under shard kills that tear
 * checkpoints mid-write plus poisoned device instances, completes
 * with every failure explicitly accounted, and its merged accuracy
 * scoreboard is BIT-IDENTICAL to a fault-free run restricted to the
 * surviving devices — graceful degradation with zero silent skew.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <set>
#include <string>
#include <vector>

#include "fleet/supervisor.hh"
#include "obs/metrics.hh"

namespace
{

using namespace gpupm;

class ChaosGateTest : public ::testing::Test
{
  protected:
    void SetUp() override { obs::Registry::global().reset(); }
    void TearDown() override { obs::Registry::global().reset(); }
};

TEST_F(ChaosGateTest, TwoHundredDeviceFleetSurvivesChaosBitForBit)
{
    const std::string dir =
            (std::filesystem::temp_directory_path() /
             "gpupm_chaos_gate_test")
                    .string();
    std::filesystem::remove_all(dir);

    fleet::FleetOptions chaos_opts;
    chaos_opts.devices = 200;
    chaos_opts.shards = 24;
    chaos_opts.seed = 42;
    chaos_opts.checkpoint_dir = dir; // kills tear real files here
    chaos_opts.chaos.seed = 2026;
    chaos_opts.chaos.shard_kill_rate = 0.35;
    chaos_opts.chaos.poison_fraction = 0.08;
    const auto chaos_run = fleet::runFleetCampaign(chaos_opts);

    // The injection actually happened at meaningful volume: >=10%
    // of shards killed mid-checkpoint, and poisoned devices exist.
    EXPECT_GE(chaos_run.chaos_kills,
              static_cast<long>(chaos_opts.shards) / 10 + 1);
    EXPECT_GE(chaos_run.shard_retries, chaos_run.chaos_kills);
    EXPECT_GT(chaos_run.scoreboard.devices_failed, 0);
    EXPECT_EQ(chaos_run.shards_quarantined, 0)
            << "kills are bounded by max_faulty_attempts and must "
               "recover within the retry budget";

    // Explicit accounting: the failed devices are exactly the
    // poisoned ones, each with the failure kind its poison flavor
    // implies; nothing else was lost and nothing vanished silently.
    const auto specs = fleet::buildFleetSpecs(chaos_opts);
    std::set<long> poisoned;
    for (const auto &spec : specs)
        if (spec.poison_nan || spec.poison_config)
            poisoned.insert(spec.id);
    ASSERT_GT(poisoned.size(), 0u);
    ASSERT_EQ(chaos_run.scoreboard.failures.size(),
              poisoned.size());
    for (const auto &failure : chaos_run.scoreboard.failures) {
        EXPECT_TRUE(poisoned.count(failure.id))
                << "device " << failure.id
                << " failed without being poisoned";
        const auto &spec =
                specs[static_cast<std::size_t>(failure.id)];
        EXPECT_EQ(failure.fail,
                  spec.poison_nan
                          ? fleet::DeviceFailKind::CorruptData
                          : fleet::DeviceFailKind::MeasureFailed);
    }
    EXPECT_EQ(chaos_run.scoreboard.devices_ok +
                      chaos_run.scoreboard.devices_failed,
              200);

    // Fault-free reference run over exactly the surviving devices:
    // different sharding, no chaos, no checkpoints — the merged
    // accuracy payload must still match bit for bit.
    std::vector<fleet::DeviceSpec> survivors;
    for (const auto &spec : specs)
        if (!poisoned.count(spec.id))
            survivors.push_back(spec);
    ASSERT_EQ(static_cast<long>(survivors.size()),
              chaos_run.scoreboard.devices_ok);

    fleet::FleetOptions clean_opts = chaos_opts;
    clean_opts.chaos = fleet::ChaosSpec{};
    clean_opts.checkpoint_dir.clear();
    clean_opts.shards = 7; // sharding must not matter either
    const auto clean_run =
            fleet::runFleetCampaign(clean_opts, survivors);
    EXPECT_EQ(clean_run.scoreboard.devices_failed, 0);
    EXPECT_EQ(chaos_run.scoreboard.toJson(false),
              clean_run.scoreboard.toJson(false));
    std::filesystem::remove_all(dir);
}

} // namespace
