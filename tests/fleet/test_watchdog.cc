/**
 * @file
 * Tests of the deadline watchdog: a blown deadline cancels the token
 * and counts as a fire; a disarm in time leaves the token clear.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "fleet/watchdog.hh"

namespace
{

using namespace gpupm;

TEST(Watchdog, FiresPastTheDeadline)
{
    fleet::Watchdog wd;
    const fleet::CancelToken token = fleet::makeCancelToken();
    const long id = wd.arm(0.02, token);

    // Poll with a generous bound; the scanner wakes at the deadline.
    const auto give_up = std::chrono::steady_clock::now() +
                         std::chrono::seconds(5);
    while (!fleet::cancelled(token) &&
           std::chrono::steady_clock::now() < give_up)
        std::this_thread::sleep_for(std::chrono::milliseconds(1));

    EXPECT_TRUE(fleet::cancelled(token));
    EXPECT_EQ(wd.firedCount(), 1);
    // Already fired: disarm reports it was too late.
    EXPECT_FALSE(wd.disarm(id));
}

TEST(Watchdog, DisarmInTimeKeepsTheTokenClear)
{
    fleet::Watchdog wd;
    const fleet::CancelToken token = fleet::makeCancelToken();
    const long id = wd.arm(30.0, token);
    EXPECT_TRUE(wd.disarm(id));
    EXPECT_FALSE(fleet::cancelled(token));
    EXPECT_EQ(wd.firedCount(), 0);
    // Unknown handles are reported, not fatal.
    EXPECT_FALSE(wd.disarm(id));
    EXPECT_FALSE(wd.disarm(123456));
}

TEST(Watchdog, TracksManyTokensIndependently)
{
    fleet::Watchdog wd;
    const fleet::CancelToken fast = fleet::makeCancelToken();
    const fleet::CancelToken slow = fleet::makeCancelToken();
    wd.arm(0.02, fast);
    const long slow_id = wd.arm(30.0, slow);

    const auto give_up = std::chrono::steady_clock::now() +
                         std::chrono::seconds(5);
    while (!fleet::cancelled(fast) &&
           std::chrono::steady_clock::now() < give_up)
        std::this_thread::sleep_for(std::chrono::milliseconds(1));

    EXPECT_TRUE(fleet::cancelled(fast));
    EXPECT_FALSE(fleet::cancelled(slow));
    EXPECT_TRUE(wd.disarm(slow_id));
    EXPECT_EQ(wd.firedCount(), 1);
}

} // namespace
