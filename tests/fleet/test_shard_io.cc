/**
 * @file
 * Tests of crash-safe shard persistence: round trip through the v2
 * fleetshard envelope, fingerprint rejection of stale checkpoints,
 * and the torn-write sweep — a checkpoint truncated at *every* byte
 * boundary must come back as a typed error (or, only when whole, the
 * original result), never abort.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>

#include "fleet/shard_io.hh"

namespace
{

using namespace gpupm;

fleet::FleetOptions
testOpts()
{
    fleet::FleetOptions opts;
    opts.devices = 4;
    opts.shards = 2;
    opts.seed = 1234;
    return opts;
}

fleet::ShardSpec
testShard(const fleet::FleetOptions &opts)
{
    fleet::ShardSpec shard;
    shard.index = 1;
    for (long id = 2; id < opts.devices; ++id) {
        fleet::DeviceSpec spec;
        spec.id = id;
        spec.kind = gpu::kAllDevices[static_cast<std::size_t>(id) %
                                     gpu::kAllDevices.size()];
        spec.seed = 1000u + static_cast<std::uint64_t>(id);
        shard.devices.push_back(spec);
    }
    return shard;
}

/** A shard result with one healthy and one failed device. */
fleet::ShardResult
testResult()
{
    fleet::ShardResult result;
    result.index = 1;
    result.attempts = 2;

    fleet::DeviceOutcome ok;
    ok.id = 2;
    ok.kind = gpu::kAllDevices[2 % gpu::kAllDevices.size()];
    ok.ok = true;
    ok.stats.samples = 6;
    ok.stats.mae_pct = 7.25;
    ok.stats.rmse_w = 11.5;
    ok.stats.max_err_pct = 19.75;
    ok.stats.mean_measured_w = 145.125;
    ok.fit_rmse_w = 3.5;
    ok.fit_iterations = 12;
    result.outcomes.push_back(ok);

    fleet::DeviceOutcome bad;
    bad.id = 3;
    bad.kind = gpu::kAllDevices[0];
    bad.ok = false;
    bad.fail = fleet::DeviceFailKind::CorruptData;
    bad.message = "campaign produced non-finite samples";
    result.outcomes.push_back(bad);
    return result;
}

TEST(ShardIo, RoundTripPreservesEveryField)
{
    const auto opts = testOpts();
    const auto shard = testShard(opts);
    const auto result = testResult();

    const std::string text =
            fleet::serializeShardResult(result, opts, shard);
    auto parsed = fleet::tryParseShardResult(text, opts, shard);
    ASSERT_TRUE(parsed.ok())
            << model::ioErrcName(parsed.error().code) << ": "
            << parsed.error().message;

    const fleet::ShardResult &rt = parsed.value();
    EXPECT_EQ(rt.index, result.index);
    EXPECT_EQ(rt.attempts, result.attempts);
    EXPECT_TRUE(rt.resumed); // loaded, not re-run
    ASSERT_EQ(rt.outcomes.size(), result.outcomes.size());
    for (std::size_t i = 0; i < rt.outcomes.size(); ++i) {
        fleet::DeviceOutcome expect = result.outcomes[i];
        EXPECT_EQ(rt.outcomes[i], expect)
                << "outcome " << i << " changed across the round "
                << "trip";
    }
}

TEST(ShardIo, FingerprintRejectsAForeignConfiguration)
{
    const auto opts = testOpts();
    const auto shard = testShard(opts);
    const std::string text =
            fleet::serializeShardResult(testResult(), opts, shard);

    // Any knob that shapes device outcomes invalidates the file.
    fleet::FleetOptions other = opts;
    other.seed = opts.seed + 1;
    auto stale = fleet::tryParseShardResult(text, other, shard);
    ASSERT_FALSE(stale.ok());
    EXPECT_EQ(stale.error().code, model::IoErrc::ValidationError);

    other = opts;
    other.jitter_frac = 0.25;
    EXPECT_EQ(fleet::tryParseShardResult(text, other, shard)
                      .error()
                      .code,
              model::IoErrc::ValidationError);

    // A different device membership is a different shard.
    fleet::ShardSpec moved = shard;
    moved.devices[0].seed ^= 1;
    EXPECT_EQ(fleet::tryParseShardResult(text, opts, moved)
                      .error()
                      .code,
              model::IoErrc::ValidationError);
}

TEST(ShardIo, TruncationAtEveryByteIsATypedError)
{
    const auto opts = testOpts();
    const auto shard = testShard(opts);
    const std::string full =
            fleet::serializeShardResult(testResult(), opts, shard);
    ASSERT_GT(full.size(), 100u);

    for (std::size_t cut = 0; cut < full.size(); ++cut) {
        auto torn = fleet::tryParseShardResult(full.substr(0, cut),
                                               opts, shard);
        ASSERT_FALSE(torn.ok()) << "prefix of " << cut
                                << " bytes parsed as complete";
        const model::IoErrc code = torn.error().code;
        EXPECT_TRUE(code == model::IoErrc::ParseError ||
                    code == model::IoErrc::ChecksumMismatch ||
                    code == model::IoErrc::VersionMismatch ||
                    code == model::IoErrc::ValidationError)
                << "cut=" << cut << " gave "
                << model::ioErrcName(code);
    }
}

TEST(ShardIo, CorruptedPayloadByteIsDetected)
{
    const auto opts = testOpts();
    const auto shard = testShard(opts);
    std::string text =
            fleet::serializeShardResult(testResult(), opts, shard);
    text[text.size() / 2] ^= 0x20;
    auto corrupt = fleet::tryParseShardResult(text, opts, shard);
    ASSERT_FALSE(corrupt.ok());
    EXPECT_EQ(corrupt.error().code,
              model::IoErrc::ChecksumMismatch);
}

TEST(ShardIo, SaveAndLoadThroughAFile)
{
    const auto opts = testOpts();
    const auto shard = testShard(opts);
    const auto result = testResult();
    const std::string dir =
            (std::filesystem::temp_directory_path() /
             "gpupm_shard_io_test")
                    .string();
    std::filesystem::create_directories(dir);
    const std::string path =
            fleet::shardCheckpointPath(dir, shard.index);

    ASSERT_TRUE(fleet::trySaveShardResult(result, opts, shard, path)
                        .ok());
    auto loaded = fleet::tryLoadShardResult(path, opts, shard);
    ASSERT_TRUE(loaded.ok());
    EXPECT_EQ(loaded.value().outcomes, result.outcomes);

    // A missing file is a typed IoError, not a crash.
    auto missing = fleet::tryLoadShardResult(dir + "/shard-99.ck",
                                             opts, shard);
    ASSERT_FALSE(missing.ok());
    EXPECT_EQ(missing.error().code, model::IoErrc::IoError);
    std::filesystem::remove_all(dir);
}

} // namespace
