/**
 * @file
 * The tracing chaos gate: a 200-device fleet campaign under shard
 * kills and poisoned devices runs with the tracer feeding a bounded
 * TraceStore while a concurrent monitor-style thread mints fresh
 * per-tick root traces.  Afterwards every stored trace must be fully
 * assembled (exactly one root, every parent resolving inside its own
 * trace), span ids must be globally unique across threads, the store
 * must sit within its byte bound, and — the tail-sampling contract —
 * not a single error trace may have been evicted.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <set>
#include <string>
#include <thread>

#include "fleet/supervisor.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "obs/trace_store.hh"

namespace
{

using namespace gpupm;

class ChaosTraceTest : public ::testing::Test
{
  protected:
    void SetUp() override { obs::Registry::global().reset(); }
    void TearDown() override
    {
        auto &tracer = obs::Tracer::global();
        tracer.disable();
        tracer.attachStore(nullptr);
        tracer.setRetainEvents(true);
        tracer.clear();
        obs::Registry::global().reset();
    }
};

TEST_F(ChaosTraceTest, ChaosCampaignAssemblesBoundedCorrelatedTraces)
{
    const std::string dir =
            (std::filesystem::temp_directory_path() /
             "gpupm_chaos_trace_test")
                    .string();
    std::filesystem::remove_all(dir);

    // A fleet campaign is one giant request (~350 spans per device),
    // so the store is sized the way cmdFleet sizes its own.
    obs::TraceStoreOptions sopts;
    sopts.max_bytes = 64u << 20;
    sopts.max_traces = 4096;
    obs::TraceStore store(sopts);

    auto &tracer = obs::Tracer::global();
    tracer.seedIds(42);
    tracer.attachStore(&store);
    tracer.setRetainEvents(false); // store-only: bounded memory
    tracer.enable();

    // Monitor-style ticker racing the campaign: each tick adopts an
    // empty context so it roots a fresh trace, exactly like the
    // sampler loop; every tenth tick is an error tick.
    constexpr int kTicks = 400;
    constexpr int kErrorEvery = 10;
    std::thread ticker([] {
        for (int t = 0; t < kTicks; ++t) {
            obs::TraceContextScope fresh{obs::TraceContext{}};
            GPUPM_TRACE_SPAN_NAMED(tick, "monitor", "monitor.tick");
            tick.arg("tick", std::to_string(t));
            {
                GPUPM_TRACE_SPAN("monitor", "monitor.probe");
            }
            if (t % kErrorEvery == 0)
                tick.markError();
            std::this_thread::sleep_for(
                    std::chrono::milliseconds(1));
        }
    });

    fleet::FleetOptions opts;
    opts.devices = 200;
    opts.shards = 24;
    opts.seed = 42;
    opts.checkpoint_dir = dir;
    opts.chaos.seed = 2026;
    opts.chaos.shard_kill_rate = 0.35;
    opts.chaos.poison_fraction = 0.08;
    const auto run = fleet::runFleetCampaign(opts);
    ticker.join();

    tracer.disable();
    ASSERT_GT(run.chaos_kills, 0) << "chaos must actually fire";

    // The tail-sampling contract under real chaos: zero error traces
    // lost, memory within the hard bound at all times (the store
    // enforces it on every offer; this checks the final state).
    EXPECT_EQ(store.errorsEvictedTotal(), 0L);
    EXPECT_LE(store.memoryBytes(), store.memoryBoundBytes());
    EXPECT_GE(store.offeredTotal(),
              static_cast<long>(kTicks) + 1L);

    // Every stored trace is fully assembled and ids are globally
    // unique across the pool workers and the ticker thread.
    obs::TraceQuery all;
    all.limit = sopts.max_traces;
    const auto traces = store.query(all);
    ASSERT_GT(traces.size(), 0u);
    std::set<unsigned long long> all_span_ids;
    for (const auto &t : traces) {
        std::set<unsigned long long> in_trace;
        std::size_t roots = 0;
        for (const auto &s : t.spans) {
            EXPECT_NE(s.span_id, 0ull);
            EXPECT_TRUE(all_span_ids.insert(s.span_id).second)
                    << "duplicate span id across traces";
            in_trace.insert(s.span_id);
            if (s.parent_span_id == 0) {
                ++roots;
                EXPECT_EQ(s.span_id, t.trace_id)
                        << "root span id must equal the trace id";
            }
        }
        EXPECT_EQ(roots, 1u) << "trace " << obs::traceIdHex(
                t.trace_id) << " must have exactly one root";
        for (const auto &s : t.spans) {
            if (s.parent_span_id != 0) {
                EXPECT_TRUE(in_trace.count(s.parent_span_id))
                        << "orphan parent in trace "
                        << obs::traceIdHex(t.trace_id);
            }
        }
    }

    // The campaign assembled into one fleet trace carrying the shard
    // attempts (chaos failures mark it as an error trace, which is
    // why it must survive the ticker churn).
    obs::TraceQuery fq;
    fq.category = "fleet";
    const auto fleet_traces = store.query(fq);
    ASSERT_EQ(fleet_traces.size(), 1u);
    const auto &campaign = fleet_traces[0];
    EXPECT_EQ(campaign.root_name, "fleet.campaign");
    EXPECT_TRUE(campaign.error)
            << "chaos shard failures must flag the campaign trace";
    EXPECT_GT(campaign.spans.size(),
              static_cast<std::size_t>(opts.devices));
    std::size_t shard_spans = 0;
    std::size_t error_spans = 0;
    for (const auto &s : campaign.spans) {
        if (s.name == "fleet.shard")
            ++shard_spans;
        if (s.error)
            ++error_spans;
    }
    EXPECT_GE(shard_spans, static_cast<std::size_t>(opts.shards));
    EXPECT_GE(error_spans,
              static_cast<std::size_t>(run.chaos_kills));

    // Every error tick the ticker minted is still queryable: 100%
    // error retention, demonstrated positively.
    obs::TraceQuery eq;
    eq.category = "monitor";
    eq.error_only = true;
    eq.limit = sopts.max_traces;
    EXPECT_EQ(store.query(eq).size(),
              static_cast<std::size_t>(kTicks / kErrorEvery));

    tracer.attachStore(nullptr);
    std::filesystem::remove_all(dir);
}

} // namespace
