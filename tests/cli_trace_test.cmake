# Drives the observability surface of the gpupm CLI end to end:
# `fit <device>` runs the bundled synthetic resilient campaign
# in-process and fits from it, with --trace-out / --metrics-out /
# --convergence-out requested; every artifact is then validated by
# gpupm_trace_check. Expects CLI, CHECK and WORK to be defined.
file(MAKE_DIRECTORY ${WORK})

execute_process(COMMAND ${CLI} fit titanx ${WORK}/obs.model
                        --trace-out=${WORK}/obs.trace.json
                        --metrics-out=${WORK}/obs.metrics.prom
                        --convergence-out=${WORK}/obs.convergence.csv
                RESULT_VARIABLE rc ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "traced fit failed: ${rc}: ${err}")
endif()
if(NOT err MATCHES "bundled synthetic campaign")
    message(FATAL_ERROR "expected the synthetic-campaign path: ${err}")
endif()

# The trace must be structurally valid Chrome trace-event JSON and
# cover the whole pipeline: campaign, backend, sim, estimator, io and
# the CLI root span.
execute_process(COMMAND ${CHECK} trace ${WORK}/obs.trace.json
                        campaign backend sim estimator io cli
                RESULT_VARIABLE rc OUTPUT_VARIABLE out
                ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "trace validation failed: ${rc}: ${err}")
endif()

# The per-category summary renders a timing table for every category.
execute_process(COMMAND ${CHECK} summary ${WORK}/obs.trace.json
                RESULT_VARIABLE rc OUTPUT_VARIABLE out)
if(NOT rc EQUAL 0 OR NOT out MATCHES "wall-clock")
    message(FATAL_ERROR "trace summary unexpected: ${rc}: ${out}")
endif()

# The metrics dump is valid Prometheus text and carries both the
# estimator telemetry and the resilient-backend counters (present
# even when zero, thanks to pre-registration).
execute_process(COMMAND ${CHECK} metrics ${WORK}/obs.metrics.prom
                        gpupm_estimator_iterations_total
                        gpupm_estimator_fits_total
                        gpupm_resilient_retries_total
                        gpupm_resilient_attempts_total
                        gpupm_campaign_cells_done_total
                        gpupm_sim_kernel_executions_total
                        gpupm_io_saves_total
                RESULT_VARIABLE rc ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "metrics validation failed: ${rc}: ${err}")
endif()

# The convergence CSV has the expected header, gap-free iteration
# numbering and non-increasing SSE.
execute_process(COMMAND ${CHECK} convergence ${WORK}/obs.convergence.csv
                RESULT_VARIABLE rc ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "convergence validation failed: ${rc}: ${err}")
endif()

# `gpupm metrics` dumps the full pre-registered catalog from a cold
# process, in both exposition formats.
execute_process(COMMAND ${CLI} metrics
                RESULT_VARIABLE rc OUTPUT_VARIABLE out)
if(NOT rc EQUAL 0 OR NOT out MATCHES "gpupm_resilient_retries_total 0")
    message(FATAL_ERROR "gpupm metrics unexpected: ${rc}: ${out}")
endif()
execute_process(COMMAND ${CLI} metrics --json
                RESULT_VARIABLE rc OUTPUT_VARIABLE out)
if(NOT rc EQUAL 0 OR NOT out MATCHES "\"gpupm_estimator_fits_total\"")
    message(FATAL_ERROR "gpupm metrics --json unexpected: ${rc}")
endif()

# A plain (untraced) run must not write artifacts or slow down: the
# tracer stays disabled and the files are absent.
execute_process(COMMAND ${CLI} info ${WORK}/obs.model
                RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "info on traced-fit model failed: ${rc}")
endif()
if(EXISTS ${WORK}/untraced.trace.json)
    message(FATAL_ERROR "unexpected trace artifact")
endif()
