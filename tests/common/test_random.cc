/**
 * @file
 * Unit and statistical tests of the deterministic PRNG.
 */

#include <gtest/gtest.h>

#include "common/random.hh"
#include "common/stats.hh"

namespace
{

using gpupm::Rng;

TEST(Random, SameSeedSameSequence)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Random, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 2);
}

TEST(Random, UniformInUnitInterval)
{
    Rng r(7);
    for (int i = 0; i < 10000; ++i) {
        const double x = r.uniform();
        EXPECT_GE(x, 0.0);
        EXPECT_LT(x, 1.0);
    }
}

TEST(Random, UniformRangeRespectsBounds)
{
    Rng r(8);
    for (int i = 0; i < 10000; ++i) {
        const double x = r.uniform(-3.0, 5.0);
        EXPECT_GE(x, -3.0);
        EXPECT_LT(x, 5.0);
    }
}

TEST(Random, UniformMeanIsCentered)
{
    Rng r(9);
    gpupm::stats::Accumulator acc;
    for (int i = 0; i < 100000; ++i)
        acc.add(r.uniform());
    EXPECT_NEAR(acc.mean(), 0.5, 0.01);
}

TEST(Random, NormalMomentsMatch)
{
    Rng r(10);
    gpupm::stats::Accumulator acc;
    for (int i = 0; i < 200000; ++i)
        acc.add(r.normal());
    EXPECT_NEAR(acc.mean(), 0.0, 0.02);
    EXPECT_NEAR(acc.stddev(), 1.0, 0.02);
}

TEST(Random, NormalWithParamsScalesAndShifts)
{
    Rng r(11);
    gpupm::stats::Accumulator acc;
    for (int i = 0; i < 100000; ++i)
        acc.add(r.normal(10.0, 2.0));
    EXPECT_NEAR(acc.mean(), 10.0, 0.1);
    EXPECT_NEAR(acc.stddev(), 2.0, 0.05);
}

TEST(Random, BelowStaysInRange)
{
    Rng r(12);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(r.below(17), 17u);
}

TEST(Random, SplitStreamsAreIndependent)
{
    Rng parent(99);
    Rng a = parent.split(1);
    Rng b = parent.split(2);
    // Correlation between the two derived streams should be near zero.
    std::vector<double> xs, ys;
    for (int i = 0; i < 20000; ++i) {
        xs.push_back(a.uniform());
        ys.push_back(b.uniform());
    }
    EXPECT_LT(std::abs(gpupm::stats::pearson(xs, ys)), 0.03);
}

TEST(Random, SplitIsDeterministic)
{
    Rng p1(5), p2(5);
    Rng a = p1.split(3);
    Rng b = p2.split(3);
    for (int i = 0; i < 32; ++i)
        EXPECT_EQ(a.next(), b.next());
}

} // namespace
