/**
 * @file
 * Tests of locale-independent numeric text I/O: bit-exact double
 * round-trips, whole-token parsing, and immunity to a hostile global
 * locale (comma decimal separator).
 */

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <locale>

#include "common/numio.hh"

namespace
{

using namespace gpupm;

TEST(Numio, DoublesRoundTripBitExactly)
{
    const double cases[] = {0.0,
                            -0.0,
                            1.0,
                            1.0 / 3.0,
                            -2.5e-7,
                            1e300,
                            1e-300,
                            0.1,
                            57.0 / 7.0,
                            std::numeric_limits<double>::min(),
                            std::numeric_limits<double>::denorm_min(),
                            std::numeric_limits<double>::max(),
                            0.7071067811865476};
    for (const double x : cases) {
        double back = 0.0;
        ASSERT_TRUE(numio::parseDouble(numio::formatDouble(x), back))
                << numio::formatDouble(x);
        // Bit-exact, including the sign of -0.0.
        EXPECT_EQ(std::signbit(back), std::signbit(x));
        EXPECT_EQ(back, x) << numio::formatDouble(x);
    }
}

TEST(Numio, ParseConsumesWholeTokenOnly)
{
    double d = 0.0;
    EXPECT_TRUE(numio::parseDouble("1.5e3", d));
    EXPECT_DOUBLE_EQ(d, 1500.0);
    EXPECT_FALSE(numio::parseDouble("1.5x", d));
    EXPECT_FALSE(numio::parseDouble("", d));
    EXPECT_FALSE(numio::parseDouble("  1.5", d));
    EXPECT_FALSE(numio::parseDouble("1e999", d)); // out of range

    long l = 0;
    EXPECT_TRUE(numio::parseLong("-42", l));
    EXPECT_EQ(l, -42);
    EXPECT_FALSE(numio::parseLong("42.0", l));
    EXPECT_FALSE(numio::parseLong("", l));

    std::uint64_t u = 0;
    EXPECT_TRUE(numio::parseU64("18446744073709551615", u));
    EXPECT_EQ(u, std::numeric_limits<std::uint64_t>::max());
    EXPECT_FALSE(numio::parseU64("-1", u));
}

TEST(Numio, NonFiniteTokensAreSurfacedNotHidden)
{
    // The contract: "nan"/"inf" parse, and the caller judges them
    // (the file parsers reject them; validation reports them).
    double d = 0.0;
    EXPECT_TRUE(numio::parseDouble("nan", d));
    EXPECT_TRUE(std::isnan(d));
    EXPECT_TRUE(numio::parseDouble("inf", d));
    EXPECT_TRUE(std::isinf(d));
}

TEST(Numio, ImmuneToCommaDecimalLocale)
{
    // Install a global locale whose decimal point is ',' — the classic
    // way strtod/iostream-based serializers corrupt model files.
    struct CommaNumpunct : std::numpunct<char>
    {
        char do_decimal_point() const override { return ','; }
        char do_thousands_sep() const override { return '.'; }
        std::string do_grouping() const override { return "\3"; }
    };
    const std::locale old =
            std::locale::global(std::locale(
                    std::locale::classic(), new CommaNumpunct));

    const double x = 1234.5678;
    const std::string text = numio::formatDouble(x);
    EXPECT_NE(text.find('.'), std::string::npos) << text;
    EXPECT_EQ(text.find(','), std::string::npos) << text;
    double back = 0.0;
    EXPECT_TRUE(numio::parseDouble(text, back));
    EXPECT_EQ(back, x);
    // ','-formatted input from a locale-dependent writer is rejected
    // outright rather than silently misread as 1234.0.
    EXPECT_FALSE(numio::parseDouble("1234,5678", back));
    EXPECT_EQ(numio::formatLong(1234567), "1234567"); // no grouping

    std::locale::global(old);
}

} // namespace
