/**
 * @file
 * Unit tests of the ASCII table / CSV emitter.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "common/table.hh"

namespace
{

using gpupm::TextTable;

TEST(Table, PrintsAlignedColumns)
{
    TextTable t({"name", "value"});
    t.addRow({"a", "1"});
    t.addRow({"long-name", "22"});
    std::ostringstream os;
    t.print(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("| name"), std::string::npos);
    EXPECT_NE(out.find("| long-name"), std::string::npos);
    // All rendered lines between rules have equal width.
    std::istringstream is(out);
    std::string line;
    std::size_t width = 0;
    while (std::getline(is, line)) {
        if (width == 0)
            width = line.size();
        EXPECT_EQ(line.size(), width) << "ragged line: " << line;
    }
}

TEST(Table, TitlePrintedWhenSet)
{
    TextTable t({"c"});
    t.setTitle("My Table");
    t.addRow({"x"});
    std::ostringstream os;
    t.print(os);
    EXPECT_EQ(os.str().rfind("My Table", 0), 0u);
}

TEST(Table, RowArityMismatchPanics)
{
    TextTable t({"a", "b"});
    EXPECT_THROW(t.addRow({"only-one"}), std::logic_error);
}

TEST(Table, EmptyHeaderPanics)
{
    EXPECT_THROW(TextTable({}), std::logic_error);
}

TEST(Table, NumFormatsPrecision)
{
    EXPECT_EQ(TextTable::num(3.14159, 2), "3.14");
    EXPECT_EQ(TextTable::num(2.0, 0), "2");
    EXPECT_EQ(TextTable::num(-1.5, 1), "-1.5");
}

TEST(Table, CsvBasic)
{
    TextTable t({"a", "b"});
    t.addRow({"1", "2"});
    std::ostringstream os;
    t.printCsv(os);
    EXPECT_EQ(os.str(), "a,b\n1,2\n");
}

TEST(Table, CsvQuotesSpecialCharacters)
{
    TextTable t({"a"});
    t.addRow({"x,y"});
    t.addRow({"he said \"hi\""});
    std::ostringstream os;
    t.printCsv(os);
    EXPECT_NE(os.str().find("\"x,y\""), std::string::npos);
    EXPECT_NE(os.str().find("\"he said \"\"hi\"\"\""),
              std::string::npos);
}

TEST(Table, RowsCount)
{
    TextTable t({"a"});
    EXPECT_EQ(t.rows(), 0u);
    t.addRow({"1"});
    t.addRow({"2"});
    EXPECT_EQ(t.rows(), 2u);
}

} // namespace
