/**
 * @file
 * Unit tests of the summary-statistics helpers.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "common/stats.hh"

namespace
{

using namespace gpupm::stats;

const std::vector<double> kSample = {3.0, 1.0, 4.0, 1.0, 5.0};

TEST(Stats, MeanBasic)
{
    EXPECT_DOUBLE_EQ(mean(kSample), 14.0 / 5.0);
}

TEST(Stats, MeanEmptyIsZero)
{
    EXPECT_DOUBLE_EQ(mean({}), 0.0);
}

TEST(Stats, MedianOdd)
{
    EXPECT_DOUBLE_EQ(median(kSample), 3.0);
}

TEST(Stats, MedianEvenAveragesMiddle)
{
    const std::vector<double> v = {1.0, 2.0, 3.0, 10.0};
    EXPECT_DOUBLE_EQ(median(v), 2.5);
}

TEST(Stats, StddevKnownValue)
{
    const std::vector<double> v = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0,
                                   9.0};
    EXPECT_NEAR(stddev(v), 2.0, 1e-12);
}

TEST(Stats, StddevSingleIsZero)
{
    EXPECT_DOUBLE_EQ(stddev(std::vector<double>{5.0}), 0.0);
}

TEST(Stats, MinMax)
{
    EXPECT_DOUBLE_EQ(minimum(kSample), 1.0);
    EXPECT_DOUBLE_EQ(maximum(kSample), 5.0);
    EXPECT_DOUBLE_EQ(minimum({}), 0.0);
    EXPECT_DOUBLE_EQ(maximum({}), 0.0);
}

TEST(Stats, PercentileEndpointsAndMiddle)
{
    const std::vector<double> v = {10.0, 20.0, 30.0, 40.0, 50.0};
    EXPECT_DOUBLE_EQ(percentile(v, 0.0), 10.0);
    EXPECT_DOUBLE_EQ(percentile(v, 100.0), 50.0);
    EXPECT_DOUBLE_EQ(percentile(v, 50.0), 30.0);
    EXPECT_DOUBLE_EQ(percentile(v, 25.0), 20.0);
}

TEST(Stats, PercentileInterpolates)
{
    const std::vector<double> v = {0.0, 10.0};
    EXPECT_DOUBLE_EQ(percentile(v, 30.0), 3.0);
}

TEST(Stats, PercentileOutOfRangePanics)
{
    EXPECT_THROW(percentile(kSample, 101.0), std::logic_error);
}

TEST(Stats, MapeKnownValue)
{
    const std::vector<double> pred = {110.0, 90.0};
    const std::vector<double> meas = {100.0, 100.0};
    EXPECT_NEAR(meanAbsPercentError(pred, meas), 10.0, 1e-12);
}

TEST(Stats, MapeSkipsZeroMeasurements)
{
    const std::vector<double> pred = {110.0, 50.0};
    const std::vector<double> meas = {100.0, 0.0};
    EXPECT_NEAR(meanAbsPercentError(pred, meas), 10.0, 1e-12);
}

TEST(Stats, MapeSizeMismatchPanics)
{
    const std::vector<double> a = {1.0};
    const std::vector<double> b = {1.0, 2.0};
    EXPECT_THROW(meanAbsPercentError(a, b), std::logic_error);
}

TEST(Stats, SignedErrorKeepsSign)
{
    const std::vector<double> pred = {110.0, 90.0};
    const std::vector<double> meas = {100.0, 100.0};
    EXPECT_NEAR(meanPercentError(pred, meas), 0.0, 1e-12);
    const std::vector<double> over = {110.0, 120.0};
    EXPECT_NEAR(meanPercentError(over, meas), 15.0, 1e-12);
}

TEST(Stats, RmseKnownValue)
{
    const std::vector<double> pred = {3.0, 0.0};
    const std::vector<double> meas = {0.0, 4.0};
    EXPECT_NEAR(rmse(pred, meas), std::sqrt(12.5), 1e-12);
}

TEST(Stats, PearsonPerfectCorrelation)
{
    const std::vector<double> xs = {1.0, 2.0, 3.0};
    const std::vector<double> ys = {2.0, 4.0, 6.0};
    EXPECT_NEAR(pearson(xs, ys), 1.0, 1e-12);
    const std::vector<double> neg = {6.0, 4.0, 2.0};
    EXPECT_NEAR(pearson(xs, neg), -1.0, 1e-12);
}

TEST(Stats, PearsonConstantSeriesIsZero)
{
    const std::vector<double> xs = {1.0, 2.0, 3.0};
    const std::vector<double> c = {5.0, 5.0, 5.0};
    EXPECT_DOUBLE_EQ(pearson(xs, c), 0.0);
}

TEST(Stats, AccumulatorMatchesBatch)
{
    Accumulator acc;
    for (double x : kSample)
        acc.add(x);
    EXPECT_EQ(acc.count(), kSample.size());
    EXPECT_DOUBLE_EQ(acc.mean(), mean(kSample));
    EXPECT_NEAR(acc.stddev(), stddev(kSample), 1e-12);
    EXPECT_DOUBLE_EQ(acc.minimum(), 1.0);
    EXPECT_DOUBLE_EQ(acc.maximum(), 5.0);
    EXPECT_DOUBLE_EQ(acc.sum(), 14.0);
}

TEST(Stats, AccumulatorEmptyDefaults)
{
    Accumulator acc;
    EXPECT_EQ(acc.count(), 0u);
    EXPECT_DOUBLE_EQ(acc.mean(), 0.0);
    EXPECT_DOUBLE_EQ(acc.stddev(), 0.0);
    EXPECT_DOUBLE_EQ(acc.minimum(), 0.0);
    EXPECT_DOUBLE_EQ(acc.maximum(), 0.0);
}

TEST(Stats, MadKnownValue)
{
    // median = 3, |x - 3| = {2, 2, 0, 1, 2} -> median 2.
    EXPECT_DOUBLE_EQ(mad(kSample), 2.0);
    EXPECT_DOUBLE_EQ(mad({}), 0.0);
}

TEST(Stats, MadOutlierMaskFlagsSpikes)
{
    const std::vector<double> v = {100.0, 100.4, 99.7, 100.1, 600.0};
    const auto mask = madOutlierMask(v);
    ASSERT_EQ(mask.size(), v.size());
    EXPECT_FALSE(mask[0]);
    EXPECT_FALSE(mask[1]);
    EXPECT_FALSE(mask[2]);
    EXPECT_FALSE(mask[3]);
    EXPECT_TRUE(mask[4]);
}

TEST(Stats, MadOutlierMaskAlwaysFlagsNonFinite)
{
    const std::vector<double> v = {
        100.0, std::numeric_limits<double>::quiet_NaN(), 100.2,
        std::numeric_limits<double>::infinity(), 99.9};
    const auto mask = madOutlierMask(v);
    EXPECT_FALSE(mask[0]);
    EXPECT_TRUE(mask[1]);
    EXPECT_FALSE(mask[2]);
    EXPECT_TRUE(mask[3]);
    EXPECT_FALSE(mask[4]);
}

TEST(Stats, MadOutlierMaskZeroSpreadKeepsEqualValues)
{
    // MAD = 0: only entries different from the median are outliers.
    const std::vector<double> v = {5.0, 5.0, 5.0, 5.0, 7.0};
    const auto mask = madOutlierMask(v);
    EXPECT_FALSE(mask[0]);
    EXPECT_FALSE(mask[3]);
    EXPECT_TRUE(mask[4]);
}

} // namespace
