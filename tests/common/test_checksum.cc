/**
 * @file
 * Tests of the CRC32 used by the v2 file envelope, pinned to the
 * standard zlib/IEEE check values so files stay compatible with
 * external tooling.
 */

#include <gtest/gtest.h>

#include "common/checksum.hh"

namespace
{

using namespace gpupm;

TEST(Checksum, MatchesStandardCheckValues)
{
    EXPECT_EQ(checksum::crc32(""), 0u);
    // The canonical CRC-32/ISO-HDLC check value.
    EXPECT_EQ(checksum::crc32("123456789"), 0xcbf43926u);
    EXPECT_EQ(checksum::crc32(std::string_view("\0", 1)),
              0xd202ef8du);
}

TEST(Checksum, SensitiveToEveryBit)
{
    const std::string base = "gpupm payload";
    const auto ref = checksum::crc32(base);
    for (std::size_t i = 0; i < base.size(); ++i) {
        for (int bit = 0; bit < 8; ++bit) {
            std::string mut = base;
            mut[i] ^= static_cast<char>(1 << bit);
            EXPECT_NE(checksum::crc32(mut), ref)
                    << "byte " << i << " bit " << bit;
        }
    }
}

TEST(Checksum, HexFormRoundTrips)
{
    const auto crc = checksum::crc32("123456789");
    const auto hex = checksum::crc32Hex(crc);
    EXPECT_EQ(hex, "cbf43926");
    EXPECT_EQ(hex.size(), 8u);
    std::uint32_t back = 0;
    EXPECT_TRUE(checksum::parseCrc32Hex(hex, back));
    EXPECT_EQ(back, crc);
    EXPECT_TRUE(checksum::parseCrc32Hex("00000000", back));
    EXPECT_EQ(back, 0u);

    EXPECT_FALSE(checksum::parseCrc32Hex("", back));
    EXPECT_FALSE(checksum::parseCrc32Hex("cbf4392", back));  // short
    EXPECT_FALSE(checksum::parseCrc32Hex("cbf439260", back)); // long
    EXPECT_FALSE(checksum::parseCrc32Hex("cbf4392g", back)); // not hex
}

} // namespace
