/**
 * @file
 * Unit tests of the logging / error helpers.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"

namespace
{

TEST(Logging, PanicThrowsLogicError)
{
    EXPECT_THROW(GPUPM_PANIC("boom"), std::logic_error);
}

TEST(Logging, FatalThrowsRuntimeError)
{
    EXPECT_THROW(GPUPM_FATAL("bad input"), std::runtime_error);
}

TEST(Logging, PanicMessageCarriesLocationAndText)
{
    try {
        GPUPM_PANIC("value was ", 42);
        FAIL() << "expected panic";
    } catch (const std::logic_error &e) {
        const std::string msg = e.what();
        EXPECT_NE(msg.find("panic"), std::string::npos);
        EXPECT_NE(msg.find("value was 42"), std::string::npos);
        EXPECT_NE(msg.find("test_logging.cc"), std::string::npos);
    }
}

TEST(Logging, AssertPassesOnTrue)
{
    EXPECT_NO_THROW(GPUPM_ASSERT(1 + 1 == 2, "arithmetic works"));
}

TEST(Logging, AssertThrowsOnFalseWithCondition)
{
    try {
        GPUPM_ASSERT(false, "context ", 7);
        FAIL() << "expected panic";
    } catch (const std::logic_error &e) {
        const std::string msg = e.what();
        EXPECT_NE(msg.find("assertion"), std::string::npos);
        EXPECT_NE(msg.find("context 7"), std::string::npos);
    }
}

TEST(Logging, WarnAndInformDoNotThrow)
{
    EXPECT_NO_THROW(gpupm::warn("just a warning ", 1));
    EXPECT_NO_THROW(gpupm::inform("status ", 2.5));
}

TEST(Logging, ConcatJoinsHeterogeneousArguments)
{
    EXPECT_EQ(gpupm::detail::concat("a", 1, "b", 2.5), "a1b2.5");
    EXPECT_EQ(gpupm::detail::concat(), "");
}

/** Restores the global log level on scope exit. */
class LevelGuard
{
  public:
    LevelGuard() : saved_(gpupm::logLevel()) {}
    ~LevelGuard() { gpupm::setLogLevel(saved_); }

  private:
    gpupm::LogLevel saved_;
};

TEST(Logging, ParseLogLevelAcceptsKnownNames)
{
    gpupm::LogLevel level = gpupm::LogLevel::Info;
    EXPECT_TRUE(gpupm::parseLogLevel("debug", level));
    EXPECT_EQ(level, gpupm::LogLevel::Debug);
    EXPECT_TRUE(gpupm::parseLogLevel("info", level));
    EXPECT_EQ(level, gpupm::LogLevel::Info);
    EXPECT_TRUE(gpupm::parseLogLevel("warn", level));
    EXPECT_EQ(level, gpupm::LogLevel::Warn);
    EXPECT_TRUE(gpupm::parseLogLevel("warning", level));
    EXPECT_EQ(level, gpupm::LogLevel::Warn);
    EXPECT_TRUE(gpupm::parseLogLevel("error", level));
    EXPECT_EQ(level, gpupm::LogLevel::Error);
    EXPECT_TRUE(gpupm::parseLogLevel("quiet", level));
    EXPECT_EQ(level, gpupm::LogLevel::Error);

    level = gpupm::LogLevel::Warn;
    EXPECT_FALSE(gpupm::parseLogLevel("loud", level));
    EXPECT_EQ(level, gpupm::LogLevel::Warn) << "out left untouched";
}

TEST(Logging, SetLogLevelRoundTrips)
{
    LevelGuard guard;
    gpupm::setLogLevel(gpupm::LogLevel::Debug);
    EXPECT_EQ(gpupm::logLevel(), gpupm::LogLevel::Debug);
    gpupm::setLogLevel(gpupm::LogLevel::Error);
    EXPECT_EQ(gpupm::logLevel(), gpupm::LogLevel::Error);
}

TEST(Logging, InformIsSuppressedAboveInfo)
{
    LevelGuard guard;
    gpupm::setLogLevel(gpupm::LogLevel::Warn);
    testing::internal::CaptureStderr();
    gpupm::inform("you should not see this");
    EXPECT_EQ(testing::internal::GetCapturedStderr(), "");

    gpupm::setLogLevel(gpupm::LogLevel::Info);
    testing::internal::CaptureStderr();
    gpupm::inform("hello");
    const std::string out = testing::internal::GetCapturedStderr();
    EXPECT_NE(out.find("hello"), std::string::npos);
}

TEST(Logging, WarnIsSuppressedOnlyAtError)
{
    LevelGuard guard;
    gpupm::setLogLevel(gpupm::LogLevel::Error);
    testing::internal::CaptureStderr();
    gpupm::warn("you should not see this");
    EXPECT_EQ(testing::internal::GetCapturedStderr(), "");

    gpupm::setLogLevel(gpupm::LogLevel::Warn);
    testing::internal::CaptureStderr();
    gpupm::warn("careful");
    const std::string out = testing::internal::GetCapturedStderr();
    EXPECT_NE(out.find("careful"), std::string::npos);
}

TEST(Logging, DebugPrintsOnlyAtDebugLevel)
{
    LevelGuard guard;
    gpupm::setLogLevel(gpupm::LogLevel::Info);
    testing::internal::CaptureStderr();
    gpupm::debug("hidden diagnostics");
    EXPECT_EQ(testing::internal::GetCapturedStderr(), "");

    gpupm::setLogLevel(gpupm::LogLevel::Debug);
    testing::internal::CaptureStderr();
    gpupm::debug("visible diagnostics ", 3);
    const std::string out = testing::internal::GetCapturedStderr();
    EXPECT_NE(out.find("visible diagnostics 3"), std::string::npos);
}

TEST(Logging, PanicAndFatalIgnoreTheLogLevel)
{
    LevelGuard guard;
    gpupm::setLogLevel(gpupm::LogLevel::Error);
    EXPECT_THROW(GPUPM_PANIC("still thrown"), std::logic_error);
    EXPECT_THROW(GPUPM_FATAL("still thrown"), std::runtime_error);
}

} // namespace
