/**
 * @file
 * Unit tests of the logging / error helpers.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"

namespace
{

TEST(Logging, PanicThrowsLogicError)
{
    EXPECT_THROW(GPUPM_PANIC("boom"), std::logic_error);
}

TEST(Logging, FatalThrowsRuntimeError)
{
    EXPECT_THROW(GPUPM_FATAL("bad input"), std::runtime_error);
}

TEST(Logging, PanicMessageCarriesLocationAndText)
{
    try {
        GPUPM_PANIC("value was ", 42);
        FAIL() << "expected panic";
    } catch (const std::logic_error &e) {
        const std::string msg = e.what();
        EXPECT_NE(msg.find("panic"), std::string::npos);
        EXPECT_NE(msg.find("value was 42"), std::string::npos);
        EXPECT_NE(msg.find("test_logging.cc"), std::string::npos);
    }
}

TEST(Logging, AssertPassesOnTrue)
{
    EXPECT_NO_THROW(GPUPM_ASSERT(1 + 1 == 2, "arithmetic works"));
}

TEST(Logging, AssertThrowsOnFalseWithCondition)
{
    try {
        GPUPM_ASSERT(false, "context ", 7);
        FAIL() << "expected panic";
    } catch (const std::logic_error &e) {
        const std::string msg = e.what();
        EXPECT_NE(msg.find("assertion"), std::string::npos);
        EXPECT_NE(msg.find("context 7"), std::string::npos);
    }
}

TEST(Logging, WarnAndInformDoNotThrow)
{
    EXPECT_NO_THROW(gpupm::warn("just a warning ", 1));
    EXPECT_NO_THROW(gpupm::inform("status ", 2.5));
}

TEST(Logging, ConcatJoinsHeterogeneousArguments)
{
    EXPECT_EQ(gpupm::detail::concat("a", 1, "b", 2.5), "a1b2.5");
    EXPECT_EQ(gpupm::detail::concat(), "");
}

} // namespace
