/**
 * @file
 * Tests of the Table II device descriptors and the Sec. III-C peak
 * calculators.
 */

#include <gtest/gtest.h>

#include "gpu/device.hh"

namespace
{

using namespace gpupm::gpu;

TEST(Device, TitanXpTableII)
{
    const auto &d = DeviceDescriptor::get(DeviceKind::TitanXp);
    EXPECT_EQ(d.name, "Titan Xp");
    EXPECT_EQ(d.architecture, Architecture::Pascal);
    EXPECT_EQ(d.compute_capability, "6.1");
    EXPECT_EQ(d.mem_freqs_mhz, (std::vector<int>{5705, 4705}));
    EXPECT_EQ(d.core_freqs_mhz.size(), 22u);
    EXPECT_EQ(d.core_freqs_mhz.front(), 582);
    EXPECT_EQ(d.core_freqs_mhz.back(), 1911);
    EXPECT_EQ(d.default_core_mhz, 1404);
    EXPECT_EQ(d.default_mem_mhz, 5705);
    EXPECT_EQ(d.num_sms, 30);
    EXPECT_EQ(d.sp_int_units_per_sm, 128);
    EXPECT_EQ(d.dp_units_per_sm, 4);
    EXPECT_EQ(d.sf_units_per_sm, 32);
    EXPECT_DOUBLE_EQ(d.tdp_w, 250.0);
}

TEST(Device, GtxTitanXTableII)
{
    const auto &d = DeviceDescriptor::get(DeviceKind::GtxTitanX);
    EXPECT_EQ(d.architecture, Architecture::Maxwell);
    EXPECT_EQ(d.compute_capability, "5.2");
    EXPECT_EQ(d.mem_freqs_mhz, (std::vector<int>{4005, 3505, 3300,
                                                 810}));
    EXPECT_EQ(d.core_freqs_mhz.size(), 16u);
    EXPECT_EQ(d.core_freqs_mhz.front(), 595);
    EXPECT_EQ(d.core_freqs_mhz.back(), 1164);
    EXPECT_EQ(d.default_core_mhz, 975);
    EXPECT_EQ(d.default_mem_mhz, 3505);
    EXPECT_EQ(d.num_sms, 24);
    EXPECT_DOUBLE_EQ(d.tdp_w, 250.0);
    // The Fig. 9 TDP-fallback level must be a table entry.
    EXPECT_TRUE(d.supports({1126, 3505}));
}

TEST(Device, TeslaK40cTableII)
{
    const auto &d = DeviceDescriptor::get(DeviceKind::TeslaK40c);
    EXPECT_EQ(d.architecture, Architecture::Kepler);
    EXPECT_EQ(d.compute_capability, "3.5");
    EXPECT_EQ(d.mem_freqs_mhz, (std::vector<int>{3004}));
    EXPECT_EQ(d.core_freqs_mhz.size(), 4u);
    EXPECT_EQ(d.default_core_mhz, 875);
    EXPECT_EQ(d.num_sms, 15);
    EXPECT_EQ(d.sp_int_units_per_sm, 192);
    EXPECT_EQ(d.dp_units_per_sm, 64);
    EXPECT_DOUBLE_EQ(d.tdp_w, 235.0);
}

class AllDevices : public ::testing::TestWithParam<DeviceKind>
{
};

TEST_P(AllDevices, CommonCharacteristics)
{
    const auto &d = DeviceDescriptor::get(GetParam());
    EXPECT_EQ(d.warp_size, 32);
    EXPECT_EQ(d.mem_bus_bytes, 48);
    EXPECT_EQ(d.shared_banks, 32);
    EXPECT_EQ(d.sf_units_per_sm, 32);
    EXPECT_GT(d.l2_bytes_per_cycle, 0.0);
}

TEST_P(AllDevices, CoreFrequencyTableIsStrictlyIncreasing)
{
    const auto &d = DeviceDescriptor::get(GetParam());
    for (std::size_t i = 1; i < d.core_freqs_mhz.size(); ++i)
        EXPECT_LT(d.core_freqs_mhz[i - 1], d.core_freqs_mhz[i]);
    EXPECT_EQ(d.minCoreMhz(), d.core_freqs_mhz.front());
    EXPECT_EQ(d.maxCoreMhz(), d.core_freqs_mhz.back());
}

TEST_P(AllDevices, DefaultsAreTableEntries)
{
    const auto &d = DeviceDescriptor::get(GetParam());
    EXPECT_TRUE(d.supports(d.referenceConfig()));
}

TEST_P(AllDevices, AllConfigsIsFullCross)
{
    const auto &d = DeviceDescriptor::get(GetParam());
    const auto configs = d.allConfigs();
    EXPECT_EQ(configs.size(),
              d.core_freqs_mhz.size() * d.mem_freqs_mhz.size());
    for (const auto &cfg : configs)
        EXPECT_TRUE(d.supports(cfg));
}

TEST_P(AllDevices, SupportsRejectsOffTableClocks)
{
    const auto &d = DeviceDescriptor::get(GetParam());
    EXPECT_FALSE(d.supports({d.default_core_mhz + 1,
                             d.default_mem_mhz}));
    EXPECT_FALSE(d.supports({d.default_core_mhz, 1}));
}

TEST_P(AllDevices, PeakWarpRateScalesWithUnitsAndClock)
{
    const auto &d = DeviceDescriptor::get(GetParam());
    const int f = d.default_core_mhz;
    const double sp = d.peakWarpsPerSecond(Component::SP, f);
    const double dp = d.peakWarpsPerSecond(Component::DP, f);
    EXPECT_NEAR(sp / dp,
                static_cast<double>(d.sp_int_units_per_sm) /
                        d.dp_units_per_sm,
                1e-9);
    // Doubling the clock doubles the rate.
    EXPECT_NEAR(d.peakWarpsPerSecond(Component::SP, 2 * f), 2.0 * sp,
                1e-3);
    // Hand check: fc * SMs * units / warpSize.
    EXPECT_NEAR(sp,
                1e6 * f * d.num_sms * d.sp_int_units_per_sm / 32.0,
                1.0);
}

TEST_P(AllDevices, PeakBandwidthFollowsSecIIIC)
{
    const auto &d = DeviceDescriptor::get(GetParam());
    const FreqConfig ref = d.referenceConfig();
    // PeakBand = f * Bytes/Cycle (Sec. III-C).
    EXPECT_NEAR(d.peakBandwidth(Component::Dram, ref),
                1e6 * ref.mem_mhz * d.mem_bus_bytes, 1.0);
    EXPECT_NEAR(d.peakBandwidth(Component::Shared, ref),
                1e6 * ref.core_mhz * d.num_sms * 128.0, 1.0);
    EXPECT_NEAR(d.peakBandwidth(Component::L2, ref),
                1e6 * ref.core_mhz * d.l2_bytes_per_cycle, 1.0);
    // DRAM scales with fmem only; shared/L2 with fcore only.
    FreqConfig low_mem = ref;
    low_mem.mem_mhz = d.mem_freqs_mhz.back();
    EXPECT_NEAR(d.peakBandwidth(Component::Shared, low_mem),
                d.peakBandwidth(Component::Shared, ref), 1.0);
}

TEST_P(AllDevices, UnitQueriesRejectMemoryLevels)
{
    const auto &d = DeviceDescriptor::get(GetParam());
    EXPECT_THROW(d.unitsPerSm(Component::Dram), std::logic_error);
    EXPECT_THROW(d.peakBandwidth(Component::SP, d.referenceConfig()),
                 std::logic_error);
}

INSTANTIATE_TEST_SUITE_P(TableII, AllDevices,
                         ::testing::Values(DeviceKind::TitanXp,
                                           DeviceKind::GtxTitanX,
                                           DeviceKind::TeslaK40c));

TEST(Device, ArchitectureNames)
{
    EXPECT_EQ(architectureName(Architecture::Pascal), "Pascal");
    EXPECT_EQ(architectureName(Architecture::Maxwell), "Maxwell");
    EXPECT_EQ(architectureName(Architecture::Kepler), "Kepler");
}

TEST(Device, ComponentNamesAndIndices)
{
    EXPECT_EQ(componentName(Component::Int), "INT");
    EXPECT_EQ(componentName(Component::Dram), "DRAM");
    EXPECT_EQ(componentIndex(Component::Int), 0u);
    EXPECT_EQ(gpupm::gpu::kNumComponents, 7u);
}

} // namespace
