# Drives the accuracy-audit surface end to end: `gpupm audit` produces
# a scoreboard (stdout JSON + --scoreboard-out file + accuracy
# metrics), `gpupm validate` accepts the persisted artifact, and
# gpupm_bench_check gates both the scoreboard and the bench telemetry
# JSON against the checked-in goldens — passing on a faithful run and
# failing on an injected accuracy regression or time-budget overrun.
# Expects CLI, CHECK, BENCH_CHECK, GOLDEN_DIR, WORK and the bench
# binaries BENCH_FIG7, BENCH_FIG8, BENCH_TABLE2 to be defined.
file(MAKE_DIRECTORY ${WORK})

# -- 1. the audit itself ----------------------------------------------
execute_process(COMMAND ${CLI} audit titanx --json
                        --scoreboard-out=${WORK}/titanx.scoreboard
                        --metrics-out=${WORK}/audit.metrics.prom
                RESULT_VARIABLE rc OUTPUT_VARIABLE out
                ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "gpupm audit failed: ${rc}: ${err}")
endif()
if(NOT out MATCHES "\"gpupm_scoreboard_version\":1")
    message(FATAL_ERROR "audit --json did not print a scoreboard")
endif()
if(NOT out MATCHES "\"provenance\":")
    message(FATAL_ERROR "audit JSON lacks build provenance")
endif()
if(NOT err MATCHES "overall MAE")
    message(FATAL_ERROR "audit did not report its MAE: ${err}")
endif()

# The persisted scoreboard is a valid (v2, checksummed) artifact.
execute_process(COMMAND ${CLI} validate ${WORK}/titanx.scoreboard
                        --strict
                RESULT_VARIABLE rc ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "scoreboard failed validate: ${rc}: ${err}")
endif()

# The metrics dump carries the audit telemetry and build provenance.
execute_process(COMMAND ${CHECK} metrics ${WORK}/audit.metrics.prom
                        gpupm_accuracy_audits_total
                        gpupm_accuracy_samples_total
                        gpupm_accuracy_last_mae_percent
                        gpupm_accuracy_abs_error_percent
                        gpupm_build_info
                RESULT_VARIABLE rc ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "accuracy metrics missing: ${rc}: ${err}")
endif()

# -- 2. the scoreboard regression gate --------------------------------
# A faithful run passes against the checked-in golden.
execute_process(COMMAND ${BENCH_CHECK} scoreboard
                        ${WORK}/titanx.scoreboard
                        ${GOLDEN_DIR}/titanx.scoreboard.json
                RESULT_VARIABLE rc OUTPUT_VARIABLE out)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "scoreboard gate rejected a faithful run: "
                        "${rc}: ${out}")
endif()

# An injected accuracy regression (every MAE inflated by prefixing a
# digit, e.g. 5.47% -> 15.47%) must fail the gate.
file(READ ${GOLDEN_DIR}/titanx.scoreboard.json golden_text)
string(REGEX REPLACE "(\"mae_pct\":)" "\\11" tampered_text
       "${golden_text}")
if(tampered_text STREQUAL golden_text)
    message(FATAL_ERROR "regression injection did not change the text")
endif()
file(WRITE ${WORK}/tampered.scoreboard.json "${tampered_text}")
execute_process(COMMAND ${BENCH_CHECK} scoreboard
                        ${WORK}/tampered.scoreboard.json
                        ${GOLDEN_DIR}/titanx.scoreboard.json
                RESULT_VARIABLE rc OUTPUT_VARIABLE out)
if(rc EQUAL 0)
    message(FATAL_ERROR "scoreboard gate missed an injected +10 pp "
                        "MAE regression: ${out}")
endif()

# -- 3. bench telemetry (--json-out) ----------------------------------
foreach(pair "BENCH_TABLE2;table2_devices" "BENCH_FIG7;fig7_validation"
        "BENCH_FIG8;fig8_error_by_mem")
    list(GET pair 0 var)
    list(GET pair 1 name)
    execute_process(COMMAND ${${var}}
                            --json-out=${WORK}/BENCH_${name}.json
                    WORKING_DIRECTORY ${WORK}
                    RESULT_VARIABLE rc OUTPUT_QUIET
                    ERROR_VARIABLE err)
    if(NOT rc EQUAL 0)
        message(FATAL_ERROR "${name} --json-out failed: ${rc}: ${err}")
    endif()
endforeach()

execute_process(COMMAND ${BENCH_CHECK} validate
                        ${WORK}/BENCH_table2_devices.json
                        ${WORK}/BENCH_fig7_validation.json
                        ${WORK}/BENCH_fig8_error_by_mem.json
                RESULT_VARIABLE rc OUTPUT_VARIABLE out)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "bench telemetry invalid: ${rc}: ${out}")
endif()

# -- 4. the bench gate ------------------------------------------------
# Accuracy stats are deterministic, so the run matches the checked-in
# golden tightly; the time budget is generous because the golden's
# wall-clock came from a different machine.
execute_process(COMMAND ${BENCH_CHECK} bench
                        ${WORK}/BENCH_fig7_validation.json
                        ${GOLDEN_DIR}/BENCH_fig7_validation.json
                        --stat-tol=0.5 --time-factor=50
                RESULT_VARIABLE rc OUTPUT_VARIABLE out)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "bench gate rejected a faithful fig7 run: "
                        "${rc}: ${out}")
endif()

# Self-comparison isolates the two gates from machine speed entirely:
# identical stats and wall-clock pass a 10x budget and fail a 0.5x one.
execute_process(COMMAND ${BENCH_CHECK} bench
                        ${WORK}/BENCH_fig7_validation.json
                        ${WORK}/BENCH_fig7_validation.json
                        --time-factor=10
                RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "bench self-comparison failed: ${rc}")
endif()
execute_process(COMMAND ${BENCH_CHECK} bench
                        ${WORK}/BENCH_fig7_validation.json
                        ${WORK}/BENCH_fig7_validation.json
                        --time-factor=0.5
                RESULT_VARIABLE rc OUTPUT_VARIABLE out)
if(rc EQUAL 0)
    message(FATAL_ERROR "bench gate missed a 2x time-budget overrun "
                        "(0.5x factor on itself): ${out}")
endif()

# An injected +10 pp stat regression must fail against the golden.
file(READ ${WORK}/BENCH_fig7_validation.json bench_text)
string(REGEX REPLACE "(\"mae_pct_titanx\":)" "\\11" bench_tampered
       "${bench_text}")
if(bench_tampered STREQUAL bench_text)
    message(FATAL_ERROR "bench stat injection did not change the text")
endif()
file(WRITE ${WORK}/BENCH_tampered.json "${bench_tampered}")
execute_process(COMMAND ${BENCH_CHECK} bench
                        ${WORK}/BENCH_tampered.json
                        ${GOLDEN_DIR}/BENCH_fig7_validation.json
                        --time-factor=50
                RESULT_VARIABLE rc OUTPUT_VARIABLE out)
if(rc EQUAL 0)
    message(FATAL_ERROR "bench gate missed an injected stat "
                        "regression: ${out}")
endif()

# -- 5. the CPU-profile gate ------------------------------------------
# --json-out also starts the sampling profiler, so the fig7 telemetry
# carries a `cpu` block. Attribution must clear the 90% floor; the
# share tolerance is wider than the default because a ~200-sample
# profile on a differently-loaded machine moves a few points.
execute_process(COMMAND ${BENCH_CHECK} profile
                        ${WORK}/BENCH_fig7_validation.json
                        ${GOLDEN_DIR}/BENCH_fig7_validation.json
                        --share-tol=15
                RESULT_VARIABLE rc OUTPUT_VARIABLE out)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "profile gate rejected a faithful fig7 run: "
                        "${rc}: ${out}")
endif()

# An injected category budget breach (every share inflated by a
# prefixed digit) must fail.
file(READ ${WORK}/BENCH_fig7_validation.json profile_text)
string(REGEX REPLACE "(\"share_pct\":)" "\\19" profile_tampered
       "${profile_text}")
if(profile_tampered STREQUAL profile_text)
    message(FATAL_ERROR "share injection did not change the text")
endif()
file(WRITE ${WORK}/BENCH_profile_tampered.json "${profile_tampered}")
execute_process(COMMAND ${BENCH_CHECK} profile
                        ${WORK}/BENCH_profile_tampered.json
                        ${GOLDEN_DIR}/BENCH_fig7_validation.json
                        --share-tol=15
                RESULT_VARIABLE rc OUTPUT_VARIABLE out)
if(rc EQUAL 0)
    message(FATAL_ERROR "profile gate missed an injected CPU-share "
                        "breach: ${out}")
endif()

# A golden that predates the cpu block must be a loud missing-golden
# (3), never a silent pass.
string(REGEX REPLACE ",[\r\n ]*\"cpu\":{.*}," "," profile_nocpu
       "${profile_text}")
file(WRITE ${WORK}/BENCH_nocpu_golden.json "${profile_nocpu}")
execute_process(COMMAND ${BENCH_CHECK} profile
                        ${WORK}/BENCH_fig7_validation.json
                        ${WORK}/BENCH_nocpu_golden.json
                RESULT_VARIABLE rc OUTPUT_VARIABLE out
                ERROR_VARIABLE err)
if(NOT rc EQUAL 3)
    message(FATAL_ERROR "profile gate vs cpu-less golden returned "
                        "${rc}, want 3: ${out}${err}")
endif()
