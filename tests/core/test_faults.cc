/**
 * @file
 * Tests of the deterministic fault-injecting backend decorator.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "core/faults.hh"

namespace
{

using namespace gpupm;

const gpu::FreqConfig kRef{975, 3505};

sim::KernelDemand
moderateKernel()
{
    sim::KernelDemand d;
    d.name = "moderate";
    d.warps_sp = 2e9;
    d.bytes_dram_rd = 2e9;
    d.bytes_l2_rd = 2e9;
    return d;
}

/** Spec injecting nothing; the decorator must be transparent. */
model::FaultSpec
quietSpec()
{
    return model::FaultSpec{};
}

TEST(Faults, ZeroRateSpecIsTransparent)
{
    sim::PhysicalGpu board(gpu::DeviceKind::GtxTitanX);
    model::SimulatedBackend bare(board, 5);
    model::SimulatedBackend inner(board, 5);
    model::FaultInjectingBackend wrapped(inner, quietSpec());

    const auto d = moderateKernel();
    const auto m0 = bare.measurePower(d, kRef, 3, 1.0);
    const auto m1 = wrapped.measurePower(d, kRef, 3, 1.0);
    EXPECT_DOUBLE_EQ(m0.power_w, m1.power_w);

    const auto r0 = bare.profileKernel(d, kRef);
    const auto r1 = wrapped.profileKernel(d, kRef);
    EXPECT_DOUBLE_EQ(r0.acycles, r1.acycles);
    EXPECT_DOUBLE_EQ(r0.dram_rd_bytes, r1.dram_rd_bytes);
    EXPECT_EQ(wrapped.injected().total(), 0);
}

TEST(Faults, UniformSpecSpreadsTotalRate)
{
    const auto s = model::FaultSpec::uniform(0.10, 7);
    EXPECT_EQ(s.seed, 7u);
    const double sum = s.transient_rate + s.clock_reject_rate +
                       s.stuck_rate + s.spike_rate + s.nan_rate +
                       s.drop_event_rate + s.hang_rate;
    EXPECT_NEAR(sum, 0.10, 1e-12);
    EXPECT_THROW(model::FaultSpec::uniform(1.5), std::logic_error);
}

TEST(Faults, InjectionIsDeterministicPerSeed)
{
    sim::PhysicalGpu board(gpu::DeviceKind::GtxTitanX);
    const auto spec = model::FaultSpec::uniform(0.5, 99);
    const auto d = moderateKernel();

    const auto run = [&](model::FaultInjectingBackend &fb) {
        std::vector<double> powers;
        for (int i = 0; i < 40; ++i) {
            try {
                const double p =
                        fb.measurePower(d, kRef, 1, 1.0).power_w;
                // NaN never compares equal; canonicalize injected
                // NaN samples so the sequences stay comparable.
                powers.push_back(std::isnan(p) ? -2.0 : p);
            } catch (const model::MeasurementError &) {
                powers.push_back(-1.0);
            }
        }
        return powers;
    };

    model::SimulatedBackend in_a(board, 5), in_b(board, 5);
    model::FaultInjectingBackend a(in_a, spec), b(in_b, spec);
    const auto pa = run(a), pb = run(b);
    ASSERT_EQ(pa.size(), pb.size());
    for (std::size_t i = 0; i < pa.size(); ++i)
        EXPECT_DOUBLE_EQ(pa[i], pb[i]);
    EXPECT_EQ(a.injected().total(), b.injected().total());
    EXPECT_GT(a.injected().total(), 0);

    // reseed() replays the stream from that seed.
    a.reseed(123);
    const auto p1 = run(a);
    a.reseed(123);
    const auto p2 = run(a);
    for (std::size_t i = 0; i < p1.size(); ++i)
        EXPECT_DOUBLE_EQ(p1[i], p2[i]);
}

TEST(Faults, NanSampleCorruptsPower)
{
    sim::PhysicalGpu board(gpu::DeviceKind::GtxTitanX);
    model::SimulatedBackend inner(board, 5);
    model::FaultSpec spec;
    spec.nan_rate = 1.0;
    model::FaultInjectingBackend fb(inner, spec);
    const auto m = fb.measurePower(moderateKernel(), kRef, 1, 1.0);
    EXPECT_TRUE(std::isnan(m.power_w));
    EXPECT_EQ(fb.injected().of(model::FaultKind::NanSample), 1);
}

TEST(Faults, PowerSpikeScalesPower)
{
    sim::PhysicalGpu board(gpu::DeviceKind::GtxTitanX);
    model::SimulatedBackend clean(board, 5), inner(board, 5);
    model::FaultSpec spec;
    spec.spike_rate = 1.0;
    spec.spike_factor = 6.0;
    model::FaultInjectingBackend fb(inner, spec);
    const auto d = moderateKernel();
    const double truth = clean.measurePower(d, kRef, 1, 1.0).power_w;
    const auto m = fb.measurePower(d, kRef, 1, 1.0);
    EXPECT_DOUBLE_EQ(m.power_w, 6.0 * truth);
}

TEST(Faults, StuckSensorRepeatsPreviousReading)
{
    sim::PhysicalGpu board(gpu::DeviceKind::GtxTitanX);
    model::SimulatedBackend clean(board, 5), inner(board, 5);
    model::FaultSpec spec;
    spec.stuck_rate = 1.0;
    model::FaultInjectingBackend fb(inner, spec);
    const auto d = moderateKernel();
    // First call has no previous reading to be stuck at.
    const double first = fb.measurePower(d, kRef, 1, 1.0).power_w;
    const double fresh_first =
            clean.measurePower(d, kRef, 1, 1.0).power_w;
    EXPECT_DOUBLE_EQ(first, fresh_first);
    // The second reading is the first call's fresh value again.
    const double second = fb.measurePower(d, kRef, 1, 1.0).power_w;
    EXPECT_DOUBLE_EQ(second, fresh_first);
    EXPECT_EQ(fb.injected().of(model::FaultKind::StuckSensor), 1);
}

TEST(Faults, DroppedEventsZeroMemoryCounters)
{
    sim::PhysicalGpu board(gpu::DeviceKind::GtxTitanX);
    model::SimulatedBackend inner(board, 5);
    model::FaultSpec spec;
    spec.drop_event_rate = 1.0;
    model::FaultInjectingBackend fb(inner, spec);
    const auto rm = fb.profileKernel(moderateKernel(), kRef);
    EXPECT_DOUBLE_EQ(rm.l2_rd_bytes, 0.0);
    EXPECT_DOUBLE_EQ(rm.dram_rd_bytes, 0.0);
    EXPECT_GT(rm.acycles, 0.0);
}

TEST(Faults, HangInflatesVirtualCallDuration)
{
    sim::PhysicalGpu board(gpu::DeviceKind::GtxTitanX);
    model::SimulatedBackend inner(board, 5);
    model::FaultSpec spec;
    spec.hang_rate = 1.0;
    spec.hang_latency_s = 120.0;
    model::FaultInjectingBackend fb(inner, spec);
    fb.measurePower(moderateKernel(), kRef, 1, 1.0);
    EXPECT_GT(fb.lastCallSeconds(), 120.0);
    EXPECT_EQ(fb.injected().of(model::FaultKind::Hang), 1);
}

TEST(Faults, TransientAndClockFaultsThrowTypedErrors)
{
    sim::PhysicalGpu board(gpu::DeviceKind::GtxTitanX);
    model::SimulatedBackend inner(board, 5);
    model::FaultSpec spec;
    spec.transient_rate = 1.0;
    model::FaultInjectingBackend fb(inner, spec);
    try {
        fb.measurePower(moderateKernel(), kRef, 1, 1.0);
        FAIL() << "expected MeasurementError";
    } catch (const model::MeasurementError &e) {
        EXPECT_EQ(e.code(), model::MeasureErrc::Transient);
        EXPECT_TRUE(e.recoverable());
    }

    model::FaultSpec clocks;
    clocks.clock_reject_rate = 1.0;
    model::FaultInjectingBackend fc(inner, clocks);
    try {
        fc.profileKernel(moderateKernel(), kRef);
        FAIL() << "expected MeasurementError";
    } catch (const model::MeasurementError &e) {
        EXPECT_EQ(e.code(), model::MeasureErrc::ClockRejected);
    }
}

TEST(Faults, BrokenConfigFailsEveryCall)
{
    sim::PhysicalGpu board(gpu::DeviceKind::GtxTitanX);
    model::SimulatedBackend inner(board, 5);
    model::FaultSpec spec;
    const gpu::FreqConfig bad{595, 810};
    spec.broken_configs = {bad};
    model::FaultInjectingBackend fb(inner, spec);
    const auto d = moderateKernel();
    for (int i = 0; i < 5; ++i)
        EXPECT_THROW(fb.measurePower(d, bad, 1, 1.0),
                     model::MeasurementError);
    EXPECT_EQ(fb.injected().of(model::FaultKind::BrokenConfig), 5);
    // Other configurations are unaffected.
    EXPECT_NO_THROW(fb.measurePower(d, kRef, 1, 1.0));
}

TEST(Faults, ErrcTaxonomyClassifiesRecoverability)
{
    using model::MeasureErrc;
    EXPECT_TRUE(model::isRecoverable(MeasureErrc::Transient));
    EXPECT_TRUE(model::isRecoverable(MeasureErrc::ClockRejected));
    EXPECT_TRUE(model::isRecoverable(MeasureErrc::Timeout));
    EXPECT_FALSE(model::isRecoverable(MeasureErrc::Fatal));
    EXPECT_EQ(model::measureErrcName(MeasureErrc::Transient),
              "Transient");
    EXPECT_EQ(model::faultKindName(model::FaultKind::NanSample),
              "NanSample");
}

} // namespace
