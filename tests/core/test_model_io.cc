/**
 * @file
 * Tests of model / campaign persistence and off-grid voltage
 * interpolation.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "core/campaign.hh"
#include "core/model_io.hh"

namespace
{

using namespace gpupm;
using gpu::Component;
using gpu::componentIndex;

const model::TrainingData &
campaign()
{
    static const model::TrainingData data = [] {
        sim::PhysicalGpu board(gpu::DeviceKind::GtxTitanX);
        model::CampaignOptions o;
        o.power_repetitions = 2;
        return model::runTrainingCampaign(board, ubench::buildSuite(),
                                          o);
    }();
    return data;
}

std::string
tempPath(const char *name)
{
    return (std::filesystem::temp_directory_path() / name).string();
}

TEST(ModelIo, CampaignRoundTripsExactly)
{
    const auto &data = campaign();
    const auto parsed = model::deserializeTrainingData(
            model::serializeTrainingData(data));
    EXPECT_EQ(parsed.device, data.device);
    EXPECT_EQ(parsed.reference, data.reference);
    ASSERT_EQ(parsed.configs.size(), data.configs.size());
    ASSERT_EQ(parsed.utils.size(), data.utils.size());
    for (std::size_t b = 0; b < data.utils.size(); ++b) {
        for (std::size_t i = 0; i < gpu::kNumComponents; ++i)
            EXPECT_NEAR(parsed.utils[b][i], data.utils[b][i], 1e-9);
        for (std::size_t c = 0; c < data.configs.size(); ++c)
            EXPECT_NEAR(parsed.power_w[b][c], data.power_w[b][c],
                        1e-6);
    }
}

TEST(ModelIo, CampaignFileRoundTrip)
{
    const std::string path = tempPath("gpupm_test.campaign");
    model::saveTrainingData(campaign(), path);
    const auto loaded = model::loadTrainingData(path);
    EXPECT_EQ(loaded.configs.size(), campaign().configs.size());
    std::remove(path.c_str());
}

TEST(ModelIo, ModelFileRoundTrip)
{
    const auto fit = model::ModelEstimator().estimate(campaign());
    const std::string path = tempPath("gpupm_test.model");
    model::saveModel(fit.model, path);
    const auto loaded = model::loadModel(path);
    gpu::ComponentArray u{};
    u[componentIndex(Component::SP)] = 0.6;
    u[componentIndex(Component::Dram)] = 0.4;
    for (const auto &cfg :
         gpu::DeviceDescriptor::get(gpu::DeviceKind::GtxTitanX)
                 .allConfigs()) {
        EXPECT_NEAR(loaded.predict(u, cfg).total_w,
                    fit.model.predict(u, cfg).total_w, 1e-6);
    }
    std::remove(path.c_str());
}

TEST(ModelIo, MissingFilesAreFatal)
{
    EXPECT_THROW(model::loadModel("/nonexistent/path.model"),
                 std::runtime_error);
    EXPECT_THROW(model::loadTrainingData("/nonexistent/c.campaign"),
                 std::runtime_error);
    EXPECT_THROW(model::deserializeTrainingData("garbage"),
                 std::runtime_error);
}

TEST(Interpolation, ExactOnGridPointsMatchesTable)
{
    const auto fit = model::ModelEstimator().estimate(campaign());
    for (const auto &[key, v] : fit.model.voltageTable()) {
        const auto iv = fit.model.voltagesInterpolated(
                {key.first, key.second});
        EXPECT_DOUBLE_EQ(iv.core, v.core);
        EXPECT_DOUBLE_EQ(iv.mem, v.mem);
    }
}

TEST(Interpolation, BetweenGridPointsIsBracketed)
{
    const auto fit = model::ModelEstimator().estimate(campaign());
    // Between the 937 and 975 MHz core levels at the reference
    // memory clock.
    const auto lo = fit.model.voltages({937, 3505});
    const auto hi = fit.model.voltages({975, 3505});
    const auto mid = fit.model.voltagesInterpolated({956, 3505});
    EXPECT_GE(mid.core, std::min(lo.core, hi.core) - 1e-12);
    EXPECT_LE(mid.core, std::max(lo.core, hi.core) + 1e-12);
}

TEST(Interpolation, ClampsBeyondTableEdges)
{
    const auto fit = model::ModelEstimator().estimate(campaign());
    const auto below = fit.model.voltagesInterpolated({100, 3505});
    EXPECT_DOUBLE_EQ(below.core,
                     fit.model.voltages({595, 3505}).core);
    const auto above = fit.model.voltagesInterpolated({3000, 3505});
    EXPECT_DOUBLE_EQ(above.core,
                     fit.model.voltages({1164, 3505}).core);
}

TEST(Interpolation, HeldOutConfigsPredictAccurately)
{
    // Train on the even-indexed core clocks only; predict the odd
    // ones through interpolation. The accuracy should degrade only
    // mildly versus the fully fitted model — the use case 4
    // "fine-grained V-F perturbations" scenario.
    const auto &full = campaign();
    model::TrainingData sparse;
    sparse.device = full.device;
    sparse.reference = full.reference;
    std::vector<std::size_t> kept;
    const auto &dev =
            gpu::DeviceDescriptor::get(gpu::DeviceKind::GtxTitanX);
    for (std::size_t ci = 0; ci < full.configs.size(); ++ci) {
        const auto &cfg = full.configs[ci];
        const auto it = std::find(dev.core_freqs_mhz.begin(),
                                  dev.core_freqs_mhz.end(),
                                  cfg.core_mhz);
        const auto idx = std::distance(dev.core_freqs_mhz.begin(), it);
        if (idx % 2 == 0 || cfg == full.reference) {
            sparse.configs.push_back(cfg);
            kept.push_back(ci);
        }
    }
    sparse.utils = full.utils;
    sparse.power_w.resize(full.utils.size());
    for (std::size_t b = 0; b < full.utils.size(); ++b)
        for (std::size_t ci : kept)
            sparse.power_w[b].push_back(full.power_w[b][ci]);

    const auto fit = model::ModelEstimator().estimate(sparse);

    // Evaluate the fit on the held-out configurations of the full
    // campaign via interpolated voltages.
    double err = 0.0;
    std::size_t n = 0;
    for (std::size_t b = 0; b < full.utils.size(); ++b) {
        for (std::size_t ci = 0; ci < full.configs.size(); ++ci) {
            const auto &cfg = full.configs[ci];
            if (fit.model.hasVoltages(cfg))
                continue; // not held out
            const double pred = fit.model
                                        .predictInterpolated(
                                                full.utils[b], cfg)
                                        .total_w;
            err += std::abs(pred - full.power_w[b][ci]) /
                   full.power_w[b][ci];
            ++n;
        }
    }
    ASSERT_GT(n, 0u);
    EXPECT_LT(100.0 * err / n, 10.0);
}

model::CampaignCheckpoint
sampleCheckpoint()
{
    model::CampaignCheckpoint ck;
    ck.seed = 42;
    ck.device = gpu::DeviceKind::GtxTitanX;
    ck.reference = {975, 3505};
    ck.configs = {{975, 3505}, {595, 810}};
    ck.benchmark_names = {"mb_a", "mb \"quoted\"\n"};
    ck.utils_done = {1, 0};
    ck.utils.assign(2, gpu::ComponentArray{});
    ck.utils[0][0] = 0.123456789012345678;
    ck.utils[0][1] = 1.0 / 3.0;
    ck.power_done = {{1, 0}, {0, 1}};
    ck.power_w = {{101.25, 0.0}, {0.0, 57.0 / 7.0}};
    ck.report.cells_total = 6;
    ck.report.cells_done = 3;
    ck.report.cells_failed = 1;
    ck.report.faults_injected = 9;
    ck.report.totals.retries = 4;
    ck.report.totals.backoff_total_s = 0.7071067811865476;
    ck.report.quarantined = {{595, 810}};
    ck.report.benchmarks.resize(2);
    ck.report.benchmarks[0].name = "mb_a";
    ck.report.benchmarks[0].retries = 3;
    ck.report.benchmarks[1].name = "mb \"quoted\"\n";
    ck.report.benchmarks[1].corrupt_samples = 2;
    return ck;
}

TEST(ModelIo, CampaignCheckpointRoundTripsExactly)
{
    const auto ck = sampleCheckpoint();
    const auto text = model::serializeCampaignCheckpoint(ck);
    const auto back = model::deserializeCampaignCheckpoint(text);

    EXPECT_EQ(back.seed, ck.seed);
    EXPECT_EQ(back.device, ck.device);
    EXPECT_EQ(back.reference, ck.reference);
    EXPECT_EQ(back.configs, ck.configs);
    EXPECT_EQ(back.benchmark_names, ck.benchmark_names);
    EXPECT_EQ(back.utils_done, ck.utils_done);
    EXPECT_EQ(back.power_done, ck.power_done);
    // Doubles round-trip bit-exactly (precision-17 serialization).
    for (std::size_t b = 0; b < ck.utils.size(); ++b)
        for (std::size_t i = 0; i < gpu::kNumComponents; ++i)
            EXPECT_DOUBLE_EQ(back.utils[b][i], ck.utils[b][i]);
    for (std::size_t b = 0; b < ck.power_w.size(); ++b)
        for (std::size_t c = 0; c < ck.power_w[b].size(); ++c)
            EXPECT_DOUBLE_EQ(back.power_w[b][c], ck.power_w[b][c]);
    EXPECT_EQ(back.report.cells_done, ck.report.cells_done);
    EXPECT_EQ(back.report.cells_failed, ck.report.cells_failed);
    EXPECT_EQ(back.report.faults_injected, ck.report.faults_injected);
    EXPECT_EQ(back.report.totals.retries, ck.report.totals.retries);
    EXPECT_DOUBLE_EQ(back.report.totals.backoff_total_s,
                     ck.report.totals.backoff_total_s);
    ASSERT_EQ(back.report.quarantined.size(), 1u);
    EXPECT_EQ(back.report.quarantined[0], ck.report.quarantined[0]);
    ASSERT_EQ(back.report.benchmarks.size(), 2u);
    EXPECT_EQ(back.report.benchmarks[1].name,
              ck.report.benchmarks[1].name);
    EXPECT_EQ(back.report.benchmarks[1].corrupt_samples, 2);
}

TEST(ModelIo, CheckpointSaveIsAtomicAndLoadable)
{
    const auto path =
            (std::filesystem::temp_directory_path() /
             "gpupm_test_checkpoint.json")
                    .string();
    const auto ck = sampleCheckpoint();
    model::saveCampaignCheckpoint(ck, path);
    // No temporary file is left behind by the rename-into-place.
    EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
    const auto back = model::loadCampaignCheckpoint(path);
    EXPECT_EQ(back.seed, ck.seed);
    EXPECT_EQ(back.configs, ck.configs);
    std::filesystem::remove(path);
}

TEST(ModelIo, CheckpointRejectsGarbage)
{
    EXPECT_THROW(model::deserializeCampaignCheckpoint("not json"),
                 std::runtime_error);
    EXPECT_THROW(model::deserializeCampaignCheckpoint(
                         "{\"format\":\"something-else\"}"),
                 std::runtime_error);
}

// ---- v2 envelope, legacy compatibility and malformed-file corpus ----

/** A hand-built model (cheaper than fitting one per test). */
model::DvfsPowerModel
handModel()
{
    model::ModelParams p;
    p.beta0 = 52.0;
    p.beta1 = 10.5;
    p.beta2 = 15.0;
    p.beta3 = 7.25;
    for (std::size_t i = 0; i < gpu::kNumComponents; ++i)
        p.omega[i] = 3.0 + static_cast<double>(i);
    model::DvfsPowerModel m(gpu::DeviceKind::GtxTitanX, {975, 3505},
                            p);
    m.setVoltages({975, 3505}, {1.0, 1.0});
    m.setVoltages({595, 3505}, {0.85, 1.0});
    return m;
}

/** Strip the envelope header line, leaving the legacy v0 payload. */
std::string
legacyOf(const std::string &enveloped)
{
    return enveloped.substr(enveloped.find('\n') + 1);
}

/** Corrupt the crc32 field of an envelope header in place. */
std::string
stompCrc(std::string text)
{
    const auto pos = text.find("crc32 ") + 6;
    text.replace(pos, 8, text.compare(pos, 8, "00000000") == 0
                                 ? "ffffffff"
                                 : "00000000");
    return text;
}

TEST(ModelIoV2, EnvelopeShapeAndKindDetection)
{
    const auto m = model::serializeModel(handModel());
    const auto c = model::serializeTrainingData(campaign());
    const auto k =
            model::serializeCampaignCheckpoint(sampleCheckpoint());
    EXPECT_EQ(m.rfind("gpupm-file model v2 crc32 ", 0), 0u) << m;
    EXPECT_EQ(c.rfind("gpupm-file campaign v2 crc32 ", 0), 0u);
    EXPECT_EQ(k.rfind("gpupm-file checkpoint v2 crc32 ", 0), 0u);

    EXPECT_EQ(model::detectFileKind(m).value(),
              model::FileKind::Model);
    EXPECT_EQ(model::detectFileKind(c).value(),
              model::FileKind::Campaign);
    EXPECT_EQ(model::detectFileKind(k).value(),
              model::FileKind::Checkpoint);
    // Legacy forms are still recognized.
    EXPECT_EQ(model::detectFileKind(handModel().serialize()).value(),
              model::FileKind::Model);
    EXPECT_EQ(model::detectFileKind(legacyOf(c)).value(),
              model::FileKind::Campaign);
    EXPECT_EQ(model::detectFileKind(legacyOf(k)).value(),
              model::FileKind::Checkpoint);
    // Unrecognizable content is a typed error, not a crash.
    auto bad = model::detectFileKind("what even is this");
    ASSERT_FALSE(bad.ok());
    EXPECT_EQ(bad.error().code, model::IoErrc::ParseError);
    EXPECT_FALSE(model::detectFileKind("").ok());
}

TEST(ModelIoV2, TypedRoundTripsAllThreeFormats)
{
    const auto m0 = handModel();
    auto m = model::tryParseModel(model::serializeModel(m0));
    ASSERT_TRUE(m.ok()) << m.error().message;
    EXPECT_DOUBLE_EQ(m.value().params().beta0, m0.params().beta0);
    EXPECT_EQ(m.value().voltageTable().size(),
              m0.voltageTable().size());

    auto c = model::tryParseTrainingData(
            model::serializeTrainingData(campaign()));
    ASSERT_TRUE(c.ok()) << c.error().message;
    EXPECT_EQ(c.value().configs, campaign().configs);

    auto k = model::tryParseCampaignCheckpoint(
            model::serializeCampaignCheckpoint(sampleCheckpoint()));
    ASSERT_TRUE(k.ok()) << k.error().message;
    EXPECT_EQ(k.value().benchmark_names,
              sampleCheckpoint().benchmark_names);
}

TEST(ModelIoV2, LegacyFilesLoadByDefaultButNotUnderStrict)
{
    const model::LoadOptions strict{.allow_legacy = false,
                                    .validate = false};
    const auto lm = handModel().serialize();
    const auto lc = legacyOf(model::serializeTrainingData(campaign()));
    const auto lk = legacyOf(
            model::serializeCampaignCheckpoint(sampleCheckpoint()));

    EXPECT_TRUE(model::tryParseModel(lm).ok());
    EXPECT_TRUE(model::tryParseTrainingData(lc).ok());
    EXPECT_TRUE(model::tryParseCampaignCheckpoint(lk).ok());

    for (const auto *legacy : {&lm, &lc, &lk}) {
        model::IoExpected<model::FileKind> kind =
                model::detectFileKind(*legacy);
        ASSERT_TRUE(kind.ok());
        model::IoStatus err = [&] {
            switch (kind.value()) {
              case model::FileKind::Model:
                return model::tryParseModel(*legacy, strict).error();
              case model::FileKind::Campaign:
                return model::tryParseTrainingData(*legacy, strict)
                        .error();
              default:
                return model::tryParseCampaignCheckpoint(*legacy,
                                                         strict)
                        .error();
            }
        }();
        EXPECT_EQ(err.code, model::IoErrc::VersionMismatch)
                << err.message;
        EXPECT_NE(err.message.find("legacy"), std::string::npos);
    }
}

TEST(ModelIoV2, TruncationIsAParseError)
{
    const auto text = model::serializeModel(handModel());
    for (const std::size_t keep :
         {std::size_t{0}, std::size_t{5}, text.size() / 2,
          text.size() - 1}) {
        auto res = model::tryParseModel(text.substr(0, keep));
        ASSERT_FALSE(res.ok()) << "kept " << keep << " bytes";
        EXPECT_EQ(res.error().code, model::IoErrc::ParseError)
                << res.error().message;
    }
}

TEST(ModelIoV2, PayloadBitFlipIsAChecksumMismatch)
{
    auto text = model::serializeTrainingData(campaign());
    // Stomp a payload byte without changing the size.
    const auto pos = text.find('\n') + 10;
    ASSERT_LT(pos, text.size());
    text[pos] = text[pos] == 'x' ? 'y' : 'x';
    auto res = model::tryParseTrainingData(text);
    ASSERT_FALSE(res.ok());
    EXPECT_EQ(res.error().code, model::IoErrc::ChecksumMismatch)
            << res.error().message;
}

TEST(ModelIoV2, WrongVersionIsAVersionMismatch)
{
    auto text = model::serializeModel(handModel());
    text.replace(text.find(" v2 "), 4, " v9 ");
    auto res = model::tryParseModel(text);
    ASSERT_FALSE(res.ok());
    EXPECT_EQ(res.error().code, model::IoErrc::VersionMismatch);
}

TEST(ModelIoV2, WrongChecksumFieldIsAChecksumMismatch)
{
    auto res = model::tryParseCampaignCheckpoint(stompCrc(
            model::serializeCampaignCheckpoint(sampleCheckpoint())));
    ASSERT_FALSE(res.ok());
    EXPECT_EQ(res.error().code, model::IoErrc::ChecksumMismatch);
}

TEST(ModelIoV2, KindMismatchIsAParseError)
{
    auto res = model::tryParseTrainingData(
            model::serializeModel(handModel()));
    ASSERT_FALSE(res.ok());
    EXPECT_EQ(res.error().code, model::IoErrc::ParseError);
    EXPECT_NE(res.error().message.find("expected a campaign"),
              std::string::npos)
            << res.error().message;
}

TEST(ModelIoV2, SmuggledNanIsAParseError)
{
    auto res = model::tryParseModel(
            "gpupm-model v1\ndevice 0\nreference 975 3505\n"
            "beta nan 1 1 1\n");
    ASSERT_FALSE(res.ok());
    EXPECT_EQ(res.error().code, model::IoErrc::ParseError);

    // JSON checkpoints cannot smuggle non-finite values either.
    auto ck = model::tryParseCampaignCheckpoint(
            "{\"format\":\"gpupm-checkpoint\",\"version\":1,"
            "\"seed\":nan}");
    ASSERT_FALSE(ck.ok());
    EXPECT_EQ(ck.error().code, model::IoErrc::ParseError);
}

TEST(ModelIoV2, HostileSizesAndDepthsAreParseErrors)
{
    // A fuzzed count field must not drive a giant allocation.
    auto big = model::tryParseTrainingData(
            "gpupm-campaign v1\ndevice 0\nreference 975 3505\n"
            "configs 999999999\n");
    ASSERT_FALSE(big.ok());
    EXPECT_EQ(big.error().code, model::IoErrc::ParseError);

    // Deep JSON nesting must not blow the stack.
    auto deep =
            model::tryParseCampaignCheckpoint(std::string(300, '['));
    ASSERT_FALSE(deep.ok());
    EXPECT_EQ(deep.error().code, model::IoErrc::ParseError);

    // Out-of-range literals surface as parse errors, not UB.
    auto huge = model::tryParseModel(
            "gpupm-model v1\ndevice 0\nreference 975 3505\n"
            "beta 1e999 1 1 1\n");
    ASSERT_FALSE(huge.ok());
    EXPECT_EQ(huge.error().code, model::IoErrc::ParseError);
}

TEST(ModelIoV2, ValidateOnLoadRejectsImplausibleModels)
{
    auto bad = handModel();
    bad.params().beta1 = -5.0; // negative coefficient: unphysical
    const model::LoadOptions opts{.allow_legacy = true,
                                  .validate = true};
    auto res =
            model::tryParseModel(model::serializeModel(bad), opts);
    ASSERT_FALSE(res.ok());
    EXPECT_EQ(res.error().code, model::IoErrc::ValidationError);
    EXPECT_NE(res.error().message.find("coefficient-negative"),
              std::string::npos)
            << res.error().message;

    // The same artifact still parses when validation is off.
    EXPECT_TRUE(
            model::tryParseModel(model::serializeModel(bad)).ok());
}

TEST(ModelIoV2, MissingFileIsATypedIoError)
{
    auto res = model::tryLoadModel("/nonexistent/dir/x.model");
    ASSERT_FALSE(res.ok());
    EXPECT_EQ(res.error().code, model::IoErrc::IoError);
    // The path appears in the message for diagnosability.
    EXPECT_NE(res.error().message.find("/nonexistent/dir/x.model"),
              std::string::npos);
}

TEST(ModelIoV2, TypedSaveAndLoadRoundTrip)
{
    const std::string path = tempPath("gpupm_test_typed.model");
    auto saved = model::trySaveModel(handModel(), path);
    ASSERT_TRUE(saved.ok()) << saved.error().message;
    auto loaded = model::tryLoadModel(path);
    ASSERT_TRUE(loaded.ok()) << loaded.error().message;
    EXPECT_DOUBLE_EQ(loaded.value().params().beta3,
                     handModel().params().beta3);
    std::remove(path.c_str());
}

} // namespace
