/**
 * @file
 * Tests of model / campaign persistence and off-grid voltage
 * interpolation.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "core/campaign.hh"
#include "core/model_io.hh"

namespace
{

using namespace gpupm;
using gpu::Component;
using gpu::componentIndex;

const model::TrainingData &
campaign()
{
    static const model::TrainingData data = [] {
        sim::PhysicalGpu board(gpu::DeviceKind::GtxTitanX);
        model::CampaignOptions o;
        o.power_repetitions = 2;
        return model::runTrainingCampaign(board, ubench::buildSuite(),
                                          o);
    }();
    return data;
}

std::string
tempPath(const char *name)
{
    return (std::filesystem::temp_directory_path() / name).string();
}

TEST(ModelIo, CampaignRoundTripsExactly)
{
    const auto &data = campaign();
    const auto parsed = model::deserializeTrainingData(
            model::serializeTrainingData(data));
    EXPECT_EQ(parsed.device, data.device);
    EXPECT_EQ(parsed.reference, data.reference);
    ASSERT_EQ(parsed.configs.size(), data.configs.size());
    ASSERT_EQ(parsed.utils.size(), data.utils.size());
    for (std::size_t b = 0; b < data.utils.size(); ++b) {
        for (std::size_t i = 0; i < gpu::kNumComponents; ++i)
            EXPECT_NEAR(parsed.utils[b][i], data.utils[b][i], 1e-9);
        for (std::size_t c = 0; c < data.configs.size(); ++c)
            EXPECT_NEAR(parsed.power_w[b][c], data.power_w[b][c],
                        1e-6);
    }
}

TEST(ModelIo, CampaignFileRoundTrip)
{
    const std::string path = tempPath("gpupm_test.campaign");
    model::saveTrainingData(campaign(), path);
    const auto loaded = model::loadTrainingData(path);
    EXPECT_EQ(loaded.configs.size(), campaign().configs.size());
    std::remove(path.c_str());
}

TEST(ModelIo, ModelFileRoundTrip)
{
    const auto fit = model::ModelEstimator().estimate(campaign());
    const std::string path = tempPath("gpupm_test.model");
    model::saveModel(fit.model, path);
    const auto loaded = model::loadModel(path);
    gpu::ComponentArray u{};
    u[componentIndex(Component::SP)] = 0.6;
    u[componentIndex(Component::Dram)] = 0.4;
    for (const auto &cfg :
         gpu::DeviceDescriptor::get(gpu::DeviceKind::GtxTitanX)
                 .allConfigs()) {
        EXPECT_NEAR(loaded.predict(u, cfg).total_w,
                    fit.model.predict(u, cfg).total_w, 1e-6);
    }
    std::remove(path.c_str());
}

TEST(ModelIo, MissingFilesAreFatal)
{
    EXPECT_THROW(model::loadModel("/nonexistent/path.model"),
                 std::runtime_error);
    EXPECT_THROW(model::loadTrainingData("/nonexistent/c.campaign"),
                 std::runtime_error);
    EXPECT_THROW(model::deserializeTrainingData("garbage"),
                 std::runtime_error);
}

TEST(Interpolation, ExactOnGridPointsMatchesTable)
{
    const auto fit = model::ModelEstimator().estimate(campaign());
    for (const auto &[key, v] : fit.model.voltageTable()) {
        const auto iv = fit.model.voltagesInterpolated(
                {key.first, key.second});
        EXPECT_DOUBLE_EQ(iv.core, v.core);
        EXPECT_DOUBLE_EQ(iv.mem, v.mem);
    }
}

TEST(Interpolation, BetweenGridPointsIsBracketed)
{
    const auto fit = model::ModelEstimator().estimate(campaign());
    // Between the 937 and 975 MHz core levels at the reference
    // memory clock.
    const auto lo = fit.model.voltages({937, 3505});
    const auto hi = fit.model.voltages({975, 3505});
    const auto mid = fit.model.voltagesInterpolated({956, 3505});
    EXPECT_GE(mid.core, std::min(lo.core, hi.core) - 1e-12);
    EXPECT_LE(mid.core, std::max(lo.core, hi.core) + 1e-12);
}

TEST(Interpolation, ClampsBeyondTableEdges)
{
    const auto fit = model::ModelEstimator().estimate(campaign());
    const auto below = fit.model.voltagesInterpolated({100, 3505});
    EXPECT_DOUBLE_EQ(below.core,
                     fit.model.voltages({595, 3505}).core);
    const auto above = fit.model.voltagesInterpolated({3000, 3505});
    EXPECT_DOUBLE_EQ(above.core,
                     fit.model.voltages({1164, 3505}).core);
}

TEST(Interpolation, HeldOutConfigsPredictAccurately)
{
    // Train on the even-indexed core clocks only; predict the odd
    // ones through interpolation. The accuracy should degrade only
    // mildly versus the fully fitted model — the use case 4
    // "fine-grained V-F perturbations" scenario.
    const auto &full = campaign();
    model::TrainingData sparse;
    sparse.device = full.device;
    sparse.reference = full.reference;
    std::vector<std::size_t> kept;
    const auto &dev =
            gpu::DeviceDescriptor::get(gpu::DeviceKind::GtxTitanX);
    for (std::size_t ci = 0; ci < full.configs.size(); ++ci) {
        const auto &cfg = full.configs[ci];
        const auto it = std::find(dev.core_freqs_mhz.begin(),
                                  dev.core_freqs_mhz.end(),
                                  cfg.core_mhz);
        const auto idx = std::distance(dev.core_freqs_mhz.begin(), it);
        if (idx % 2 == 0 || cfg == full.reference) {
            sparse.configs.push_back(cfg);
            kept.push_back(ci);
        }
    }
    sparse.utils = full.utils;
    sparse.power_w.resize(full.utils.size());
    for (std::size_t b = 0; b < full.utils.size(); ++b)
        for (std::size_t ci : kept)
            sparse.power_w[b].push_back(full.power_w[b][ci]);

    const auto fit = model::ModelEstimator().estimate(sparse);

    // Evaluate the fit on the held-out configurations of the full
    // campaign via interpolated voltages.
    double err = 0.0;
    std::size_t n = 0;
    for (std::size_t b = 0; b < full.utils.size(); ++b) {
        for (std::size_t ci = 0; ci < full.configs.size(); ++ci) {
            const auto &cfg = full.configs[ci];
            if (fit.model.hasVoltages(cfg))
                continue; // not held out
            const double pred = fit.model
                                        .predictInterpolated(
                                                full.utils[b], cfg)
                                        .total_w;
            err += std::abs(pred - full.power_w[b][ci]) /
                   full.power_w[b][ci];
            ++n;
        }
    }
    ASSERT_GT(n, 0u);
    EXPECT_LT(100.0 * err / n, 10.0);
}

} // namespace
