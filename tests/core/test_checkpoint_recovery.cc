/**
 * @file
 * Torn-write checkpoint recovery: a v2 campaign checkpoint truncated
 * at every byte boundary must come back from the typed loader as a
 * clean error (or the full checkpoint when whole) — never an abort —
 * and a campaign resumed over a torn or valid checkpoint must end up
 * bit-identical to an uninterrupted run with every cell counted
 * exactly once.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "core/campaign.hh"
#include "core/model_io.hh"
#include "ubench/suite.hh"

namespace
{

using namespace gpupm;

/** A deliberately tiny campaign: 3 benchmarks x 4 configurations. */
struct TinyCampaign
{
    sim::PhysicalGpu board{gpu::DeviceKind::GtxTitanX};
    std::vector<ubench::Microbenchmark> suite;
    model::ResilientCampaignOptions opts;

    TinyCampaign()
    {
        const auto full = ubench::buildSuite();
        suite = {full[0], full[1], full.back()};
        const auto &desc = board.descriptor();
        const gpu::FreqConfig ref = desc.referenceConfig();
        for (std::size_t i = 0; i < desc.core_freqs_mhz.size();
             i += desc.core_freqs_mhz.size() / 3 + 1)
            opts.base.config_subset.push_back(
                    {desc.core_freqs_mhz[i], ref.mem_mhz});
        opts.base.config_subset.push_back(ref);
        opts.base.power_repetitions = 2;
        opts.base.min_duration_s = 0.1;
        opts.checkpoint_every = 1;
    }
};

TEST(CheckpointRecovery, TruncationAtEveryByteIsATypedError)
{
    TinyCampaign tc;
    const std::string dir =
            (std::filesystem::temp_directory_path() /
             "gpupm_ck_recovery_test")
                    .string();
    std::filesystem::create_directories(dir);
    tc.opts.checkpoint_path = dir + "/partial.ck";
    tc.opts.max_cells = 5; // stop with the grid half-measured
    model::SimulatedBackend be0(tc.board, tc.opts.base.seed);
    const auto partial = model::runResilientTrainingCampaign(
            be0, tc.suite, tc.opts);
    ASSERT_FALSE(partial.complete);

    std::ifstream in(tc.opts.checkpoint_path, std::ios::binary);
    ASSERT_TRUE(in.good());
    const std::string full(
            (std::istreambuf_iterator<char>(in)),
            std::istreambuf_iterator<char>());
    ASSERT_GT(full.size(), 100u);

    for (std::size_t cut = 0; cut < full.size(); ++cut) {
        auto torn = model::tryParseCampaignCheckpoint(
                full.substr(0, cut));
        ASSERT_FALSE(torn.ok()) << "prefix of " << cut
                                << " bytes parsed as complete";
        const model::IoErrc code = torn.error().code;
        EXPECT_TRUE(code == model::IoErrc::ParseError ||
                    code == model::IoErrc::ChecksumMismatch ||
                    code == model::IoErrc::VersionMismatch ||
                    code == model::IoErrc::ValidationError)
                << "cut=" << cut << " gave "
                << model::ioErrcName(code);
    }
    // The whole file still loads.
    EXPECT_TRUE(model::tryParseCampaignCheckpoint(full).ok());
    std::filesystem::remove_all(dir);
}

TEST(CheckpointRecovery, ResumeNeverDoubleCountsCells)
{
    TinyCampaign tc;
    const std::string dir =
            (std::filesystem::temp_directory_path() /
             "gpupm_ck_resume_test")
                    .string();
    std::filesystem::create_directories(dir);

    // Reference: one uninterrupted run.
    model::SimulatedBackend be_whole(tc.board, tc.opts.base.seed);
    const auto whole = model::runResilientTrainingCampaign(
            be_whole, tc.suite, tc.opts);
    ASSERT_TRUE(whole.complete);
    ASSERT_EQ(whole.report.cells_done, whole.report.cells_total);

    // Interrupted run + resume over the checkpoint.
    model::ResilientCampaignOptions split = tc.opts;
    split.checkpoint_path = dir + "/split.ck";
    split.max_cells = 5;
    model::SimulatedBackend be_first(tc.board, tc.opts.base.seed);
    const auto first = model::runResilientTrainingCampaign(
            be_first, tc.suite, split);
    ASSERT_FALSE(first.complete);
    EXPECT_EQ(first.report.cells_done, 5);

    split.max_cells = 0;
    model::SimulatedBackend be_resume(tc.board, tc.opts.base.seed);
    const auto resumed = model::runResilientTrainingCampaign(
            be_resume, tc.suite, split);
    ASSERT_TRUE(resumed.complete);
    // Exactly-once accounting: the resumed cells are the first
    // run's, the rest were measured now, the sum is the grid.
    EXPECT_EQ(resumed.report.cells_resumed, 5);
    EXPECT_EQ(resumed.report.cells_done,
              resumed.report.cells_total);
    EXPECT_EQ(model::serializeTrainingData(resumed.data),
              model::serializeTrainingData(whole.data));
    std::filesystem::remove_all(dir);
}

TEST(CheckpointRecovery, TornCheckpointFallsBackToAFreshStart)
{
    TinyCampaign tc;
    const std::string dir =
            (std::filesystem::temp_directory_path() /
             "gpupm_ck_torn_test")
                    .string();
    std::filesystem::create_directories(dir);

    model::SimulatedBackend be_ref(tc.board, tc.opts.base.seed);
    const auto whole = model::runResilientTrainingCampaign(
            be_ref, tc.suite, tc.opts);
    ASSERT_TRUE(whole.complete);

    // Leave a half-written checkpoint where the resume looks.
    model::ResilientCampaignOptions torn_opts = tc.opts;
    torn_opts.checkpoint_path = dir + "/torn.ck";
    {
        model::ResilientCampaignOptions probe = tc.opts;
        probe.checkpoint_path = dir + "/probe.ck";
        probe.max_cells = 5;
        model::SimulatedBackend be_probe(tc.board,
                                         tc.opts.base.seed);
        (void)model::runResilientTrainingCampaign(be_probe,
                                                  tc.suite, probe);
        std::ifstream in(probe.checkpoint_path, std::ios::binary);
        const std::string full(
                (std::istreambuf_iterator<char>(in)),
                std::istreambuf_iterator<char>());
        std::ofstream out(torn_opts.checkpoint_path,
                          std::ios::binary);
        out.write(full.data(),
                  static_cast<std::streamsize>(full.size() / 2));
    }

    // The torn file is discarded (typed warning, fresh start) and
    // the campaign still converges to the uninterrupted result.
    model::SimulatedBackend be_rec(tc.board, tc.opts.base.seed);
    const auto recovered = model::runResilientTrainingCampaign(
            be_rec, tc.suite, torn_opts);
    ASSERT_TRUE(recovered.complete);
    EXPECT_EQ(recovered.report.cells_resumed, 0);
    EXPECT_EQ(model::serializeTrainingData(recovered.data),
              model::serializeTrainingData(whole.data));
    std::filesystem::remove_all(dir);
}

} // namespace
