/**
 * @file
 * Tests of the Eq. 6-7 power model: hand-computed predictions,
 * breakdown consistency and serialization.
 */

#include <gtest/gtest.h>

#include "core/power_model.hh"

namespace
{

using namespace gpupm;
using gpu::Component;
using gpu::componentIndex;

model::DvfsPowerModel
sampleModel()
{
    model::ModelParams p;
    p.beta0 = 30.0;
    p.beta1 = 15.0;
    p.beta2 = 10.0;
    p.beta3 = 11.0;
    p.omega[componentIndex(Component::Int)] = 50.0;
    p.omega[componentIndex(Component::SP)] = 60.0;
    p.omega[componentIndex(Component::DP)] = 75.0;
    p.omega[componentIndex(Component::SF)] = 40.0;
    p.omega[componentIndex(Component::Shared)] = 22.0;
    p.omega[componentIndex(Component::L2)] = 35.0;
    p.omega[componentIndex(Component::Dram)] = 18.0;
    model::DvfsPowerModel m(gpu::DeviceKind::GtxTitanX, {975, 3505},
                            p);
    m.setVoltages({975, 3505}, {1.0, 1.0});
    m.setVoltages({595, 3505}, {0.9, 1.0});
    m.setVoltages({595, 810}, {0.9, 0.95});
    return m;
}

TEST(PowerModel, Eq6Eq7HandComputedAtReference)
{
    const auto m = sampleModel();
    gpu::ComponentArray u{};
    u[componentIndex(Component::SP)] = 0.5;
    u[componentIndex(Component::Dram)] = 0.8;
    const auto p = m.predict(u, {975, 3505});
    // Pcore = 30*1 + 1*0.975*(15 + 60*0.5) = 30 + 43.875
    // Pmem  = 10*1 + 1*3.505*(11 + 18*0.8) = 10 + 89.027
    EXPECT_NEAR(p.core_w, 73.875, 1e-9);
    EXPECT_NEAR(p.mem_w, 99.027, 1e-6);
    EXPECT_NEAR(p.total_w, 172.902, 1e-6);
    EXPECT_NEAR(p.constant_w,
                30.0 + 0.975 * 15.0 + 10.0 + 3.505 * 11.0, 1e-9);
}

TEST(PowerModel, VoltageEntersSquaredOnDynamicTerms)
{
    const auto m = sampleModel();
    gpu::ComponentArray u{};
    u[componentIndex(Component::SP)] = 1.0;
    const auto p = m.predict(u, {595, 3505});
    // Dynamic SP term: Vc^2 * fc * omega = 0.81 * 0.595 * 60.
    EXPECT_NEAR(p.component_w[componentIndex(Component::SP)],
                0.81 * 0.595 * 60.0, 1e-9);
    // Static term is linear in Vc: 30 * 0.9.
    const auto idle = m.predict(gpu::ComponentArray{}, {595, 3505});
    EXPECT_NEAR(idle.core_w, 30.0 * 0.9 + 0.81 * 0.595 * 15.0, 1e-9);
}

TEST(PowerModel, ComponentBreakdownSumsToTotal)
{
    const auto m = sampleModel();
    gpu::ComponentArray u{};
    for (std::size_t i = 0; i < gpu::kNumComponents; ++i)
        u[i] = 0.1 * static_cast<double>(i + 1);
    const auto p = m.predict(u, {595, 810});
    double s = p.constant_w;
    for (double w : p.component_w)
        s += w;
    EXPECT_NEAR(s, p.total_w, 1e-9);
    EXPECT_NEAR(p.core_w + p.mem_w, p.total_w, 1e-9);
}

TEST(PowerModel, DramIsTheOnlyMemoryDomainComponent)
{
    const auto m = sampleModel();
    gpu::ComponentArray u{};
    u[componentIndex(Component::Dram)] = 1.0;
    const auto base = m.predict(gpu::ComponentArray{}, {975, 3505});
    const auto load = m.predict(u, {975, 3505});
    EXPECT_NEAR(load.mem_w - base.mem_w, 3.505 * 18.0, 1e-9);
    EXPECT_NEAR(load.core_w, base.core_w, 1e-9);
}

TEST(PowerModel, MissingVoltagesPanics)
{
    const auto m = sampleModel();
    EXPECT_FALSE(m.hasVoltages({1164, 3505}));
    EXPECT_THROW(m.predict(gpu::ComponentArray{}, {1164, 3505}),
                 std::logic_error);
}

TEST(PowerModel, PredictWithExplicitVoltages)
{
    const auto m = sampleModel();
    gpu::ComponentArray u{};
    const auto a = m.predictWithVoltages(u, {975, 3505}, {1.0, 1.0});
    const auto b = m.predict(u, {975, 3505});
    EXPECT_NEAR(a.total_w, b.total_w, 1e-12);
}

TEST(PowerModel, SerializeDeserializeRoundTrip)
{
    const auto m = sampleModel();
    const std::string text = m.serialize();
    const auto n = model::DvfsPowerModel::deserialize(text);

    EXPECT_EQ(n.deviceKind(), m.deviceKind());
    EXPECT_EQ(n.reference(), m.reference());
    EXPECT_DOUBLE_EQ(n.params().beta0, m.params().beta0);
    EXPECT_DOUBLE_EQ(n.params().beta3, m.params().beta3);
    for (std::size_t i = 0; i < gpu::kNumComponents; ++i)
        EXPECT_DOUBLE_EQ(n.params().omega[i], m.params().omega[i]);
    EXPECT_EQ(n.voltageTable().size(), m.voltageTable().size());

    gpu::ComponentArray u{};
    u[componentIndex(Component::L2)] = 0.4;
    u[componentIndex(Component::Dram)] = 0.7;
    EXPECT_NEAR(n.predict(u, {595, 810}).total_w,
                m.predict(u, {595, 810}).total_w, 1e-9);
}

TEST(PowerModel, DeserializeRejectsGarbage)
{
    EXPECT_THROW(model::DvfsPowerModel::deserialize("not a model"),
                 std::runtime_error);
    // A hostile payload surfaces as a typed parse error (wrapped as
    // runtime_error by the fatal-on-error wrapper), never as an
    // assertion abort.
    EXPECT_THROW(model::DvfsPowerModel::deserialize(
                         "gpupm-model v1\ndevice 9\n"),
                 std::runtime_error);
}

TEST(PowerModel, NonPositiveVoltagePanics)
{
    auto m = sampleModel();
    EXPECT_THROW(m.setVoltages({975, 3505}, {0.0, 1.0}),
                 std::logic_error);
}

} // namespace
