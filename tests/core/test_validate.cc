/**
 * @file
 * Tests of the physical-plausibility validation subsystem: campaign,
 * model and checkpoint checks, severity policy, and report output.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "core/validate.hh"

namespace
{

using namespace gpupm;

bool
hasIssue(const model::ValidationReport &r, const std::string &code)
{
    return std::any_of(r.issues.begin(), r.issues.end(),
                       [&](const model::ValidationIssue &i) {
                           return i.code == code;
                       });
}

/** A small, healthy campaign: idle row, axis-aligned grid. */
model::TrainingData
goodCampaign()
{
    model::TrainingData data;
    data.device = gpu::DeviceKind::GtxTitanX;
    data.reference = {975, 3505};
    data.configs = {{975, 3505}, {595, 3505}, {975, 810},
                    {595, 810}};
    data.utils.push_back(gpu::ComponentArray{}); // idle
    for (int b = 1; b < 3; ++b) {
        gpu::ComponentArray u{};
        for (std::size_t i = 0; i < gpu::kNumComponents; ++i)
            u[i] = 0.1 * static_cast<double>(b + i);
        data.utils.push_back(u);
    }
    for (std::size_t b = 0; b < data.utils.size(); ++b) {
        std::vector<double> row;
        // Power rises with core clock within each memory clock.
        row.push_back(120.0 + 10.0 * b); // (975, 3505)
        row.push_back(90.0 + 10.0 * b);  // (595, 3505)
        row.push_back(100.0 + 10.0 * b); // (975, 810)
        row.push_back(70.0 + 10.0 * b);  // (595, 810)
        data.power_w.push_back(row);
    }
    return data;
}

/** A small, healthy model: monotone voltages, reference at (1, 1). */
model::DvfsPowerModel
goodModel()
{
    model::ModelParams p;
    p.beta0 = 40.0;
    p.beta1 = 12.0;
    p.beta2 = 11.0;
    p.beta3 = 8.0;
    for (std::size_t i = 0; i < gpu::kNumComponents; ++i)
        p.omega[i] = 5.0 + static_cast<double>(i);
    model::DvfsPowerModel m(gpu::DeviceKind::GtxTitanX, {975, 3505},
                            p);
    m.setVoltages({975, 3505}, {1.0, 1.0});
    m.setVoltages({595, 3505}, {0.86, 1.0});
    m.setVoltages({975, 810}, {1.0, 0.95});
    m.setVoltages({595, 810}, {0.86, 0.95});
    return m;
}

TEST(ValidateCampaign, HealthyCampaignPasses)
{
    const auto r = model::validateTrainingData(goodCampaign());
    EXPECT_TRUE(r.ok()) << r.summary();
    EXPECT_EQ(r.errorCount(), 0u);
    EXPECT_EQ(r.subject, "campaign");
}

TEST(ValidateCampaign, UtilizationOutOfRangeIsAnError)
{
    auto data = goodCampaign();
    data.utils[1][2] = 1.7;
    const auto r = model::validateTrainingData(data);
    EXPECT_FALSE(r.ok());
    EXPECT_TRUE(hasIssue(r, "util-out-of-range")) << r.summary();

    data = goodCampaign();
    data.utils[1][0] = -0.2;
    EXPECT_TRUE(hasIssue(model::validateTrainingData(data),
                         "util-out-of-range"));
}

TEST(ValidateCampaign, NonFiniteValuesAreErrors)
{
    auto data = goodCampaign();
    data.utils[2][1] = std::numeric_limits<double>::quiet_NaN();
    EXPECT_TRUE(hasIssue(model::validateTrainingData(data),
                         "util-not-finite"));

    data = goodCampaign();
    data.power_w[1][0] = std::numeric_limits<double>::infinity();
    EXPECT_TRUE(hasIssue(model::validateTrainingData(data),
                         "power-not-finite"));
}

TEST(ValidateCampaign, NegativePowerIsAnError)
{
    auto data = goodCampaign();
    data.power_w[0][1] = -4.0;
    const auto r = model::validateTrainingData(data);
    EXPECT_FALSE(r.ok());
    EXPECT_TRUE(hasIssue(r, "power-negative"));
}

TEST(ValidateCampaign, MissingReferenceIsAnError)
{
    auto data = goodCampaign();
    data.reference = {1164, 3505};
    EXPECT_TRUE(hasIssue(model::validateTrainingData(data),
                         "reference-missing"));
}

TEST(ValidateCampaign, DuplicateConfigIsAnError)
{
    auto data = goodCampaign();
    data.configs[2] = data.configs[1];
    EXPECT_TRUE(hasIssue(model::validateTrainingData(data),
                         "config-duplicate"));
}

TEST(ValidateCampaign, UnderidentifiedGridIsAnError)
{
    // Both non-reference configs perturb both domains at once: the
    // Eq. 11 initialization has no axis-aligned handle.
    auto data = goodCampaign();
    data.configs = {{975, 3505}, {595, 810}, {700, 2000}};
    for (auto &row : data.power_w)
        row.resize(3);
    const auto r = model::validateTrainingData(data);
    EXPECT_FALSE(r.ok());
    EXPECT_TRUE(hasIssue(r, "grid-underidentified")) << r.summary();
}

TEST(ValidateCampaign, RowSizeMismatchIsAnError)
{
    auto data = goodCampaign();
    data.power_w[1].pop_back();
    EXPECT_TRUE(hasIssue(model::validateTrainingData(data),
                         "row-size-mismatch"));
}

TEST(ValidateCampaign, MissingIdleRowIsOnlyAWarning)
{
    auto data = goodCampaign();
    data.utils.erase(data.utils.begin());
    data.power_w.erase(data.power_w.begin());
    const auto r = model::validateTrainingData(data);
    EXPECT_TRUE(r.ok()) << r.summary(); // warnings don't fail
    EXPECT_TRUE(hasIssue(r, "no-idle-row"));
    EXPECT_GE(r.warningCount(), 1u);
}

TEST(ValidateModel, HealthyModelPasses)
{
    const auto r = model::validateModel(goodModel());
    EXPECT_TRUE(r.ok()) << r.summary();
    EXPECT_EQ(r.subject, "model");
}

TEST(ValidateModel, NegativeCoefficientIsAnError)
{
    auto m = goodModel();
    m.params().beta1 = -3.0;
    const auto r = model::validateModel(m);
    EXPECT_FALSE(r.ok());
    EXPECT_TRUE(hasIssue(r, "coefficient-negative"));

    auto m2 = goodModel();
    m2.params().omega[2] = -0.5;
    EXPECT_TRUE(hasIssue(model::validateModel(m2),
                         "coefficient-negative"));
}

TEST(ValidateModel, NonFiniteCoefficientIsAnError)
{
    auto m = goodModel();
    m.params().beta0 = std::numeric_limits<double>::quiet_NaN();
    EXPECT_TRUE(hasIssue(model::validateModel(m),
                         "param-not-finite"));
}

TEST(ValidateModel, NonMonotoneVoltageIsAnError)
{
    auto m = goodModel();
    // Core voltage drops when the core clock rises: violates Eq. 12.
    m.setVoltages({595, 3505}, {1.05, 1.0});
    const auto r = model::validateModel(m);
    EXPECT_FALSE(r.ok());
    EXPECT_TRUE(hasIssue(r, "voltage-nonmonotone")) << r.summary();
}

TEST(ValidateModel, MissingReferenceVoltagesIsAnError)
{
    model::DvfsPowerModel m(gpu::DeviceKind::GtxTitanX, {975, 3505},
                            goodModel().params());
    m.setVoltages({595, 3505}, {0.9, 1.0});
    EXPECT_TRUE(hasIssue(model::validateModel(m),
                         "reference-voltages-missing"));
}

TEST(ValidateModel, ImplausibleVoltageIsAWarning)
{
    auto m = goodModel();
    m.setVoltages({1164, 3505}, {4.5, 1.0});
    const auto r = model::validateModel(m);
    EXPECT_TRUE(hasIssue(r, "voltage-implausible"));
}

TEST(ValidateModel, EmptyVoltageTableIsAnError)
{
    model::DvfsPowerModel m(gpu::DeviceKind::GtxTitanX, {975, 3505},
                            goodModel().params());
    EXPECT_TRUE(hasIssue(model::validateModel(m),
                         "voltage-table-empty"));
}

TEST(ValidateCheckpoint, ConsistentCheckpointPasses)
{
    model::CampaignCheckpoint ck;
    ck.device = gpu::DeviceKind::GtxTitanX;
    ck.reference = {975, 3505};
    ck.configs = {{975, 3505}, {595, 3505}};
    ck.benchmark_names = {"a", "b"};
    ck.utils_done = {1, 0};
    ck.utils.assign(2, gpu::ComponentArray{});
    ck.power_done = {{1, 1}, {1, 0}};
    ck.power_w = {{120.0, 95.0}, {110.0, 0.0}};
    ck.report.cells_total = 4;
    ck.report.cells_done = 3;
    const auto r = model::validateCheckpoint(ck);
    EXPECT_TRUE(r.ok()) << r.summary();
    EXPECT_EQ(r.subject, "checkpoint");
}

TEST(ValidateCheckpoint, BookkeepingMismatchIsAnError)
{
    model::CampaignCheckpoint ck;
    ck.device = gpu::DeviceKind::GtxTitanX;
    ck.reference = {975, 3505};
    ck.configs = {{975, 3505}};
    ck.benchmark_names = {"a", "b"};
    ck.utils_done = {1}; // one flag for two benchmarks
    ck.utils.assign(2, gpu::ComponentArray{});
    ck.power_done = {{1}, {1}};
    ck.power_w = {{120.0}, {110.0}};
    const auto r = model::validateCheckpoint(ck);
    EXPECT_FALSE(r.ok());
    EXPECT_TRUE(hasIssue(r, "row-count-mismatch"));
}

TEST(ValidateCheckpoint, OverdoneCellCountIsAWarning)
{
    model::CampaignCheckpoint ck;
    ck.device = gpu::DeviceKind::GtxTitanX;
    ck.reference = {975, 3505};
    ck.configs = {{975, 3505}};
    ck.benchmark_names = {"a"};
    ck.utils_done = {1};
    ck.utils.assign(1, gpu::ComponentArray{});
    ck.power_done = {{1}};
    ck.power_w = {{120.0}};
    ck.report.cells_total = 1;
    ck.report.cells_done = 5;
    const auto r = model::validateCheckpoint(ck);
    EXPECT_TRUE(r.ok());
    EXPECT_TRUE(hasIssue(r, "report-inconsistent"));
}

TEST(ValidationReport, SummaryAndJsonShapes)
{
    model::ValidationReport r;
    r.subject = "model";
    EXPECT_TRUE(r.ok());
    EXPECT_NE(r.summary().find("model: OK"), std::string::npos);
    EXPECT_NE(r.toJson().find("\"ok\":true"), std::string::npos);

    r.addWarning("odd-thing", "looks odd");
    r.addError("bad-thing", "value \"x\" is bad");
    EXPECT_FALSE(r.ok());
    EXPECT_EQ(r.errorCount(), 1u);
    EXPECT_EQ(r.warningCount(), 1u);
    const auto s = r.summary();
    EXPECT_NE(s.find("error [bad-thing]"), std::string::npos);
    EXPECT_NE(s.find("warning [odd-thing]"), std::string::npos);
    const auto j = r.toJson();
    EXPECT_NE(j.find("\"ok\":false"), std::string::npos);
    EXPECT_NE(j.find("\\\"x\\\""), std::string::npos); // escaping
}

} // namespace
