/**
 * @file
 * Property-style sweeps over the fitted model and the estimator:
 * physical invariants that must hold for *any* seed / workload, run
 * as parameterized suites.
 */

#include <gtest/gtest.h>

#include "common/random.hh"
#include "core/campaign.hh"
#include "core/latency_scaler.hh"
#include "core/predictor.hh"
#include "workloads/workloads.hh"

namespace
{

using namespace gpupm;
using gpu::Component;
using gpu::componentIndex;

/** One fitted GTX Titan X model, shared across the suite. */
const model::EstimationResult &
fitted()
{
    static const model::EstimationResult fit = [] {
        sim::PhysicalGpu board(gpu::DeviceKind::GtxTitanX);
        model::CampaignOptions o;
        o.power_repetitions = 3;
        const auto data = model::runTrainingCampaign(
                board, ubench::buildSuite(), o);
        return model::ModelEstimator().estimate(data);
    }();
    return fit;
}

gpu::ComponentArray
randomUtil(Rng &rng)
{
    gpu::ComponentArray u{};
    for (double &x : u)
        x = rng.uniform() < 0.5 ? rng.uniform() : 0.0;
    return u;
}

class ModelProperty : public ::testing::TestWithParam<int>
{
};

TEST_P(ModelProperty, PowerIncreasesWithEveryUtilization)
{
    Rng rng(GetParam() * 1337);
    const auto &m = fitted().model;
    const gpu::ComponentArray u = randomUtil(rng);
    const auto &dev =
            gpu::DeviceDescriptor::get(gpu::DeviceKind::GtxTitanX);
    for (const auto &cfg : dev.allConfigs()) {
        const double base = m.predict(u, cfg).total_w;
        for (std::size_t i = 0; i < gpu::kNumComponents; ++i) {
            gpu::ComponentArray up = u;
            up[i] = std::min(1.0, up[i] + 0.2);
            EXPECT_GE(m.predict(up, cfg).total_w, base - 1e-9)
                    << componentName(static_cast<Component>(i));
        }
    }
}

TEST_P(ModelProperty, DomainPowerMonotoneInItsClock)
{
    // Eq. 12 guarantees per-domain monotonicity: the core-domain
    // power is non-decreasing in fcore at fixed fmem (the fitted Vc
    // is monotone there), and the memory-domain power is
    // non-decreasing in fmem at fixed fcore. The *total* may dip
    // slightly because the other domain's fitted voltage is free
    // across the orthogonal axis.
    Rng rng(GetParam() * 7919);
    const auto &m = fitted().model;
    const gpu::ComponentArray u = randomUtil(rng);
    const auto &dev =
            gpu::DeviceDescriptor::get(gpu::DeviceKind::GtxTitanX);
    for (int fm : dev.mem_freqs_mhz) {
        double prev = 0.0;
        for (int fc : dev.core_freqs_mhz) {
            const double p = m.predict(u, {fc, fm}).core_w;
            EXPECT_GE(p, prev - 1e-9) << fc << "@" << fm;
            prev = p;
        }
    }
    for (int fc : dev.core_freqs_mhz) {
        double prev = 0.0;
        for (auto it = dev.mem_freqs_mhz.rbegin();
             it != dev.mem_freqs_mhz.rend(); ++it) {
            const double p = m.predict(u, {fc, *it}).mem_w;
            EXPECT_GE(p, prev - 1e-9) << fc << "@" << *it;
            prev = p;
        }
    }
}

TEST_P(ModelProperty, BreakdownAlwaysSumsToTotal)
{
    Rng rng(GetParam() * 31);
    const auto &m = fitted().model;
    const auto &dev =
            gpu::DeviceDescriptor::get(gpu::DeviceKind::GtxTitanX);
    for (int rep = 0; rep < 8; ++rep) {
        const gpu::ComponentArray u = randomUtil(rng);
        const auto &cfgs = dev.allConfigs();
        const auto cfg = cfgs[rng.below(cfgs.size())];
        const auto p = m.predict(u, cfg);
        double s = p.constant_w;
        for (double w : p.component_w)
            s += w;
        EXPECT_NEAR(s, p.total_w, 1e-9);
        EXPECT_NEAR(p.core_w + p.mem_w, p.total_w, 1e-9);
        EXPECT_GE(p.constant_w, 0.0);
    }
}

TEST_P(ModelProperty, SerializationRoundTripsExactly)
{
    Rng rng(GetParam() * 101);
    const auto &m = fitted().model;
    const auto n = model::DvfsPowerModel::deserialize(m.serialize());
    const auto &dev =
            gpu::DeviceDescriptor::get(gpu::DeviceKind::GtxTitanX);
    for (int rep = 0; rep < 8; ++rep) {
        const gpu::ComponentArray u = randomUtil(rng);
        const auto &cfgs = dev.allConfigs();
        const auto cfg = cfgs[rng.below(cfgs.size())];
        EXPECT_NEAR(n.predict(u, cfg).total_w,
                    m.predict(u, cfg).total_w, 1e-6);
    }
}

TEST_P(ModelProperty, ScalerSlowdownIsAtLeastOneForSlowerClocks)
{
    Rng rng(GetParam() * 271);
    const model::LatencyScaler s({975, 3505});
    const gpu::ComponentArray u = randomUtil(rng);
    const auto &dev =
            gpu::DeviceDescriptor::get(gpu::DeviceKind::GtxTitanX);
    for (const auto &cfg : dev.allConfigs()) {
        if (cfg.core_mhz <= 975 && cfg.mem_mhz <= 3505) {
            EXPECT_GE(s.slowdown(u, cfg), 1.0 - 1e-9);
        }
        if (cfg.core_mhz >= 975 && cfg.mem_mhz >= 3505) {
            EXPECT_LE(s.slowdown(u, cfg), 1.0 + 1e-9);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ModelProperty,
                         ::testing::Range(1, 13));

/** Estimation must be robust to the stochastic streams: different
 *  campaign seeds land in the same accuracy band. */
class EstimatorSeedSweep : public ::testing::TestWithParam<int>
{
};

TEST_P(EstimatorSeedSweep, FitQualityIsSeedStable)
{
    sim::PhysicalGpu board(gpu::DeviceKind::GtxTitanX);
    model::CampaignOptions o;
    o.power_repetitions = 2;
    o.seed = static_cast<std::uint64_t>(GetParam()) * 7321;
    const auto data = model::runTrainingCampaign(
            board, ubench::buildSuite(), o);
    const auto fit = model::ModelEstimator().estimate(data);
    EXPECT_LT(fit.rmse_w, 12.0);
    EXPECT_LE(fit.iterations, 50);
    // The voltage knee shape survives any seed.
    const double v_low = fit.model.voltages({595, 3505}).core;
    const double v_high = fit.model.voltages({1164, 3505}).core;
    EXPECT_LT(v_low, 0.95);
    EXPECT_GT(v_high, 1.05);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EstimatorSeedSweep,
                         ::testing::Range(1, 7));

} // namespace
