/**
 * @file
 * Tests of the counters-only execution-time scaling model, including
 * a cross-check against the substrate's ground-truth timing.
 */

#include <gtest/gtest.h>

#include "core/latency_scaler.hh"
#include "sim/physical_gpu.hh"
#include "workloads/workloads.hh"

namespace
{

using namespace gpupm;
using gpu::Component;
using gpu::componentIndex;

const gpu::FreqConfig kRef{975, 3505};

TEST(LatencyScaler, IdentityAtReference)
{
    model::LatencyScaler s(kRef);
    gpu::ComponentArray u{};
    u[componentIndex(Component::SP)] = 0.7;
    u[componentIndex(Component::Dram)] = 0.5;
    EXPECT_NEAR(s.slowdown(u, kRef), 1.0, 1e-9);
    EXPECT_NEAR(s.scaledTime(0.02, u, kRef), 0.02, 1e-12);
}

TEST(LatencyScaler, ComputeBoundScalesWithCoreClock)
{
    model::LatencyScaler s(kRef);
    gpu::ComponentArray u{};
    u[componentIndex(Component::SP)] = 0.95;
    const double slow = s.slowdown(u, {595, 3505});
    EXPECT_NEAR(slow, 975.0 / 595.0, 0.12);
    // Memory clock changes barely matter for this kernel.
    EXPECT_NEAR(s.slowdown(u, {975, 810}), 1.0, 0.15);
}

TEST(LatencyScaler, MemoryBoundScalesWithMemClock)
{
    model::LatencyScaler s(kRef);
    gpu::ComponentArray u{};
    u[componentIndex(Component::Dram)] = 0.95;
    const double slow = s.slowdown(u, {975, 810});
    EXPECT_NEAR(slow, 3505.0 / 810.0, 0.5);
    EXPECT_NEAR(s.slowdown(u, {595, 3505}), 1.0, 0.35);
}

TEST(LatencyScaler, IdleSlackScalesWithCoreClock)
{
    // A kernel with no counted activity is latency-bound: time scales
    // with 1/fcore.
    model::LatencyScaler s(kRef);
    gpu::ComponentArray u{};
    EXPECT_NEAR(s.slowdown(u, {595, 3505}), 975.0 / 595.0, 1e-9);
}

TEST(LatencyScaler, FasterClocksNeverSlowDown)
{
    model::LatencyScaler s(kRef);
    gpu::ComponentArray u{};
    u[componentIndex(Component::SP)] = 0.5;
    u[componentIndex(Component::Dram)] = 0.5;
    EXPECT_LE(s.slowdown(u, {1164, 4005}), 1.0 + 1e-9);
    EXPECT_GE(s.slowdown(u, {595, 810}), 1.0);
}

TEST(LatencyScaler, CrossCheckAgainstGroundTruthTiming)
{
    // Predicted slowdowns of the validation workloads must track the
    // substrate's actual execution-time ratios.
    sim::PhysicalGpu board(gpu::DeviceKind::GtxTitanX);
    const model::LatencyScaler s(kRef);
    for (const auto &w : workloads::validationSet()) {
        const auto ref_prof = board.execute(w.demand, kRef);
        for (const gpu::FreqConfig cfg :
             {gpu::FreqConfig{595, 3505}, gpu::FreqConfig{975, 810},
              gpu::FreqConfig{1164, 4005}}) {
            const auto prof = board.execute(w.demand, cfg);
            const double truth = prof.time_s / ref_prof.time_s;
            const double pred = s.slowdown(ref_prof.util, cfg);
            EXPECT_NEAR(pred, truth, 0.25 * truth)
                    << w.name << " at (" << cfg.core_mhz << ","
                    << cfg.mem_mhz << ")";
        }
    }
}

TEST(LatencyScaler, InvalidInputsPanic)
{
    EXPECT_THROW(model::LatencyScaler({0, 3505}), std::logic_error);
    EXPECT_THROW(model::LatencyScaler(kRef, 0.5), std::logic_error);
    model::LatencyScaler s(kRef);
    EXPECT_THROW(s.slowdown(gpu::ComponentArray{}, {0, 0}),
                 std::logic_error);
    EXPECT_THROW(s.scaledTime(-1.0, gpu::ComponentArray{}, kRef),
                 std::logic_error);
}

} // namespace
