/**
 * @file
 * Tests of the resilient backend decorator: retry/backoff schedules,
 * deadline enforcement, MAD outlier rejection, quarantine.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "core/resilient.hh"

namespace
{

using namespace gpupm;

const gpu::FreqConfig kRef{975, 3505};

sim::KernelDemand
moderateKernel()
{
    sim::KernelDemand d;
    d.name = "moderate";
    d.warps_sp = 2e9;
    d.bytes_dram_rd = 2e9;
    d.bytes_l2_rd = 2e9;
    return d;
}

/**
 * A scripted backend: returns the next power from a fixed list and
 * reports a fixed virtual duration per call. Lets the resilience
 * policy be asserted against exactly known inputs.
 */
class ScriptedBackend : public model::MeasurementBackend,
                        public model::CallTimer
{
  public:
    explicit ScriptedBackend(std::vector<double> powers,
                             double call_seconds = 1.0)
        : powers_(std::move(powers)), call_seconds_(call_seconds)
    {}

    const gpu::DeviceDescriptor &descriptor() const override
    {
        return gpu::DeviceDescriptor::get(
                gpu::DeviceKind::GtxTitanX);
    }

    cupti::RawMetrics profileKernel(const sim::KernelDemand &,
                                    const gpu::FreqConfig &) override
    {
        cupti::RawMetrics rm;
        rm.acycles = 1e9;
        rm.l2_rd_bytes = next();
        rm.time_s = 0.01;
        return rm;
    }

    nvml::PowerMeasurement measurePower(const sim::KernelDemand &,
                                        const gpu::FreqConfig &, int,
                                        double) override
    {
        nvml::PowerMeasurement m;
        m.power_w = next();
        m.kernel_time_s = 0.01;
        m.run_duration_s = 1.0;
        m.samples_per_run = 10;
        m.effective = kRef;
        return m;
    }

    double measureIdlePower(const gpu::FreqConfig &) override
    {
        return next();
    }

    double lastCallSeconds() const override { return call_seconds_; }

    int calls() const { return static_cast<int>(cursor_); }

  private:
    double next()
    {
        const double v = powers_.at(cursor_ % powers_.size());
        ++cursor_;
        if (std::isinf(v))
            throw model::MeasurementError(model::MeasureErrc::Transient,
                                          "scripted transient");
        return v;
    }

    std::vector<double> powers_;
    double call_seconds_;
    std::size_t cursor_ = 0;
};

TEST(Resilient, BackoffScheduleIsDeterministicPerSeed)
{
    model::ResilientOptions opts;
    const auto a = model::ResilientBackend::backoffSchedule(opts, 9, 8);
    const auto b = model::ResilientBackend::backoffSchedule(opts, 9, 8);
    const auto c =
            model::ResilientBackend::backoffSchedule(opts, 10, 8);
    ASSERT_EQ(a.size(), 8u);
    for (std::size_t i = 0; i < a.size(); ++i)
        EXPECT_DOUBLE_EQ(a[i], b[i]);
    bool any_differs = false;
    for (std::size_t i = 0; i < a.size(); ++i)
        any_differs = any_differs || a[i] != c[i];
    EXPECT_TRUE(any_differs);
}

TEST(Resilient, BackoffScheduleGrowsGeometricallyToCap)
{
    model::ResilientOptions opts;
    opts.jitter_frac = 0.0; // exact geometric progression
    const auto d =
            model::ResilientBackend::backoffSchedule(opts, 1, 10);
    EXPECT_DOUBLE_EQ(d[0], opts.backoff_base_s);
    EXPECT_DOUBLE_EQ(d[1], 2.0 * opts.backoff_base_s);
    EXPECT_DOUBLE_EQ(d[9], opts.backoff_max_s);
    // With jitter the delays stay within the +/- jitter band.
    opts.jitter_frac = 0.25;
    const auto j =
            model::ResilientBackend::backoffSchedule(opts, 1, 10);
    for (std::size_t i = 0; i < j.size(); ++i)
        EXPECT_LE(j[i], opts.backoff_max_s * 1.25 + 1e-12);
}

TEST(Resilient, RetriesRecoverableFailuresAndSucceeds)
{
    // inf entries script transient throws; the retry loop must ride
    // them out and aggregate the good samples.
    const double inf = std::numeric_limits<double>::infinity();
    ScriptedBackend inner({inf, 100.0, inf, inf, 100.4, 99.8});
    model::ResilientOptions opts;
    opts.min_valid_repetitions = 2;
    model::ResilientBackend shield(inner, opts);

    auto e = shield.tryMeasurePower(moderateKernel(), kRef, 3, 1.0);
    ASSERT_TRUE(e.ok());
    EXPECT_DOUBLE_EQ(e.value().power_w, 100.0);
    EXPECT_EQ(shield.counters().retries, 3);
    EXPECT_GT(shield.counters().backoff_total_s, 0.0);
    EXPECT_EQ(shield.counters().call_failures, 0);
}

TEST(Resilient, FatalErrorsAreNotRetried)
{
    class FatalBackend : public ScriptedBackend
    {
      public:
        FatalBackend() : ScriptedBackend({0.0}) {}
        nvml::PowerMeasurement measurePower(const sim::KernelDemand &,
                                            const gpu::FreqConfig &,
                                            int, double) override
        {
            ++attempts;
            throw model::MeasurementError(model::MeasureErrc::Fatal,
                                          "sensor gone");
        }
        int attempts = 0;
    } inner;
    model::ResilientBackend shield(inner);
    auto e = shield.tryMeasurePower(moderateKernel(), kRef, 3, 1.0);
    ASSERT_FALSE(e.ok());
    EXPECT_EQ(e.error().code, model::MeasureErrc::Fatal);
    EXPECT_EQ(inner.attempts, 1);
    EXPECT_EQ(shield.counters().retries, 0);
    // The throwing interface surfaces the same typed error.
    EXPECT_THROW(shield.measurePower(moderateKernel(), kRef, 3, 1.0),
                 model::MeasurementError);
}

TEST(Resilient, DeadlineAbandonsWedgedCalls)
{
    // Every call "takes" 90 virtual seconds against a 30 s deadline:
    // all attempts time out, the call fails, and with a threshold of
    // two failed calls the configuration lands in quarantine.
    ScriptedBackend inner({100.0}, 90.0);
    model::ResilientOptions opts;
    opts.max_retries = 2;
    opts.call_timeout_s = 30.0;
    opts.quarantine_threshold = 2;
    model::ResilientBackend shield(inner, opts);

    auto e = shield.tryMeasurePower(moderateKernel(), kRef, 2, 1.0);
    ASSERT_FALSE(e.ok());
    EXPECT_EQ(shield.counters().timeouts, shield.counters().attempts);
    EXPECT_GE(shield.counters().call_failures, 2);
    EXPECT_TRUE(shield.isQuarantined(kRef));
}

TEST(Resilient, QuarantineFailsFast)
{
    ScriptedBackend inner({100.0}, 90.0); // always times out
    model::ResilientOptions opts;
    opts.max_retries = 1;
    opts.quarantine_threshold = 1;
    model::ResilientBackend shield(inner, opts);

    ASSERT_FALSE(
            shield.tryMeasurePower(moderateKernel(), kRef, 1, 1.0)
                    .ok());
    ASSERT_TRUE(shield.isQuarantined(kRef));
    ASSERT_EQ(shield.quarantined().size(), 1u);
    EXPECT_EQ(shield.quarantined()[0], kRef);

    const int calls_before = inner.calls();
    auto e = shield.tryMeasurePower(moderateKernel(), kRef, 1, 1.0);
    ASSERT_FALSE(e.ok());
    EXPECT_EQ(e.error().code, model::MeasureErrc::Quarantined);
    // Fail-fast: the inner backend was never called again.
    EXPECT_EQ(inner.calls(), calls_before);
    EXPECT_GT(shield.counters().quarantined_calls, 0);
    // Other configurations stay measurable.
    EXPECT_FALSE(shield.isQuarantined({595, 810}));
}

TEST(Resilient, MadRejectsSpikesAndNansFromPowerMedian)
{
    const double nan = std::numeric_limits<double>::quiet_NaN();
    ScriptedBackend inner({100.0, 100.4, 600.0, 99.8, nan, 100.2});
    model::ResilientOptions opts;
    opts.min_valid_repetitions = 2;
    model::ResilientBackend shield(inner, opts);

    auto e = shield.tryMeasurePower(moderateKernel(), kRef, 6, 1.0);
    ASSERT_TRUE(e.ok());
    // Median of the four survivors {100.0, 100.4, 99.8, 100.2}.
    EXPECT_DOUBLE_EQ(e.value().power_w, 100.1);
    EXPECT_EQ(shield.counters().outliers_rejected, 1);
    EXPECT_EQ(shield.counters().corrupt_samples, 1);
}

TEST(Resilient, TooFewSurvivorsIsACorruptSampleFailure)
{
    const double nan = std::numeric_limits<double>::quiet_NaN();
    ScriptedBackend inner({nan, nan, nan, 100.0});
    model::ResilientOptions opts;
    opts.min_valid_repetitions = 2;
    model::ResilientBackend shield(inner, opts);
    auto e = shield.tryMeasurePower(moderateKernel(), kRef, 4, 1.0);
    ASSERT_FALSE(e.ok());
    EXPECT_EQ(e.error().code, model::MeasureErrc::CorruptSample);
}

TEST(Resilient, ConsensusProfilingOutvotesDroppedEvents)
{
    // One of three collections reads l2_rd_bytes = 0 (a dropped event
    // group); the field-wise median keeps the intact value.
    ScriptedBackend inner({4e9, 0.0, 4e9});
    model::ResilientOptions opts;
    opts.profile_repetitions = 3;
    model::ResilientBackend shield(inner, opts);
    auto e = shield.tryProfileKernel(moderateKernel(), kRef);
    ASSERT_TRUE(e.ok());
    EXPECT_DOUBLE_EQ(e.value().l2_rd_bytes, 4e9);
    EXPECT_DOUBLE_EQ(e.value().acycles, 1e9);
}

TEST(Resilient, IdlePowerUsesSamePolicy)
{
    const double nan = std::numeric_limits<double>::quiet_NaN();
    ScriptedBackend inner({30.0, nan, 30.2, 29.8});
    model::ResilientBackend shield(inner);
    auto e = shield.tryMeasureIdlePower(kRef, 4);
    ASSERT_TRUE(e.ok());
    EXPECT_DOUBLE_EQ(e.value(), 30.0);
    EXPECT_EQ(shield.counters().corrupt_samples, 1);
}

TEST(Resilient, ExpectedAccessorsAssert)
{
    model::Expected<double> good(1.0);
    EXPECT_TRUE(good.ok());
    EXPECT_DOUBLE_EQ(good.value(), 1.0);
    EXPECT_THROW(good.error(), std::logic_error);
    model::Expected<double> bad(
            model::Status{model::MeasureErrc::Transient, "x"});
    EXPECT_FALSE(bad.ok());
    EXPECT_TRUE(bad.error().recoverable());
    EXPECT_THROW(bad.value(), std::logic_error);
}

TEST(Resilient, OptionValidationPanics)
{
    ScriptedBackend inner({100.0});
    model::ResilientOptions opts;
    opts.max_retries = -1;
    EXPECT_THROW(model::ResilientBackend(inner, opts),
                 std::logic_error);
    opts = {};
    opts.backoff_factor = 0.5;
    EXPECT_THROW(model::ResilientBackend(inner, opts),
                 std::logic_error);
}

} // namespace
