/**
 * @file
 * Tests of the Sec. III-D iterative estimator on synthetic training
 * data with a known generator: exact recovery in the noise-free case,
 * constraint satisfaction, and option behaviour.
 */

#include <gtest/gtest.h>

#include "common/random.hh"
#include "core/estimator.hh"

namespace
{

using namespace gpupm;
using gpu::Component;
using gpu::componentIndex;

/** A generator model with a paper-like voltage knee. */
model::DvfsPowerModel
generatorModel(const gpu::DeviceDescriptor &dev)
{
    model::ModelParams p;
    p.beta0 = 25.0;
    p.beta1 = 14.0;
    p.beta2 = 9.0;
    p.beta3 = 10.0;
    p.omega[componentIndex(Component::Int)] = 45.0;
    p.omega[componentIndex(Component::SP)] = 55.0;
    p.omega[componentIndex(Component::DP)] = 70.0;
    p.omega[componentIndex(Component::SF)] = 35.0;
    p.omega[componentIndex(Component::Shared)] = 20.0;
    p.omega[componentIndex(Component::L2)] = 30.0;
    p.omega[componentIndex(Component::Dram)] = 16.0;
    model::DvfsPowerModel m(dev.kind, dev.referenceConfig(), p);
    const double knee = 700.0, vfloor = 0.86, slope = 3.0e-4;
    const auto vc = [&](int f) {
        const double raw =
                f <= knee ? vfloor
                          : vfloor + slope * (f - knee);
        const double ref =
                vfloor + slope * (dev.default_core_mhz - knee);
        return raw / ref;
    };
    for (const auto &cfg : dev.allConfigs())
        m.setVoltages(cfg, {vc(cfg.core_mhz), 1.0});
    return m;
}

/** Synthetic utilization vectors spanning the component space. */
std::vector<gpu::ComponentArray>
syntheticUtils(std::uint64_t seed, std::size_t n)
{
    Rng rng(seed);
    std::vector<gpu::ComponentArray> out;
    // One pure vector per component pins each omega...
    for (std::size_t i = 0; i < gpu::kNumComponents; ++i) {
        gpu::ComponentArray u{};
        u[i] = 0.9;
        out.push_back(u);
    }
    // ...plus the all-idle row and random mixes.
    out.push_back(gpu::ComponentArray{});
    while (out.size() < n) {
        gpu::ComponentArray u{};
        for (double &x : u)
            x = rng.uniform() < 0.4 ? rng.uniform() : 0.0;
        out.push_back(u);
    }
    return out;
}

model::TrainingData
syntheticData(const gpu::DeviceDescriptor &dev,
              const model::DvfsPowerModel &gen, std::size_t n_bench)
{
    model::TrainingData data;
    data.device = dev.kind;
    data.reference = dev.referenceConfig();
    data.configs = dev.allConfigs();
    data.utils = syntheticUtils(42, n_bench);
    data.power_w.resize(data.utils.size());
    for (std::size_t b = 0; b < data.utils.size(); ++b)
        for (const auto &cfg : data.configs)
            data.power_w[b].push_back(
                    gen.predict(data.utils[b], cfg).total_w);
    return data;
}

const gpu::DeviceDescriptor &titanx()
{
    return gpu::DeviceDescriptor::get(gpu::DeviceKind::GtxTitanX);
}

TEST(Estimator, RecoversGeneratorOnNoiseFreeData)
{
    const auto gen = generatorModel(titanx());
    const auto data = syntheticData(titanx(), gen, 40);
    const model::ModelEstimator est;
    const auto fit = est.estimate(data);

    // Noise-free data has no noise floor, so the alternation keeps
    // polishing along a near-degenerate voltage/coefficient direction
    // and may use the whole iteration budget; what matters is that the
    // fit is essentially exact.
    EXPECT_LE(fit.iterations, 50);
    EXPECT_LT(fit.rmse_w, 1.0);

    // Predictions on fresh utilization vectors match the generator.
    // (The bilinear voltage/coefficient valley leaves a few-percent
    // indeterminacy at the configurations furthest from the
    // reference.)
    for (const auto &u : syntheticUtils(777, 20)) {
        for (const auto &cfg : data.configs) {
            const double want = gen.predict(u, cfg).total_w;
            const double got = fit.model.predict(u, cfg).total_w;
            EXPECT_NEAR(got, want, 0.055 * want + 1.0);
        }
    }
}

TEST(Estimator, RecoversVoltageKnee)
{
    const auto gen = generatorModel(titanx());
    const auto data = syntheticData(titanx(), gen, 40);
    const auto fit = model::ModelEstimator().estimate(data);

    // Fitted core voltages track the generator's two-region curve.
    for (int fc : titanx().core_freqs_mhz) {
        const gpu::FreqConfig cfg{fc, titanx().default_mem_mhz};
        EXPECT_NEAR(fit.model.voltages(cfg).core,
                    gen.voltages(cfg).core, 0.04)
                << fc << " MHz";
    }
}

TEST(Estimator, VoltagesSatisfyEq12Monotonicity)
{
    const auto gen = generatorModel(titanx());
    const auto data = syntheticData(titanx(), gen, 30);
    const auto fit = model::ModelEstimator().estimate(data);
    for (int fm : titanx().mem_freqs_mhz) {
        double prev = 0.0;
        for (int fc : titanx().core_freqs_mhz) {
            const double v = fit.model.voltages({fc, fm}).core;
            EXPECT_GE(v, prev - 1e-9);
            prev = v;
        }
    }
}

TEST(Estimator, ReferenceVoltagePinnedToOne)
{
    const auto gen = generatorModel(titanx());
    const auto data = syntheticData(titanx(), gen, 30);
    const auto fit = model::ModelEstimator().estimate(data);
    const auto v = fit.model.voltages(data.reference);
    EXPECT_DOUBLE_EQ(v.core, 1.0);
    EXPECT_DOUBLE_EQ(v.mem, 1.0);
}

TEST(Estimator, NonNegativeCoefficients)
{
    const auto gen = generatorModel(titanx());
    const auto data = syntheticData(titanx(), gen, 30);
    const auto fit = model::ModelEstimator().estimate(data);
    const auto &p = fit.model.params();
    EXPECT_GE(p.beta0, 0.0);
    EXPECT_GE(p.beta1, 0.0);
    EXPECT_GE(p.beta2, 0.0);
    EXPECT_GE(p.beta3, 0.0);
    for (double w : p.omega)
        EXPECT_GE(w, 0.0);
}

TEST(Estimator, SseHistoryIsRecordedAndImproves)
{
    const auto gen = generatorModel(titanx());
    const auto data = syntheticData(titanx(), gen, 30);
    const auto fit = model::ModelEstimator().estimate(data);
    ASSERT_GE(fit.sse_history.size(), 2u);
    EXPECT_LT(fit.sse_history.back(), fit.sse_history.front());
}

TEST(Estimator, NoVoltageAblationFitsWorseOnKneeData)
{
    const auto gen = generatorModel(titanx());
    const auto data = syntheticData(titanx(), gen, 30);

    model::EstimatorOptions no_v;
    no_v.fit_voltages = false;
    const auto flat = model::ModelEstimator(no_v).estimate(data);
    const auto full = model::ModelEstimator().estimate(data);
    // Data generated with a voltage knee cannot be fit by the V = 1
    // ablation anywhere near as well.
    EXPECT_GT(flat.rmse_w, 2.0 * full.rmse_w);
    // Ablation leaves every voltage at 1.
    for (const auto &cfg : data.configs) {
        EXPECT_DOUBLE_EQ(flat.model.voltages(cfg).core, 1.0);
        EXPECT_DOUBLE_EQ(flat.model.voltages(cfg).mem, 1.0);
    }
}

TEST(Estimator, WorksOnSingleMemFrequencyDevice)
{
    const auto &k40 =
            gpu::DeviceDescriptor::get(gpu::DeviceKind::TeslaK40c);
    const auto gen = generatorModel(k40);
    const auto data = syntheticData(k40, gen, 25);
    const auto fit = model::ModelEstimator().estimate(data);
    EXPECT_LT(fit.rmse_w, 2.0);
}

TEST(Estimator, RobustToMeasurementNoise)
{
    const auto gen = generatorModel(titanx());
    auto data = syntheticData(titanx(), gen, 40);
    Rng rng(5);
    for (auto &row : data.power_w)
        for (double &p : row)
            p *= rng.normal(1.0, 0.01);
    const auto fit = model::ModelEstimator().estimate(data);
    EXPECT_LT(fit.rmse_w, 4.0);
}

TEST(Estimator, RejectsMalformedTrainingData)
{
    model::TrainingData empty;
    empty.reference = titanx().referenceConfig();
    EXPECT_THROW(model::ModelEstimator().estimate(empty),
                 std::logic_error);

    const auto gen = generatorModel(titanx());
    auto bad = syntheticData(titanx(), gen, 10);
    bad.power_w.pop_back();
    EXPECT_THROW(model::ModelEstimator().estimate(bad),
                 std::logic_error);

    auto ragged = syntheticData(titanx(), gen, 10);
    ragged.power_w[3].pop_back();
    EXPECT_THROW(model::ModelEstimator().estimate(ragged),
                 std::logic_error);
}

TEST(Estimator, InvalidOptionsPanic)
{
    model::EstimatorOptions bad;
    bad.max_iterations = 0;
    EXPECT_THROW(model::ModelEstimator{bad}, std::logic_error);
    model::EstimatorOptions bad_v;
    bad_v.v_min = -1.0;
    EXPECT_THROW(model::ModelEstimator{bad_v}, std::logic_error);
}

TEST(Estimator, ConfigIndexLookups)
{
    const auto gen = generatorModel(titanx());
    const auto data = syntheticData(titanx(), gen, 8);
    EXPECT_EQ(data.configs[data.configIndex({975, 3505}).value()],
              (gpu::FreqConfig{975, 3505}));
    EXPECT_FALSE(data.configIndex({1, 2}).has_value());
}

/** Keep only the reference and diagonal (both-domain) perturbations:
 *  the Eq. 11 initialization then has no axis-aligned handle. */
model::TrainingData
diagonalOnlyData()
{
    const auto gen = generatorModel(titanx());
    const auto full = syntheticData(titanx(), gen, 12);
    model::TrainingData diag;
    diag.device = full.device;
    diag.reference = full.reference;
    diag.utils = full.utils;
    std::vector<std::size_t> keep;
    for (std::size_t c = 0; c < full.configs.size(); ++c) {
        const auto &cfg = full.configs[c];
        const bool is_ref = cfg == full.reference;
        const bool diagonal =
                cfg.core_mhz != full.reference.core_mhz &&
                cfg.mem_mhz != full.reference.mem_mhz;
        if (is_ref || diagonal) {
            keep.push_back(c);
            diag.configs.push_back(cfg);
        }
    }
    diag.power_w.resize(full.power_w.size());
    for (std::size_t b = 0; b < full.power_w.size(); ++b)
        for (const std::size_t c : keep)
            diag.power_w[b].push_back(full.power_w[b][c]);
    return diag;
}

TEST(EstimatorGuardrails, NonFiniteInputIsTypedBadInput)
{
    const auto gen = generatorModel(titanx());
    auto nan_util = syntheticData(titanx(), gen, 10);
    nan_util.utils[2][1] = std::numeric_limits<double>::quiet_NaN();
    auto res = model::ModelEstimator().tryEstimate(nan_util);
    ASSERT_FALSE(res.ok());
    EXPECT_EQ(res.error().code, model::FitErrc::BadInput);

    auto inf_pow = syntheticData(titanx(), gen, 10);
    inf_pow.power_w[1][0] = std::numeric_limits<double>::infinity();
    res = model::ModelEstimator().tryEstimate(inf_pow);
    ASSERT_FALSE(res.ok());
    EXPECT_EQ(res.error().code, model::FitErrc::BadInput);
}

TEST(EstimatorGuardrails, DiagonalOnlyGridIsDegenerate)
{
    const auto data = diagonalOnlyData();
    ASSERT_GE(data.configs.size(), 2u);
    auto res = model::ModelEstimator().tryEstimate(data);
    ASSERT_FALSE(res.ok());
    EXPECT_EQ(res.error().code, model::FitErrc::DegenerateGrid);
    EXPECT_NE(res.error().message.find("shares a clock domain"),
              std::string::npos)
            << res.error().message;
    EXPECT_EQ(model::fitErrcName(res.error().code),
              "DegenerateGrid");

    // The throwing convenience wrapper surfaces the same condition.
    EXPECT_THROW(model::ModelEstimator().estimate(data),
                 std::logic_error);
}

TEST(EstimatorGuardrails, DiagnosticsReportedOnSuccess)
{
    const auto gen = generatorModel(titanx());
    const auto data = syntheticData(titanx(), gen, 24);
    auto res = model::ModelEstimator().tryEstimate(data);
    ASSERT_TRUE(res.ok()) << res.error().message;
    // Pivot-ratio condition of a usable design is finite and >= 1;
    // rank covers at least the static + per-component columns probed
    // by the synthetic pure-utilization rows.
    EXPECT_GE(res.value().condition_number, 1.0);
    EXPECT_TRUE(std::isfinite(res.value().condition_number));
    EXPECT_GT(res.value().design_rank, gpu::kNumComponents);
    EXPECT_FALSE(res.value().sse_history.empty());
}

} // namespace

namespace
{

TEST(Estimator, SingleConfigurationDeviceStillFits)
{
    // Degenerate board with exactly one V-F configuration: the
    // initialization subset collapses to {F1} and the voltage fit has
    // nothing to do, but the coefficient fit must still produce a
    // usable model (the ridge resolves the static-term degeneracy).
    gpu::DeviceDescriptor desc =
            gpu::DeviceDescriptor::get(gpu::DeviceKind::GtxTitanX);
    desc.core_freqs_mhz = {975};
    desc.mem_freqs_mhz = {3505};

    const auto gen = generatorModel(titanx());
    model::TrainingData data;
    data.device = desc.kind;
    data.reference = desc.referenceConfig();
    data.configs = desc.allConfigs();
    ASSERT_EQ(data.configs.size(), 1u);
    data.utils = syntheticUtils(11, 30);
    data.power_w.resize(data.utils.size());
    for (std::size_t b = 0; b < data.utils.size(); ++b)
        data.power_w[b].push_back(
                gen.predict(data.utils[b], data.reference).total_w);

    const auto fit = model::ModelEstimator().estimate(data);
    // In-sample predictions are accurate even though the voltage
    // table is trivial.
    for (std::size_t b = 0; b < data.utils.size(); ++b) {
        const double want = data.power_w[b][0];
        const double got = fit.model
                                   .predict(data.utils[b],
                                            data.reference)
                                   .total_w;
        EXPECT_NEAR(got, want, 0.05 * want + 1.0);
    }
}

TEST(Estimator, IdleWeightImprovesConstantRecovery)
{
    // The idle-row weighting exists to pin the per-level constants;
    // with it, the fitted constant at the reference is closer to the
    // generator's idle power than without it.
    const auto gen = generatorModel(titanx());
    auto data = syntheticData(titanx(), gen, 40);
    Rng rng(3);
    // Perturb the non-idle rows only (utilization-drift-like error).
    for (std::size_t b = 0; b < data.utils.size(); ++b) {
        bool idle = true;
        for (double u : data.utils[b])
            idle &= u == 0.0;
        if (idle)
            continue;
        for (double &p : data.power_w[b])
            p *= rng.normal(1.0, 0.04);
    }

    const double truth =
            gen.predict(gpu::ComponentArray{}, data.reference).total_w;
    model::EstimatorOptions with;
    model::EstimatorOptions without;
    without.idle_row_weight = 1.0;
    const auto fw = model::ModelEstimator(with).estimate(data);
    const auto fo = model::ModelEstimator(without).estimate(data);
    const double err_with = std::abs(
            fw.model.predict(gpu::ComponentArray{}, data.reference)
                    .total_w -
            truth);
    const double err_without = std::abs(
            fo.model.predict(gpu::ComponentArray{}, data.reference)
                    .total_w -
            truth);
    EXPECT_LE(err_with, err_without + 0.5);
}

} // namespace
