/**
 * @file
 * Tests of the measurement campaigns and the predictor front end.
 */

#include <gtest/gtest.h>

#include "core/campaign.hh"
#include "core/latency_scaler.hh"
#include "core/predictor.hh"
#include "workloads/workloads.hh"

namespace
{

using namespace gpupm;
using gpu::Component;
using gpu::componentIndex;

model::CampaignOptions
fastOpts()
{
    model::CampaignOptions o;
    o.power_repetitions = 2;
    return o;
}

TEST(Campaign, TrainingDataHasExpectedShape)
{
    sim::PhysicalGpu board(gpu::DeviceKind::GtxTitanX);
    const auto suite = ubench::buildSuite();
    const auto data =
            model::runTrainingCampaign(board, suite, fastOpts());

    EXPECT_EQ(data.device, gpu::DeviceKind::GtxTitanX);
    EXPECT_EQ(data.reference, (gpu::FreqConfig{975, 3505}));
    EXPECT_EQ(data.configs.size(), 64u);
    EXPECT_EQ(data.utils.size(), 83u);
    EXPECT_EQ(data.power_w.size(), 83u);
    for (const auto &row : data.power_w) {
        EXPECT_EQ(row.size(), 64u);
        for (double p : row) {
            EXPECT_GT(p, 10.0);
            EXPECT_LT(p, 260.0);
        }
    }
}

TEST(Campaign, IdleRowHasZeroUtilAndLowestPower)
{
    sim::PhysicalGpu board(gpu::DeviceKind::GtxTitanX);
    const auto suite = ubench::buildSuite();
    const auto data =
            model::runTrainingCampaign(board, suite, fastOpts());
    const std::size_t idle = suite.size() - 1;
    ASSERT_EQ(suite[idle].family, ubench::Family::Idle);
    for (double u : data.utils[idle])
        EXPECT_DOUBLE_EQ(u, 0.0);
    const std::size_t ref_ci =
            data.configIndex(data.reference).value();
    for (std::size_t b = 0; b + 1 < suite.size(); ++b)
        EXPECT_GT(data.power_w[b][ref_ci],
                  data.power_w[idle][ref_ci]);
}

TEST(Campaign, MeasureAppReturnsAllRequestedConfigs)
{
    sim::PhysicalGpu board(gpu::DeviceKind::GtxTitanX);
    const auto w = workloads::cutcp();
    const std::vector<gpu::FreqConfig> configs = {
        {975, 3505}, {595, 3505}, {975, 810}};
    const auto m =
            model::measureApp(board, w.demand, configs, fastOpts());
    EXPECT_EQ(m.name, "CUTCP");
    ASSERT_EQ(m.power_w.size(), 3u);
    ASSERT_EQ(m.effective.size(), 3u);
    // A shared-memory-bound kernel is core-domain heavy: power falls
    // when the core clock falls.
    EXPECT_LT(m.power_w[1], m.power_w[0]);
    // Measured utilizations resemble the authored signature.
    EXPECT_NEAR(m.util[componentIndex(Component::Shared)], 0.51, 0.1);
}

TEST(Campaign, MeasureAppRejectsEmptyDemand)
{
    sim::PhysicalGpu board(gpu::DeviceKind::GtxTitanX);
    EXPECT_THROW(model::measureApp(board, sim::KernelDemand{},
                                   {{975, 3505}}, fastOpts()),
                 std::logic_error);
}

TEST(Predictor, SweepCoversVoltageTable)
{
    model::ModelParams p;
    p.beta0 = 50.0;
    model::DvfsPowerModel m(gpu::DeviceKind::GtxTitanX, {975, 3505},
                            p);
    m.setVoltages({975, 3505}, {1.0, 1.0});
    m.setVoltages({595, 3505}, {0.9, 1.0});
    model::Predictor pred(m);
    const auto pts = pred.sweep(gpu::ComponentArray{});
    EXPECT_EQ(pts.size(), 2u);
}

TEST(Predictor, LowestPowerRespectsFloors)
{
    model::ModelParams p;
    p.beta0 = 10.0;
    p.beta1 = 20.0;
    p.beta3 = 10.0;
    model::DvfsPowerModel m(gpu::DeviceKind::GtxTitanX, {975, 3505},
                            p);
    m.setVoltages({975, 3505}, {1.0, 1.0});
    m.setVoltages({595, 3505}, {0.9, 1.0});
    m.setVoltages({595, 810}, {0.9, 1.0});
    model::Predictor pred(m);

    const auto best = pred.lowestPower(gpu::ComponentArray{});
    EXPECT_EQ(best.cfg.core_mhz, 595);
    EXPECT_EQ(best.cfg.mem_mhz, 810);

    const auto floored =
            pred.lowestPower(gpu::ComponentArray{}, 900, 3000);
    EXPECT_EQ(floored.cfg.core_mhz, 975);
    EXPECT_EQ(floored.cfg.mem_mhz, 3505);

    EXPECT_THROW(pred.lowestPower(gpu::ComponentArray{}, 5000, 0),
                 std::logic_error);
}

TEST(Predictor, CoreVoltageCurveIsSortedByClock)
{
    model::ModelParams p;
    model::DvfsPowerModel m(gpu::DeviceKind::GtxTitanX, {975, 3505},
                            p);
    m.setVoltages({975, 3505}, {1.0, 1.0});
    m.setVoltages({595, 3505}, {0.9, 1.0});
    m.setVoltages({1164, 3505}, {1.1, 1.0});
    m.setVoltages({595, 810}, {0.85, 1.0});
    model::Predictor pred(m);
    const auto curve = pred.coreVoltageCurve(3505);
    ASSERT_EQ(curve.size(), 3u);
    EXPECT_EQ(curve[0].first, 595);
    EXPECT_EQ(curve[2].first, 1164);
    EXPECT_DOUBLE_EQ(curve[2].second, 1.1);
}

} // namespace

namespace
{

TEST(Backend, SimulatedBackendMatchesDirectCampaignPath)
{
    // The board overload of runTrainingCampaign delegates to
    // SimulatedBackend; driving the backend directly with the same
    // seed must produce bit-identical training data.
    sim::PhysicalGpu board(gpu::DeviceKind::GtxTitanX);
    model::CampaignOptions o;
    o.power_repetitions = 2;
    const auto suite = ubench::buildSuite();

    const auto direct = model::runTrainingCampaign(board, suite, o);
    model::SimulatedBackend backend(board, o.seed);
    const auto via_backend =
            model::runTrainingCampaign(backend, suite, o);

    ASSERT_EQ(direct.power_w.size(), via_backend.power_w.size());
    for (std::size_t b = 0; b < direct.power_w.size(); ++b) {
        for (std::size_t c = 0; c < direct.configs.size(); ++c)
            EXPECT_DOUBLE_EQ(direct.power_w[b][c],
                             via_backend.power_w[b][c]);
        for (std::size_t i = 0; i < gpu::kNumComponents; ++i)
            EXPECT_DOUBLE_EQ(direct.utils[b][i],
                             via_backend.utils[b][i]);
    }
}

TEST(Backend, ExposesDescriptorAndIdlePower)
{
    sim::PhysicalGpu board(gpu::DeviceKind::TeslaK40c);
    model::SimulatedBackend backend(board, 9);
    EXPECT_EQ(backend.descriptor().kind, gpu::DeviceKind::TeslaK40c);
    const double idle =
            backend.measureIdlePower({875, 3004});
    const double truth = board.idlePower({875, 3004}).total_w;
    EXPECT_NEAR(idle, truth, 0.05 * truth + 1.0);
}

} // namespace

namespace
{

TEST(Predictor, ParetoFrontierIsNonDominatedAndSorted)
{
    sim::PhysicalGpu board(gpu::DeviceKind::GtxTitanX);
    model::CampaignOptions o;
    o.power_repetitions = 2;
    const auto data =
            model::runTrainingCampaign(board, ubench::buildSuite(), o);
    const auto fit = model::ModelEstimator().estimate(data);
    model::Predictor pred(fit.model);

    gpu::ComponentArray u{};
    u[componentIndex(Component::SP)] = 0.5;
    u[componentIndex(Component::Dram)] = 0.6;
    const auto frontier = pred.paretoFrontier(u);
    ASSERT_GE(frontier.size(), 2u);

    // Sorted by power, strictly improving slowdown.
    for (std::size_t i = 1; i < frontier.size(); ++i) {
        EXPECT_LE(frontier[i - 1].power_w, frontier[i].power_w);
        EXPECT_GT(frontier[i - 1].slowdown, frontier[i].slowdown);
    }

    // No sweep point dominates any frontier point.
    for (const auto &pt : pred.sweep(u)) {
        const model::LatencyScaler scaler(fit.model.reference());
        const double slow = scaler.slowdown(u, pt.cfg);
        for (const auto &f : frontier) {
            const bool dominates =
                    pt.prediction.total_w < f.power_w - 1e-9 &&
                    slow < f.slowdown - 1e-9;
            EXPECT_FALSE(dominates);
        }
    }

    // Extremes: the frontier ends at the fastest point.
    EXPECT_NEAR(frontier.back().slowdown, 1.0, 0.2);
}

} // namespace
