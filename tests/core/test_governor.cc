/**
 * @file
 * Tests of the online DVFS governor (the Sec. VII future-work
 * feature): first-call profiling, decision caching, objective and
 * constraint behaviour, verified against the board's ground truth.
 */

#include <gtest/gtest.h>

#include "core/campaign.hh"
#include "core/governor.hh"
#include "core/metrics.hh"
#include "core/predictor.hh"
#include "workloads/workloads.hh"

namespace
{

using namespace gpupm;

struct GovernorFixture : public ::testing::Test
{
    static const model::EstimationResult &
    fitted()
    {
        static const model::EstimationResult fit = [] {
            sim::PhysicalGpu b(gpu::DeviceKind::GtxTitanX);
            model::CampaignOptions o;
            o.power_repetitions = 3;
            auto data = model::runTrainingCampaign(
                    b, ubench::buildSuite(), o);
            return model::ModelEstimator().estimate(data);
        }();
        return fit;
    }

    sim::PhysicalGpu board{gpu::DeviceKind::GtxTitanX};
    nvml::Device device{board, 31};
    cupti::Profiler profiler{board, 32};
};

TEST_F(GovernorFixture, FirstCallProfilesAndCaches)
{
    model::GovernorPolicy policy;
    policy.objective = model::GovernorObjective::MinEnergy;
    model::OnlineGovernor gov(fitted().model, device, profiler,
                              policy);

    const auto app = workloads::blackScholes();
    EXPECT_FALSE(gov.cachedDecision(app.demand.name).has_value());

    const auto first = gov.onKernelLaunch(app.demand);
    EXPECT_FALSE(first.from_cache);
    EXPECT_TRUE(gov.cachedDecision(app.demand.name).has_value());

    const auto second = gov.onKernelLaunch(app.demand);
    EXPECT_TRUE(second.from_cache);
    EXPECT_EQ(second.cfg, first.cfg);
    // The device now runs at the chosen clocks.
    EXPECT_EQ(device.currentClocks(), first.cfg);
}

TEST_F(GovernorFixture, MemoryBoundKernelKeepsMemoryClockHigh)
{
    model::GovernorPolicy policy;
    policy.objective = model::GovernorObjective::MinEnergy;
    policy.max_slowdown = 1.10;
    model::OnlineGovernor gov(fitted().model, device, profiler,
                              policy);
    // BlackScholes is DRAM-bound: dropping fmem would blow the
    // slowdown budget, so the governor must keep it at/near the top.
    const auto d = gov.onKernelLaunch(workloads::blackScholes().demand);
    EXPECT_GE(d.cfg.mem_mhz, 3300);
    EXPECT_LE(d.predicted_slowdown, 1.10 + 1e-9);
}

TEST_F(GovernorFixture, ComputeBoundKernelCanDropMemoryClock)
{
    model::GovernorPolicy policy;
    policy.objective = model::GovernorObjective::MinEnergy;
    policy.max_slowdown = 1.10;
    model::OnlineGovernor gov(fitted().model, device, profiler,
                              policy);
    // CUTCP barely touches DRAM: the energy-optimal choice drops the
    // memory clock.
    const auto d = gov.onKernelLaunch(workloads::cutcp().demand);
    EXPECT_LT(d.cfg.mem_mhz, 3505);
}

TEST_F(GovernorFixture, PowerCapIsRespectedOnGroundTruth)
{
    model::GovernorPolicy policy;
    policy.objective = model::GovernorObjective::PowerCap;
    policy.power_cap_w = 120.0;
    model::OnlineGovernor gov(fitted().model, device, profiler,
                              policy);

    for (const auto &w :
         {workloads::blackScholes(), workloads::cutcp()}) {
        const auto d = gov.onKernelLaunch(w.demand);
        EXPECT_LE(d.predicted_power_w, 120.0);
        // True power at the chosen configuration honours the cap
        // within the model's error band (which reaches ~15-20% at the
        // configurations furthest from the reference — Fig. 8).
        const auto prof = board.execute(w.demand, d.cfg);
        const double truth = board.truePower(prof, d.cfg).total_w;
        EXPECT_LE(truth, 120.0 * 1.25) << w.name;
    }
}

TEST_F(GovernorFixture, PowerCapPicksFastestUnderBudget)
{
    model::GovernorPolicy policy;
    policy.objective = model::GovernorObjective::PowerCap;
    policy.power_cap_w = 150.0;
    model::OnlineGovernor gov(fitted().model, device, profiler,
                              policy);
    const auto d = gov.onKernelLaunch(workloads::cutcp().demand);
    // Any configuration with strictly faster predicted execution must
    // violate the budget.
    model::Predictor pred(fitted().model);
    const model::LatencyScaler scaler(fitted().model.reference());
    // Re-derive the utilization the governor saw.
    cupti::Profiler p2(board, 32);
    const auto rm = p2.profile(workloads::cutcp().demand,
                               board.descriptor().referenceConfig());
    const auto util = model::utilizationsFromMetrics(
            rm, board.descriptor(),
            board.descriptor().referenceConfig());
    for (const auto &pt : pred.sweep(util)) {
        const double slow = scaler.slowdown(util, pt.cfg);
        if (slow < d.predicted_slowdown - 1e-9) {
            EXPECT_GT(pt.prediction.total_w, 150.0);
        }
    }
}

TEST_F(GovernorFixture, MinEnergySavesEnergyOnGroundTruth)
{
    model::GovernorPolicy policy;
    policy.objective = model::GovernorObjective::MinEnergy;
    model::OnlineGovernor gov(fitted().model, device, profiler,
                              policy);
    const auto app = workloads::cutcp();
    const auto d = gov.onKernelLaunch(app.demand);

    const auto ref = board.descriptor().referenceConfig();
    const auto ref_prof = board.execute(app.demand, ref);
    const double e_ref =
            board.truePower(ref_prof, ref).total_w * ref_prof.time_s;
    const auto prof = board.execute(app.demand, d.cfg);
    const double e_gov =
            board.truePower(prof, d.cfg).total_w * prof.time_s;
    EXPECT_LT(e_gov, e_ref);
}

TEST_F(GovernorFixture, ImpossibleConstraintsFallBackGracefully)
{
    model::GovernorPolicy policy;
    policy.objective = model::GovernorObjective::PowerCap;
    policy.power_cap_w = 1.0; // nothing satisfies this
    model::OnlineGovernor gov(fitted().model, device, profiler,
                              policy);
    const auto d = gov.onKernelLaunch(workloads::cutcp().demand);
    // Falls back to the minimum-power configuration.
    EXPECT_GT(d.predicted_power_w, 1.0);
    EXPECT_EQ(d.cfg.core_mhz, board.descriptor().minCoreMhz());
}

TEST_F(GovernorFixture, ResetForgetsDecisions)
{
    model::OnlineGovernor gov(fitted().model, device, profiler, {});
    const auto app = workloads::cutcp();
    gov.onKernelLaunch(app.demand);
    ASSERT_TRUE(gov.cachedDecision(app.demand.name).has_value());
    gov.reset();
    EXPECT_FALSE(gov.cachedDecision(app.demand.name).has_value());
}

TEST_F(GovernorFixture, InvalidPoliciesPanic)
{
    model::GovernorPolicy bad_cap;
    bad_cap.objective = model::GovernorObjective::PowerCap;
    bad_cap.power_cap_w = 0.0;
    EXPECT_THROW(model::OnlineGovernor(fitted().model, device,
                                       profiler, bad_cap),
                 std::logic_error);
    model::GovernorPolicy bad_slow;
    bad_slow.max_slowdown = 0.5;
    EXPECT_THROW(model::OnlineGovernor(fitted().model, device,
                                       profiler, bad_slow),
                 std::logic_error);
}

TEST_F(GovernorFixture, AnonymousKernelPanics)
{
    model::OnlineGovernor gov(fitted().model, device, profiler, {});
    sim::KernelDemand anon;
    anon.warps_sp = 1e9;
    EXPECT_THROW(gov.onKernelLaunch(anon), std::logic_error);
}

} // namespace

namespace
{

TEST_F(GovernorFixture, MinPowerPicksTheFloorConfiguration)
{
    model::GovernorPolicy policy;
    policy.objective = model::GovernorObjective::MinPower;
    model::OnlineGovernor gov(fitted().model, device, profiler,
                              policy);
    const auto d = gov.onKernelLaunch(workloads::cutcp().demand);
    // Unconstrained minimum power lives at the lowest clocks.
    EXPECT_EQ(d.cfg.core_mhz, board.descriptor().minCoreMhz());
    EXPECT_EQ(d.cfg.mem_mhz,
              board.descriptor().mem_freqs_mhz.back());
}

TEST_F(GovernorFixture, EnergyDelayPrefersFasterConfigsThanEnergy)
{
    model::GovernorPolicy e_policy;
    e_policy.objective = model::GovernorObjective::MinEnergy;
    model::GovernorPolicy edp_policy;
    edp_policy.objective = model::GovernorObjective::MinEnergyDelay;

    model::OnlineGovernor e_gov(fitted().model, device, profiler,
                                e_policy);
    model::OnlineGovernor edp_gov(fitted().model, device, profiler,
                                  edp_policy);
    const auto app = workloads::cutcp();
    const auto de = e_gov.onKernelLaunch(app.demand);
    const auto dedp = edp_gov.onKernelLaunch(app.demand);
    // EDP weights delay twice: it never chooses a slower point than
    // the pure-energy objective.
    EXPECT_LE(dedp.predicted_slowdown,
              de.predicted_slowdown + 1e-9);
}

TEST_F(GovernorFixture, DistinctKernelsGetDistinctDecisions)
{
    model::GovernorPolicy policy;
    policy.objective = model::GovernorObjective::MinEnergy;
    policy.max_slowdown = 1.10;
    model::OnlineGovernor gov(fitted().model, device, profiler,
                              policy);
    const auto mem_bound =
            gov.onKernelLaunch(workloads::blackScholes().demand);
    const auto compute_bound =
            gov.onKernelLaunch(workloads::cutcp().demand);
    // A DRAM-bound and a shared-bound kernel must not land on the
    // same memory clock under a tight slowdown budget.
    EXPECT_NE(mem_bound.cfg.mem_mhz, compute_bound.cfg.mem_mhz);
}

} // namespace

namespace
{

TEST_F(GovernorFixture, ReprofilingFollowsPhaseChanges)
{
    model::GovernorPolicy policy;
    policy.objective = model::GovernorObjective::MinEnergy;
    policy.max_slowdown = 1.10;
    policy.reprofile_period = 3;
    model::OnlineGovernor gov(fitted().model, device, profiler,
                              policy);

    // Phase 1: a compute-bound kernel named "solver".
    auto phase1 = workloads::cutcp().demand;
    phase1.name = "solver";
    const auto d1 = gov.onKernelLaunch(phase1);
    EXPECT_FALSE(d1.from_cache);
    EXPECT_TRUE(gov.onKernelLaunch(phase1).from_cache);
    EXPECT_TRUE(gov.onKernelLaunch(phase1).from_cache);

    // Phase change: the same kernel name becomes DRAM-bound. The next
    // launch crosses the re-profile period and re-decides.
    auto phase2 = workloads::blackScholes().demand;
    phase2.name = "solver";
    const auto d2 = gov.onKernelLaunch(phase2);
    EXPECT_FALSE(d2.from_cache);
    // A DRAM-bound phase cannot keep the low memory clock.
    EXPECT_GT(d2.cfg.mem_mhz, d1.cfg.mem_mhz);
}

TEST_F(GovernorFixture, NoReprofilingByDefault)
{
    model::OnlineGovernor gov(fitted().model, device, profiler, {});
    const auto app = workloads::cutcp();
    gov.onKernelLaunch(app.demand);
    for (int i = 0; i < 20; ++i)
        EXPECT_TRUE(gov.onKernelLaunch(app.demand).from_cache);
}

} // namespace
