/**
 * @file
 * Hand-computed checks of the Eq. 8-10 utilization metrics.
 */

#include <gtest/gtest.h>

#include "core/metrics.hh"

namespace
{

using namespace gpupm;
using gpu::Component;
using gpu::componentIndex;

const gpu::DeviceDescriptor &titanx()
{
    return gpu::DeviceDescriptor::get(gpu::DeviceKind::GtxTitanX);
}

TEST(Metrics, Eq8HandComputed)
{
    // GTX Titan X: 128 SP/INT lanes -> 4 warps/cycle at saturation.
    cupti::RawMetrics rm;
    rm.time_s = 1.0;
    rm.acycles = 1e9;
    rm.warps_sp_int = 2e9;  // per-SM: half of the 4e9 saturation count
    rm.inst_int = 0.0;
    rm.inst_sp = 1.0; // all SP
    const auto u = model::utilizationsFromMetrics(
            rm, titanx(), titanx().referenceConfig());
    EXPECT_NEAR(u[componentIndex(Component::SP)], 0.5, 1e-9);
    EXPECT_DOUBLE_EQ(u[componentIndex(Component::Int)], 0.0);
}

TEST(Metrics, Eq10SplitsByInstructionMix)
{
    cupti::RawMetrics rm;
    rm.time_s = 1.0;
    rm.acycles = 1e9;
    rm.warps_sp_int = 2e9;
    rm.inst_int = 3.0e6;
    rm.inst_sp = 1.0e6;
    const auto u = model::utilizationsFromMetrics(
            rm, titanx(), titanx().referenceConfig());
    // 3:1 split of the 0.5 combined utilization.
    EXPECT_NEAR(u[componentIndex(Component::Int)], 0.375, 1e-9);
    EXPECT_NEAR(u[componentIndex(Component::SP)], 0.125, 1e-9);
}

TEST(Metrics, Eq8DpAndSfUseTheirUnitCounts)
{
    cupti::RawMetrics rm;
    rm.time_s = 1.0;
    rm.acycles = 1e9;
    // 4 DP lanes -> 0.125 warps/cycle saturation.
    rm.warps_dp = 0.0625e9;
    // 32 SF lanes -> 1 warp/cycle saturation.
    rm.warps_sf = 0.5e9;
    const auto u = model::utilizationsFromMetrics(
            rm, titanx(), titanx().referenceConfig());
    EXPECT_NEAR(u[componentIndex(Component::DP)], 0.5, 1e-9);
    EXPECT_NEAR(u[componentIndex(Component::SF)], 0.5, 1e-9);
}

TEST(Metrics, Eq9BandwidthRatios)
{
    const auto ref = titanx().referenceConfig();
    cupti::RawMetrics rm;
    rm.time_s = 0.5;
    rm.acycles = 1.0; // avoid the zero-cycles guard
    rm.dram_rd_bytes =
            0.3 * titanx().peakBandwidth(Component::Dram, ref) * 0.5;
    rm.dram_wr_bytes =
            0.1 * titanx().peakBandwidth(Component::Dram, ref) * 0.5;
    rm.l2_rd_bytes =
            0.25 * titanx().peakBandwidth(Component::L2, ref) * 0.5;
    rm.shared_ld_bytes =
            0.2 * titanx().peakBandwidth(Component::Shared, ref) * 0.5;
    const auto u = model::utilizationsFromMetrics(rm, titanx(), ref);
    EXPECT_NEAR(u[componentIndex(Component::Dram)], 0.4, 1e-9);
    EXPECT_NEAR(u[componentIndex(Component::L2)], 0.25, 1e-9);
    EXPECT_NEAR(u[componentIndex(Component::Shared)], 0.2, 1e-9);
}

TEST(Metrics, OverflowingCountersClampToOne)
{
    const auto ref = titanx().referenceConfig();
    cupti::RawMetrics rm;
    rm.time_s = 1.0;
    rm.acycles = 1e9;
    rm.warps_sp_int = 100e9; // absurdly over-reported
    rm.inst_sp = 1.0;
    rm.dram_rd_bytes =
            5.0 * titanx().peakBandwidth(Component::Dram, ref);
    const auto u = model::utilizationsFromMetrics(rm, titanx(), ref);
    EXPECT_DOUBLE_EQ(u[componentIndex(Component::SP)], 1.0);
    EXPECT_DOUBLE_EQ(u[componentIndex(Component::Dram)], 1.0);
}

TEST(Metrics, ZeroCyclesYieldsZeroComputeUtilization)
{
    cupti::RawMetrics rm;
    rm.time_s = 1.0;
    rm.acycles = 0.0;
    rm.warps_sp_int = 1e9;
    const auto u = model::utilizationsFromMetrics(
            rm, titanx(), titanx().referenceConfig());
    EXPECT_DOUBLE_EQ(u[componentIndex(Component::SP)], 0.0);
    EXPECT_DOUBLE_EQ(u[componentIndex(Component::Int)], 0.0);
}

TEST(Metrics, MissingTimePanics)
{
    cupti::RawMetrics rm;
    rm.time_s = 0.0;
    EXPECT_THROW(model::utilizationsFromMetrics(
                         rm, titanx(), titanx().referenceConfig()),
                 std::logic_error);
}

} // namespace
