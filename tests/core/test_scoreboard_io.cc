/**
 * @file
 * Scoreboard persistence tests: v2 envelope round-trips (with and
 * without raw residuals), legacy raw-JSON compatibility, malformed
 * input handling (truncation, checksum, version), and the
 * validate-on-load defense against hand-edited headline numbers.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <limits>

#include "core/model_io.hh"
#include "core/validate.hh"
#include "obs/scoreboard.hh"

namespace
{

using namespace gpupm;

obs::ResidualSample
sample(const std::string &app, int core, int mem, double meas,
       double pred)
{
    obs::ResidualSample s;
    s.app = app;
    s.cfg = {core, mem};
    s.measured_w = meas;
    s.predicted_w = pred;
    s.constant_w = 40.0;
    for (std::size_t i = 0; i < s.component_w.size(); ++i)
        s.component_w[i] = 0.25 * static_cast<double>(i + 1);
    s.baseline_w = {{"abe", meas * 1.1}, {"cubic", meas * 0.9}};
    return s;
}

obs::Scoreboard
handScoreboard()
{
    std::vector<obs::ResidualSample> v;
    for (int core : {600, 1000})
        for (int mem : {800, 3500}) {
            v.push_back(sample("stream", core, mem, 100.0, 107.0));
            v.push_back(sample("dgemm", core, mem, 180.0, 171.0));
        }
    return obs::Scoreboard::fromSamples(1, "GTX Titan X",
                                        {1000, 3500}, std::move(v));
}

std::string
tempPath(const char *name)
{
    return (std::filesystem::temp_directory_path() / name).string();
}

TEST(ScoreboardIo, V2RoundTripWithSamples)
{
    const auto sb = handScoreboard();
    const auto text = model::serializeScoreboard(sb, true);
    EXPECT_EQ(text.rfind("gpupm-file scoreboard v2 crc32 ", 0), 0u)
            << text.substr(0, 60);
    auto back = model::tryParseScoreboard(text);
    ASSERT_TRUE(back.ok()) << back.error().message;
    const auto &b = back.value();
    EXPECT_EQ(b.device, sb.device);
    EXPECT_EQ(b.device_name, sb.device_name);
    EXPECT_EQ(b.reference, sb.reference);
    EXPECT_EQ(b.overall.samples, sb.overall.samples);
    EXPECT_DOUBLE_EQ(b.overall.mae_pct, sb.overall.mae_pct);
    EXPECT_DOUBLE_EQ(b.overall.rmse_w, sb.overall.rmse_w);
    ASSERT_EQ(b.per_app.size(), sb.per_app.size());
    EXPECT_EQ(b.per_app[0].app, sb.per_app[0].app);
    EXPECT_EQ(b.per_config.size(), sb.per_config.size());
    EXPECT_EQ(b.core_marginal.size(), sb.core_marginal.size());
    EXPECT_EQ(b.mem_marginal.size(), sb.mem_marginal.size());
    ASSERT_EQ(b.baselines.size(), sb.baselines.size());
    EXPECT_EQ(b.baselines[0].name, sb.baselines[0].name);
    EXPECT_DOUBLE_EQ(b.baselines[0].mae_pct, sb.baselines[0].mae_pct);
    ASSERT_EQ(b.samples.size(), sb.samples.size());
    EXPECT_EQ(b.samples[0].app, sb.samples[0].app);
    EXPECT_DOUBLE_EQ(b.samples[0].measured_w,
                     sb.samples[0].measured_w);
    ASSERT_EQ(b.samples[0].baseline_w.size(), 2u);
    EXPECT_EQ(b.samples[0].baseline_w[0].first, "abe");
}

TEST(ScoreboardIo, SummaryOnlyFormDropsResidualsKeepsAggregates)
{
    const auto sb = handScoreboard();
    auto back = model::tryParseScoreboard(
            model::serializeScoreboard(sb, false));
    ASSERT_TRUE(back.ok()) << back.error().message;
    EXPECT_TRUE(back.value().samples.empty());
    EXPECT_EQ(back.value().overall.samples, sb.overall.samples);
    EXPECT_DOUBLE_EQ(back.value().overall.mae_pct,
                     sb.overall.mae_pct);
    ASSERT_EQ(back.value().per_app.size(), sb.per_app.size());
    ASSERT_EQ(back.value().baselines.size(), sb.baselines.size());
}

TEST(ScoreboardIo, KindDetectionCoversEnvelopeAndRawJson)
{
    const auto sb = handScoreboard();
    auto enveloped =
            model::detectFileKind(model::serializeScoreboard(sb));
    ASSERT_TRUE(enveloped.ok());
    EXPECT_EQ(enveloped.value(), model::FileKind::Scoreboard);
    // The raw JSON payload (what `gpupm audit --json` prints and the
    // goldens store) is recognized without the envelope.
    auto raw = model::detectFileKind(sb.toJson(false));
    ASSERT_TRUE(raw.ok());
    EXPECT_EQ(raw.value(), model::FileKind::Scoreboard);
}

TEST(ScoreboardIo, LegacyRawJsonLoadsByDefaultButNotUnderStrict)
{
    const auto sb = handScoreboard();
    const auto raw = sb.toJson(true);
    auto back = model::tryParseScoreboard(raw);
    ASSERT_TRUE(back.ok()) << back.error().message;
    EXPECT_EQ(back.value().overall.samples, sb.overall.samples);

    const model::LoadOptions strict{.allow_legacy = false,
                                    .validate = false};
    auto rejected = model::tryParseScoreboard(raw, strict);
    ASSERT_FALSE(rejected.ok());
    EXPECT_EQ(rejected.error().code, model::IoErrc::VersionMismatch);
}

TEST(ScoreboardIo, TruncationIsAParseError)
{
    const auto text =
            model::serializeScoreboard(handScoreboard(), true);
    for (const std::size_t keep :
         {std::size_t{0}, std::size_t{5}, text.size() / 2,
          text.size() - 1}) {
        auto res = model::tryParseScoreboard(text.substr(0, keep));
        ASSERT_FALSE(res.ok()) << "kept " << keep << " bytes";
        EXPECT_EQ(res.error().code, model::IoErrc::ParseError)
                << res.error().message;
    }
}

TEST(ScoreboardIo, PayloadBitFlipIsAChecksumMismatch)
{
    auto text = model::serializeScoreboard(handScoreboard(), true);
    const auto pos = text.find("mae_pct") + 2;
    ASSERT_LT(pos, text.size());
    text[pos] = text[pos] == 'x' ? 'y' : 'x';
    auto res = model::tryParseScoreboard(text);
    ASSERT_FALSE(res.ok());
    EXPECT_EQ(res.error().code, model::IoErrc::ChecksumMismatch)
            << res.error().message;
}

TEST(ScoreboardIo, WrongVersionIsAVersionMismatch)
{
    auto text = model::serializeScoreboard(handScoreboard());
    text.replace(text.find(" v2 "), 4, " v9 ");
    auto res = model::tryParseScoreboard(text);
    ASSERT_FALSE(res.ok());
    EXPECT_EQ(res.error().code, model::IoErrc::VersionMismatch);
}

TEST(ScoreboardIo, GarbageIsATypedParseError)
{
    auto res = model::tryParseScoreboard("not a scoreboard");
    ASSERT_FALSE(res.ok());
    EXPECT_EQ(res.error().code, model::IoErrc::ParseError);
    auto empty = model::tryParseScoreboard("");
    ASSERT_FALSE(empty.ok());
}

TEST(ScoreboardIo, TamperedHeadlineMaeFailsValidateOnLoad)
{
    auto sb = handScoreboard();
    sb.overall.mae_pct += 3.0; // hand-edited headline number
    const auto report = model::validateScoreboard(sb);
    EXPECT_FALSE(report.ok());

    const auto text = model::serializeScoreboard(sb, true);
    // Parses fine when validation is off...
    EXPECT_TRUE(model::tryParseScoreboard(text).ok());
    // ...but a --validate load rejects it.
    const model::LoadOptions checked{.allow_legacy = true,
                                     .validate = true};
    auto res = model::tryParseScoreboard(text, checked);
    ASSERT_FALSE(res.ok());
    EXPECT_EQ(res.error().code, model::IoErrc::ValidationError);
    EXPECT_NE(res.error().message.find("summary-samples-inconsistent"),
              std::string::npos)
            << res.error().message;
}

TEST(ScoreboardIo, ValidateFlagsNonFiniteAndNegativeStats)
{
    auto sb = handScoreboard();
    sb.per_app[0].stats.rmse_w = -1.0;
    EXPECT_FALSE(model::validateScoreboard(sb).ok());
    auto sb2 = handScoreboard();
    sb2.overall.mae_pct = std::numeric_limits<double>::quiet_NaN();
    EXPECT_FALSE(model::validateScoreboard(sb2).ok());
    // The untampered scoreboard validates cleanly.
    EXPECT_TRUE(model::validateScoreboard(handScoreboard()).ok());
}

TEST(ScoreboardIo, FileRoundTripViaTypedSaveAndLoad)
{
    const std::string path = tempPath("gpupm_test.scoreboard");
    const auto sb = handScoreboard();
    auto saved = model::trySaveScoreboard(sb, path);
    ASSERT_TRUE(saved.ok()) << saved.error().message;
    auto loaded = model::tryLoadScoreboard(
            path, {.allow_legacy = true, .validate = true});
    ASSERT_TRUE(loaded.ok()) << loaded.error().message;
    EXPECT_DOUBLE_EQ(loaded.value().overall.mae_pct,
                     sb.overall.mae_pct);
    std::remove(path.c_str());

    auto missing = model::tryLoadScoreboard("/nonexistent/x.sb");
    ASSERT_FALSE(missing.ok());
    EXPECT_EQ(missing.error().code, model::IoErrc::IoError);
}

} // namespace
