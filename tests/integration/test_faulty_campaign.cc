/**
 * @file
 * End-to-end tests of the fault-tolerant campaign: a flaky
 * measurement stack must still yield a model close to the fault-free
 * one, persistently broken configurations must be quarantined rather
 * than wedge the run, and an interrupted campaign resumed from its
 * checkpoint must reproduce the uninterrupted result exactly.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <filesystem>

#include "core/campaign.hh"
#include "core/model_io.hh"

namespace
{

using namespace gpupm;

model::ResilientCampaignOptions
fastOpts()
{
    model::ResilientCampaignOptions o;
    // Enough repetitions that a single corrupt sample cannot sink a
    // cell below min_valid_repetitions, few enough to keep tests fast.
    o.base.power_repetitions = 4;
    return o;
}

model::ResilientCampaignResult
runFaulty(const sim::PhysicalGpu &board, double rate,
          const model::ResilientCampaignOptions &opts,
          const std::vector<gpu::FreqConfig> &broken = {})
{
    model::SimulatedBackend inner(board, opts.base.seed);
    auto spec = model::FaultSpec::uniform(rate);
    spec.broken_configs = broken;
    model::FaultInjectingBackend faulty(inner, spec);
    return model::runResilientTrainingCampaign(
            faulty, ubench::buildSuite(), opts);
}

TEST(FaultyCampaign, SurvivesFaultsAndTrainsAnEquivalentModel)
{
    sim::PhysicalGpu board(gpu::DeviceKind::GtxTitanX);
    const auto opts = fastOpts();

    // Fault-free baseline through the same resilient runner.
    model::SimulatedBackend clean(board, opts.base.seed);
    const auto base = model::runResilientTrainingCampaign(
            clean, ubench::buildSuite(), opts);
    ASSERT_TRUE(base.complete);
    EXPECT_EQ(base.report.cells_failed, 0);
    EXPECT_EQ(base.report.cells_done, base.report.cells_total);

    // ~8% of calls fail in some way; the campaign must complete
    // without aborting and report what it had to survive.
    const auto faulty = runFaulty(board, 0.08, opts);
    ASSERT_TRUE(faulty.complete);
    EXPECT_GT(faulty.report.faults_injected, 0);
    EXPECT_GT(faulty.report.totals.retries, 0);
    EXPECT_GT(faulty.report.totals.attempts,
              base.report.totals.attempts);
    long flagged = 0;
    for (const auto &b : faulty.report.benchmarks)
        flagged += b.retries > 0 || b.outliers_rejected > 0 ||
                                   b.corrupt_samples > 0
                           ? 1
                           : 0;
    EXPECT_GT(flagged, 0);

    // Both models exist and agree on the surviving grid: the injected
    // noise must not leak into the fit beyond a small tolerance.
    const auto fit0 = model::ModelEstimator().estimate(base.data);
    const auto fit1 = model::ModelEstimator().estimate(faulty.data);
    double err_sum = 0.0;
    long n = 0;
    for (const auto &util : faulty.data.utils) {
        for (const auto &cfg : faulty.data.configs) {
            const double p0 = fit0.model.predict(util, cfg).total_w;
            const double p1 = fit1.model.predict(util, cfg).total_w;
            ASSERT_GT(p0, 0.0);
            err_sum += std::abs(p1 - p0) / p0;
            ++n;
        }
    }
    ASSERT_GT(n, 0);
    EXPECT_LT(err_sum / n, 0.02);
}

TEST(FaultyCampaign, QuarantinesBrokenConfigAndTrainsOnSparseGrid)
{
    sim::PhysicalGpu board(gpu::DeviceKind::GtxTitanX);
    const gpu::FreqConfig bad{595, 810};
    const auto res = runFaulty(board, 0.0, fastOpts(), {bad});

    ASSERT_TRUE(res.complete);
    ASSERT_EQ(res.report.quarantined.size(), 1u);
    EXPECT_EQ(res.report.quarantined[0], bad);
    EXPECT_GT(res.report.totals.call_failures, 0);
    EXPECT_GT(res.report.totals.quarantined_calls, 0);

    // The broken column is dropped; everything else survives.
    const auto &cfgs = res.data.configs;
    EXPECT_EQ(std::count(cfgs.begin(), cfgs.end(), bad), 0);
    EXPECT_EQ(cfgs.size(),
              board.descriptor().allConfigs().size() - 1);
    EXPECT_NE(std::find(cfgs.begin(), cfgs.end(),
                        res.data.reference),
              cfgs.end());

    // The estimator tolerates the sparser grid.
    const auto fit = model::ModelEstimator().estimate(res.data);
    EXPECT_TRUE(std::isfinite(fit.rmse_w));
    EXPECT_LT(fit.rmse_w, 15.0);
    EXPECT_FALSE(fit.model.hasVoltages(bad));
}

TEST(FaultyCampaign, BrokenReferenceIsFatal)
{
    // Without the reference configuration there is nothing to
    // normalize utilizations against; the campaign must refuse.
    sim::PhysicalGpu board(gpu::DeviceKind::GtxTitanX);
    const auto ref = board.descriptor().referenceConfig();
    EXPECT_THROW(runFaulty(board, 0.0, fastOpts(), {ref}),
                 std::runtime_error);
}

TEST(FaultyCampaign, CheckpointResumeReproducesUninterruptedRun)
{
    sim::PhysicalGpu board(gpu::DeviceKind::GtxTitanX);
    const auto ck_path =
            (std::filesystem::temp_directory_path() /
             "gpupm_test_faulty_campaign.ck.json")
                    .string();
    std::filesystem::remove(ck_path);

    auto opts = fastOpts();

    // Uninterrupted reference run (no checkpointing at all).
    const auto whole = runFaulty(board, 0.05, opts);
    ASSERT_TRUE(whole.complete);

    // Same campaign, killed after 1500 cells...
    opts.checkpoint_path = ck_path;
    opts.checkpoint_every = 64;
    opts.max_cells = 1500;
    const auto part = runFaulty(board, 0.05, opts);
    EXPECT_FALSE(part.complete);
    ASSERT_TRUE(std::filesystem::exists(ck_path));

    // ...then resumed to completion in a fresh process (fresh backend
    // chain; only the checkpoint file carries state across).
    opts.max_cells = 0;
    const auto resumed = runFaulty(board, 0.05, opts);
    ASSERT_TRUE(resumed.complete);
    EXPECT_GT(resumed.report.cells_resumed, 0);

    // The resumed training data is bit-identical to the
    // uninterrupted run's.
    ASSERT_EQ(resumed.data.configs, whole.data.configs);
    ASSERT_EQ(resumed.data.power_w.size(), whole.data.power_w.size());
    for (std::size_t b = 0; b < whole.data.power_w.size(); ++b) {
        ASSERT_EQ(resumed.data.power_w[b].size(),
                  whole.data.power_w[b].size());
        for (std::size_t c = 0; c < whole.data.power_w[b].size(); ++c)
            EXPECT_DOUBLE_EQ(resumed.data.power_w[b][c],
                             whole.data.power_w[b][c]);
        for (std::size_t i = 0; i < gpu::kNumComponents; ++i)
            EXPECT_DOUBLE_EQ(resumed.data.utils[b][i],
                             whole.data.utils[b][i]);
    }
    std::filesystem::remove(ck_path);
}

TEST(FaultyCampaign, ReportSummaryIsHumanReadable)
{
    sim::PhysicalGpu board(gpu::DeviceKind::GtxTitanX);
    const auto res = runFaulty(board, 0.05, fastOpts());
    const auto s = res.report.summary();
    EXPECT_NE(s.find("campaign report"), std::string::npos);
    EXPECT_NE(s.find("resilience"), std::string::npos);
    EXPECT_NE(s.find("faults injected"), std::string::npos);
    EXPECT_NE(s.find("quarantined"), std::string::npos);
}

} // namespace
