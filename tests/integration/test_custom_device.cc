/**
 * @file
 * End-to-end pipeline on a *custom* device: the library is not
 * hard-wired to the three evaluated boards. A user adds a new GPU by
 * filling a DeviceDescriptor and (for simulation) a GroundTruth; the
 * campaign, estimator and predictor run unchanged.
 *
 * The custom board here is a laptop-class Maxwell part: fewer SMs,
 * lower clocks, a narrower V-F table and a lower TDP.
 */

#include <gtest/gtest.h>

#include "common/stats.hh"
#include "core/campaign.hh"
#include "core/predictor.hh"
#include "workloads/workloads.hh"

namespace
{

using namespace gpupm;
using gpu::Component;
using gpu::componentIndex;

gpu::DeviceDescriptor
laptopMaxwell()
{
    // Start from the desktop part and shrink it.
    gpu::DeviceDescriptor d =
            gpu::DeviceDescriptor::get(gpu::DeviceKind::GtxTitanX);
    d.name = "GTX 970M (custom)";
    d.num_sms = 10;
    d.core_freqs_mhz = {540, 675, 810, 924, 1038};
    d.default_core_mhz = 924;
    d.mem_freqs_mhz = {2505, 1253};
    d.default_mem_mhz = 2505;
    d.tdp_w = 100.0;
    d.l2_bytes_per_cycle = 256.0;
    return d;
}

sim::GroundTruth
laptopTruth()
{
    auto t = sim::PhysicalGpu::defaultGroundTruth(
            gpu::DeviceKind::GtxTitanX);
    // Scale the desktop coefficients to the smaller chip.
    t.static_core_w *= 0.4;
    t.idle_core_w_ghz *= 0.5;
    t.static_mem_w *= 0.5;
    t.idle_mem_w_ghz *= 0.5;
    for (double &g : t.gamma_w_ghz)
        g *= 0.45;
    t.gamma_issue_w_ghz *= 0.45;
    t.gamma_active_w_ghz *= 0.45;
    t.core_voltage =
            sim::VoltageCurve::twoRegion(700.0, 0.90, 1.15, 1038.0);
    return t;
}

TEST(CustomDevice, FullPipelineWorksOnANewBoard)
{
    const gpu::DeviceDescriptor desc = laptopMaxwell();
    sim::PhysicalGpu board(desc, laptopTruth());

    model::CampaignOptions opts;
    opts.power_repetitions = 3;
    const auto data = model::runTrainingCampaign(
            board, ubench::buildSuite(), opts);
    EXPECT_EQ(data.configs.size(), 10u); // 5 core x 2 mem

    const auto fit = model::ModelEstimator().estimate(data);
    EXPECT_LE(fit.iterations, 50);
    EXPECT_LT(fit.rmse_w, 6.0);

    // Validate on unseen applications.
    model::Predictor predictor(fit.model);
    std::vector<double> pred, meas;
    for (const auto &w : workloads::validationSet()) {
        const auto m = model::measureApp(board, w.demand,
                                         desc.allConfigs(), opts);
        for (std::size_t i = 0; i < m.configs.size(); ++i) {
            pred.push_back(
                    predictor.at(m.util, m.configs[i]).total_w);
            meas.push_back(m.power_w[i]);
        }
    }
    const double mae = stats::meanAbsPercentError(pred, meas);
    EXPECT_LT(mae, 9.0);
    // The small board's power scale is realistic.
    EXPECT_LT(stats::maximum(meas), desc.tdp_w * 1.1);
    EXPECT_GT(stats::minimum(meas), 10.0);
}

TEST(CustomDevice, VoltageKneeRecoveredOnTheCustomBoard)
{
    const gpu::DeviceDescriptor desc = laptopMaxwell();
    sim::PhysicalGpu board(desc, laptopTruth());
    model::CampaignOptions opts;
    opts.power_repetitions = 3;
    const auto data = model::runTrainingCampaign(
            board, ubench::buildSuite(), opts);
    const auto fit = model::ModelEstimator().estimate(data);
    std::vector<double> fitted, truth;
    for (int fc : desc.core_freqs_mhz) {
        fitted.push_back(
                fit.model.voltages({fc, desc.default_mem_mhz}).core);
        truth.push_back(board.trueCoreVoltageNorm(fc));
    }
    EXPECT_GT(stats::pearson(fitted, truth), 0.95);
}

} // namespace
