/**
 * @file
 * End-to-end integration tests: the full paper pipeline (train on the
 * 83-microbenchmark suite, validate on the 26 Table III applications)
 * must reproduce the paper's headline results in shape — per-device
 * error bands, the Kepler degradation, the two-region voltage curve,
 * the error growth away from the reference configuration, and the
 * advantage over the prior-art baselines.
 */

#include <gtest/gtest.h>

#include <map>

#include "baselines/baselines.hh"
#include "common/stats.hh"
#include "core/campaign.hh"
#include "core/predictor.hh"
#include "workloads/workloads.hh"

namespace
{

using namespace gpupm;

struct DeviceRun
{
    model::TrainingData data;
    model::EstimationResult fit;
    // Per app: measured + predicted across all configs.
    std::vector<model::AppMeasurement> apps;
    std::vector<double> pred, meas;
    std::vector<gpu::FreqConfig> cfg_of_sample;
};

const DeviceRun &
run(gpu::DeviceKind kind)
{
    static std::map<gpu::DeviceKind, DeviceRun> cache;
    auto it = cache.find(kind);
    if (it != cache.end())
        return it->second;

    DeviceRun r;
    sim::PhysicalGpu board(kind);
    model::CampaignOptions opts;
    opts.power_repetitions = 3;
    r.data = model::runTrainingCampaign(board, ubench::buildSuite(),
                                        opts);
    r.fit = model::ModelEstimator().estimate(r.data);
    model::Predictor pred(r.fit.model);
    for (const auto &w : workloads::fullValidationSet()) {
        auto m = model::measureApp(
                board, w.demand, board.descriptor().allConfigs(),
                opts);
        for (std::size_t i = 0; i < m.configs.size(); ++i) {
            r.pred.push_back(
                    pred.at(m.util, m.configs[i]).total_w);
            r.meas.push_back(m.power_w[i]);
            r.cfg_of_sample.push_back(m.configs[i]);
        }
        r.apps.push_back(std::move(m));
    }
    return cache.emplace(kind, std::move(r)).first->second;
}

TEST(Pipeline, TitanXpErrorBand)
{
    // Paper: 6.9% MAE on the Pascal device.
    const auto &r = run(gpu::DeviceKind::TitanXp);
    const double mae = stats::meanAbsPercentError(r.pred, r.meas);
    EXPECT_GT(mae, 3.0);
    EXPECT_LT(mae, 10.0);
}

TEST(Pipeline, GtxTitanXErrorBand)
{
    // Paper: 6.0% MAE on the Maxwell device.
    const auto &r = run(gpu::DeviceKind::GtxTitanX);
    const double mae = stats::meanAbsPercentError(r.pred, r.meas);
    EXPECT_GT(mae, 3.0);
    EXPECT_LT(mae, 9.0);
}

TEST(Pipeline, TeslaK40cErrorBand)
{
    // Paper: 12.4% MAE on the Kepler device.
    const auto &r = run(gpu::DeviceKind::TeslaK40c);
    const double mae = stats::meanAbsPercentError(r.pred, r.meas);
    EXPECT_GT(mae, 8.0);
    EXPECT_LT(mae, 17.0);
}

TEST(Pipeline, KeplerIsWorstDevice)
{
    const double xp = stats::meanAbsPercentError(
            run(gpu::DeviceKind::TitanXp).pred,
            run(gpu::DeviceKind::TitanXp).meas);
    const double tx = stats::meanAbsPercentError(
            run(gpu::DeviceKind::GtxTitanX).pred,
            run(gpu::DeviceKind::GtxTitanX).meas);
    const double k40 = stats::meanAbsPercentError(
            run(gpu::DeviceKind::TeslaK40c).pred,
            run(gpu::DeviceKind::TeslaK40c).meas);
    EXPECT_GT(k40, 1.4 * xp);
    EXPECT_GT(k40, 1.4 * tx);
}

TEST(Pipeline, EstimatorConvergesWithinPaperIterationBudget)
{
    for (auto kind :
         {gpu::DeviceKind::TitanXp, gpu::DeviceKind::GtxTitanX}) {
        const auto &r = run(kind);
        EXPECT_LE(r.fit.iterations, 50);
        EXPECT_TRUE(r.fit.converged);
    }
}

TEST(Pipeline, VoltageCurveRecoveredOnGtxTitanX)
{
    // Fig. 6a: the fitted core voltage tracks the (hidden) true
    // two-region curve — flat at low clocks, linear above the knee.
    const auto &r = run(gpu::DeviceKind::GtxTitanX);
    sim::PhysicalGpu board(gpu::DeviceKind::GtxTitanX);
    std::vector<double> fitted, truth;
    for (int fc : board.descriptor().core_freqs_mhz) {
        fitted.push_back(r.fit.model.voltages({fc, 3505}).core);
        truth.push_back(board.trueCoreVoltageNorm(fc));
    }
    EXPECT_GT(stats::pearson(fitted, truth), 0.97);
    // The fitted voltage dips slightly below the truth at the lowest
    // core clocks, where it absorbs the utilization drift of
    // compute-bound training kernels — the same deviation visible in
    // the paper's Fig. 6 measurements.
    for (std::size_t i = 0; i < fitted.size(); ++i)
        EXPECT_NEAR(fitted[i], truth[i], 0.09);
    // Two-region shape: the low-frequency end is much flatter than
    // the high-frequency end.
    const double low_slope = fitted[3] - fitted[0];
    const double high_slope = fitted.back() - fitted[fitted.size() - 4];
    EXPECT_LT(low_slope, 0.5 * high_slope);
}

TEST(Pipeline, ErrorGrowsAwayFromReferenceMemoryClock)
{
    // Fig. 8: on the GTX Titan X the error at fmem = 810 MHz exceeds
    // the error at the 3505 MHz reference.
    const auto &r = run(gpu::DeviceKind::GtxTitanX);
    std::vector<double> p_ref, m_ref, p_far, m_far;
    for (std::size_t i = 0; i < r.pred.size(); ++i) {
        if (r.cfg_of_sample[i].mem_mhz == 3505) {
            p_ref.push_back(r.pred[i]);
            m_ref.push_back(r.meas[i]);
        } else if (r.cfg_of_sample[i].mem_mhz == 810) {
            p_far.push_back(r.pred[i]);
            m_far.push_back(r.meas[i]);
        }
    }
    const double mae_ref = stats::meanAbsPercentError(p_ref, m_ref);
    const double mae_far = stats::meanAbsPercentError(p_far, m_far);
    EXPECT_GT(mae_far, mae_ref);
}

TEST(Pipeline, ProposedModelBeatsBaselines)
{
    // Sec. VI: Abe et al. report 14-23.5%; the proposed model must be
    // clearly better on every device.
    for (auto kind : gpu::kAllDevices) {
        const auto &r = run(kind);
        const auto abe = baselines::AbeLinearModel::train(r.data);
        const auto cubic =
                baselines::CubicScalingModel::train(r.data);
        std::vector<double> abe_pred, cubic_pred;
        std::size_t i = 0;
        for (const auto &app : r.apps) {
            for (const auto &cfg : app.configs) {
                abe_pred.push_back(abe.predict(app.util, cfg));
                cubic_pred.push_back(cubic.predict(app.util, cfg));
                ++i;
            }
        }
        const double ours =
                stats::meanAbsPercentError(r.pred, r.meas);
        const double abe_mae =
                stats::meanAbsPercentError(abe_pred, r.meas);
        const double cubic_mae =
                stats::meanAbsPercentError(cubic_pred, r.meas);
        if (kind == gpu::DeviceKind::TeslaK40c) {
            // With a single memory clock and a 1.3x core range, the
            // voltage structure cannot differentiate the models on
            // identical data: counter quality dominates every model
            // equally. Require parity, not victory. (The paper's
            // 23.5% figure for Abe et al. on Kepler came from their
            // own, different, experimental setup.)
            EXPECT_LT(ours, 1.6 * abe_mae);
            EXPECT_LT(ours, 1.6 * cubic_mae);
        } else {
            EXPECT_LT(ours, abe_mae)
                    << gpu::DeviceDescriptor::get(kind).name;
            EXPECT_LT(ours, cubic_mae)
                    << gpu::DeviceDescriptor::get(kind).name;
        }
    }
}

TEST(Pipeline, PredictionRangeSpansPaperScale)
{
    // Fig. 7: measured power spans roughly 40-248 W on the GTX
    // Titan X across configurations.
    const auto &r = run(gpu::DeviceKind::GtxTitanX);
    EXPECT_LT(stats::minimum(r.meas), 80.0);
    EXPECT_GT(stats::maximum(r.meas), 200.0);
}

TEST(Pipeline, PredictionsCorrelateStronglyWithMeasurements)
{
    for (auto kind : gpu::kAllDevices) {
        const auto &r = run(kind);
        // The K40c's narrow power range (4 configurations) plus its
        // noisy counters cap the achievable correlation.
        const double floor =
                kind == gpu::DeviceKind::TeslaK40c ? 0.55 : 0.93;
        EXPECT_GT(stats::pearson(r.pred, r.meas), floor)
                << gpu::DeviceDescriptor::get(kind).name;
    }
}

} // namespace
