/**
 * @file
 * Golden-comparison tests: the audit pipeline (campaign -> fit ->
 * validation-set residuals -> Scoreboard) must reproduce the
 * checked-in Fig. 7 / Fig. 8 numbers under bench_csv/ — the same
 * artifacts the bench binaries regenerate — within the rounding of
 * the CSVs. This pins `gpupm audit` to the repository's published
 * accuracy results: a model or simulator change that silently shifts
 * the headline MAE fails here before it reaches a golden refresh.
 *
 * The repository root is injected as GPUPM_REPO_DIR by the build so
 * the test finds bench_csv/ regardless of the ctest working
 * directory.
 */

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/stats.hh"
#include "core/campaign.hh"
#include "core/predictor.hh"
#include "obs/scoreboard.hh"
#include "workloads/workloads.hh"

#ifndef GPUPM_REPO_DIR
#error "GPUPM_REPO_DIR must be defined by the build"
#endif

namespace
{

using namespace gpupm;

std::vector<std::vector<std::string>>
readCsv(const std::string &rel)
{
    const std::string path = std::string(GPUPM_REPO_DIR) + "/" + rel;
    std::ifstream in(path);
    EXPECT_TRUE(in.is_open()) << "cannot open " << path;
    std::vector<std::vector<std::string>> rows;
    std::string line;
    while (std::getline(in, line)) {
        std::vector<std::string> cells;
        std::stringstream ss(line);
        std::string cell;
        while (std::getline(ss, cell, ','))
            cells.push_back(cell);
        if (!cells.empty())
            rows.push_back(std::move(cells));
    }
    return rows;
}

/** The audit pipeline for the GTX Titan X, campaign reps = 5 (the
 *  same options the bench binaries and `gpupm audit` use). */
const obs::Scoreboard &
auditTitanX()
{
    static const obs::Scoreboard sb = [] {
        sim::PhysicalGpu board(gpu::DeviceKind::GtxTitanX);
        model::CampaignOptions opts;
        opts.power_repetitions = 5;
        const auto data = model::runTrainingCampaign(
                board, ubench::buildSuite(), opts);
        const auto fit = model::ModelEstimator().estimate(data);
        model::Predictor pred(fit.model);
        std::vector<obs::ResidualSample> samples;
        for (const auto &w : workloads::fullValidationSet()) {
            const auto m = model::measureApp(
                    board, w.demand,
                    board.descriptor().allConfigs(), opts);
            for (std::size_t i = 0; i < m.configs.size(); ++i) {
                obs::ResidualSample s;
                s.app = w.name;
                s.cfg = m.configs[i];
                s.measured_w = m.power_w[i];
                const auto p = pred.at(m.util, m.configs[i]);
                s.predicted_w = p.total_w;
                samples.push_back(std::move(s));
            }
        }
        return obs::Scoreboard::fromSamples(
                static_cast<int>(gpu::DeviceKind::GtxTitanX),
                board.descriptor().name,
                board.descriptor().referenceConfig(),
                std::move(samples));
    }();
    return sb;
}

TEST(ScoreboardGolden, Fig7TitanXRowReproduced)
{
    const auto rows = readCsv("bench_csv/fig7_summary.csv");
    const std::vector<std::string> *titanx = nullptr;
    for (const auto &row : rows)
        if (!row.empty() && row[0] == "GTX Titan X")
            titanx = &row;
    ASSERT_NE(titanx, nullptr)
            << "no GTX Titan X row in fig7_summary.csv";
    // Columns: Device, Mem x Core levels, Samples, Measured range,
    // MAE [%], Paper MAE [%].
    ASSERT_GE(titanx->size(), 5u);
    const long golden_samples = std::stol((*titanx)[2]);
    const double golden_mae = std::stod((*titanx)[4]);

    const auto &sb = auditTitanX();
    EXPECT_EQ(sb.overall.samples, golden_samples);
    // Acceptance gate: within 0.5 pp of the published figure.
    EXPECT_NEAR(sb.overall.mae_pct, golden_mae, 0.5);
}

TEST(ScoreboardGolden, Fig8PerAppPanelsReproduced)
{
    const auto &sb = auditTitanX();
    for (const int fm : {810, 3505}) {
        const auto rows = readCsv("bench_csv/fig8_fmem" +
                                  std::to_string(fm) + ".csv");
        ASSERT_GT(rows.size(), 1u);
        int checked = 0;
        for (std::size_t r = 1; r < rows.size(); ++r) {
            ASSERT_GE(rows[r].size(), 3u);
            // The audit names the workload "CUBLAS"; the bench CSV
            // keeps the sized measurement name.
            const std::string app = rows[r][0] == "CUBLAS-4096"
                                            ? "CUBLAS"
                                            : rows[r][0];
            const double golden = std::stod(rows[r][2]);
            // Recompute this panel cell through the scoreboard's own
            // grouping/statistics helper.
            std::vector<const obs::ResidualSample *> group;
            for (const auto &s : sb.samples)
                if (s.app == app && s.cfg.mem_mhz == fm)
                    group.push_back(&s);
            ASSERT_FALSE(group.empty()) << app << " @ " << fm;
            const auto st = obs::scoreOf(group);
            // The CSV rounds to one decimal place.
            EXPECT_NEAR(st.mae_pct, golden, 0.06)
                    << app << " @ fmem " << fm << " MHz";
            ++checked;
        }
        EXPECT_GE(checked, 20) << "suspiciously few Fig. 8 rows";
    }
}

TEST(ScoreboardGolden, Fig8MemoryMarginalShape)
{
    // Fig. 8's headline shape: accuracy degrades with distance from
    // the 3505 MHz reference memory clock, and the marginals cover
    // every memory level of the device.
    const auto &sb = auditTitanX();
    ASSERT_EQ(sb.mem_marginal.size(), 4u);
    double mae_ref = 0.0, mae_far = 0.0;
    for (const auto &m : sb.mem_marginal) {
        if (m.mhz == 3505)
            mae_ref = m.stats.mae_pct;
        if (m.mhz == 810)
            mae_far = m.stats.mae_pct;
    }
    EXPECT_GT(mae_ref, 0.0);
    EXPECT_GT(mae_far, mae_ref);
}

} // namespace
