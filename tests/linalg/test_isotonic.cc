/**
 * @file
 * Unit and property tests of the PAVA isotonic regression used for the
 * Eq. 12 voltage-monotonicity constraint.
 */

#include <gtest/gtest.h>

#include <numeric>

#include "common/random.hh"
#include "linalg/isotonic.hh"

namespace
{

using gpupm::Rng;
using gpupm::linalg::isotonicNonDecreasing;
using gpupm::linalg::isotonicNonIncreasing;

TEST(Isotonic, AlreadyMonotoneIsUnchanged)
{
    const std::vector<double> xs = {1.0, 2.0, 2.0, 5.0};
    EXPECT_EQ(isotonicNonDecreasing(xs), xs);
}

TEST(Isotonic, SingleViolationPools)
{
    const std::vector<double> xs = {1.0, 3.0, 2.0};
    const auto y = isotonicNonDecreasing(xs);
    EXPECT_DOUBLE_EQ(y[0], 1.0);
    EXPECT_DOUBLE_EQ(y[1], 2.5);
    EXPECT_DOUBLE_EQ(y[2], 2.5);
}

TEST(Isotonic, FullyDecreasingPoolsToMean)
{
    const std::vector<double> xs = {3.0, 2.0, 1.0};
    const auto y = isotonicNonDecreasing(xs);
    for (double v : y)
        EXPECT_DOUBLE_EQ(v, 2.0);
}

TEST(Isotonic, EmptyInput)
{
    EXPECT_TRUE(isotonicNonDecreasing({}).empty());
}

TEST(Isotonic, WeightsBiasPooledValue)
{
    const std::vector<double> xs = {3.0, 1.0};
    const std::vector<double> w = {3.0, 1.0};
    const auto y = isotonicNonDecreasing(xs, w);
    // Pooled mean = (3*3 + 1*1) / 4 = 2.5.
    EXPECT_DOUBLE_EQ(y[0], 2.5);
    EXPECT_DOUBLE_EQ(y[1], 2.5);
}

TEST(Isotonic, HugeWeightPinsValue)
{
    const std::vector<double> xs = {1.5, 1.0, 2.0};
    const std::vector<double> w = {1e9, 1.0, 1.0};
    const auto y = isotonicNonDecreasing(xs, w);
    EXPECT_NEAR(y[0], 1.5, 1e-6);
}

TEST(Isotonic, NonIncreasingVariant)
{
    const std::vector<double> xs = {1.0, 3.0, 2.0};
    const auto y = isotonicNonIncreasing(xs);
    for (std::size_t i = 1; i < y.size(); ++i)
        EXPECT_LE(y[i], y[i - 1] + 1e-12);
}

TEST(Isotonic, WeightSizeMismatchPanics)
{
    EXPECT_THROW(isotonicNonDecreasing({1.0, 2.0}, {1.0}),
                 std::logic_error);
}

/** Property sweep over random inputs. */
class IsotonicProperty : public ::testing::TestWithParam<int>
{
};

TEST_P(IsotonicProperty, Invariants)
{
    Rng rng(GetParam() * 7919);
    const std::size_t n = 2 + rng.below(40);
    std::vector<double> xs(n);
    for (double &x : xs)
        x = rng.uniform(0.0, 10.0);

    const auto y = isotonicNonDecreasing(xs);
    ASSERT_EQ(y.size(), n);

    // 1. Output is non-decreasing.
    for (std::size_t i = 1; i < n; ++i)
        EXPECT_LE(y[i - 1], y[i] + 1e-12);

    // 2. Idempotence.
    EXPECT_EQ(isotonicNonDecreasing(y), y);

    // 3. Mean preservation (equal weights).
    const double mx = std::accumulate(xs.begin(), xs.end(), 0.0);
    const double my = std::accumulate(y.begin(), y.end(), 0.0);
    EXPECT_NEAR(mx, my, 1e-9);

    // 4. The fit never leaves the input range.
    const auto [lo, hi] = std::minmax_element(xs.begin(), xs.end());
    for (double v : y) {
        EXPECT_GE(v, *lo - 1e-12);
        EXPECT_LE(v, *hi + 1e-12);
    }

    // 5. Optimality via a local perturbation check: nudging any block
    // value must not decrease the SSE while keeping monotonicity.
    const auto sse = [&](const std::vector<double> &f) {
        double s = 0.0;
        for (std::size_t i = 0; i < n; ++i)
            s += (f[i] - xs[i]) * (f[i] - xs[i]);
        return s;
    };
    const double base = sse(y);
    for (std::size_t i = 0; i < n; ++i) {
        for (double eps : {-1e-4, 1e-4}) {
            std::vector<double> z = y;
            z[i] += eps;
            bool monotone = true;
            for (std::size_t k = 1; k < n; ++k)
                if (z[k - 1] > z[k] + 1e-15)
                    monotone = false;
            if (monotone) {
                EXPECT_GE(sse(z), base - 1e-9);
            }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(RandomSequences, IsotonicProperty,
                         ::testing::Range(1, 26));

} // namespace
