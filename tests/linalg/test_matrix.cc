/**
 * @file
 * Unit tests of the dense vector/matrix types.
 */

#include <gtest/gtest.h>

#include "linalg/matrix.hh"

namespace
{

using gpupm::linalg::Matrix;
using gpupm::linalg::Vector;

TEST(Vector, ConstructionAndAccess)
{
    Vector v(3);
    EXPECT_EQ(v.size(), 3u);
    EXPECT_DOUBLE_EQ(v[0], 0.0);
    Vector f(2, 7.0);
    EXPECT_DOUBLE_EQ(f[1], 7.0);
    Vector il = {1.0, 2.0, 3.0};
    EXPECT_DOUBLE_EQ(il[2], 3.0);
}

TEST(Vector, AtBoundsChecks)
{
    Vector v(2);
    EXPECT_NO_THROW(v.at(1));
    EXPECT_THROW(v.at(2), std::logic_error);
}

TEST(Vector, DotAndNorm)
{
    Vector a = {1.0, 2.0, 2.0};
    Vector b = {2.0, 0.0, 1.0};
    EXPECT_DOUBLE_EQ(a.dot(b), 4.0);
    EXPECT_DOUBLE_EQ(a.norm(), 3.0);
}

TEST(Vector, DotDimensionMismatchPanics)
{
    Vector a(2), b(3);
    EXPECT_THROW(a.dot(b), std::logic_error);
}

TEST(Vector, Arithmetic)
{
    Vector a = {1.0, 2.0};
    Vector b = {3.0, 5.0};
    Vector s = a + b;
    EXPECT_DOUBLE_EQ(s[0], 4.0);
    EXPECT_DOUBLE_EQ(s[1], 7.0);
    Vector d = b - a;
    EXPECT_DOUBLE_EQ(d[0], 2.0);
    Vector m = a * 2.5;
    EXPECT_DOUBLE_EQ(m[1], 5.0);
}

TEST(Matrix, ConstructionAndIndexing)
{
    Matrix m(2, 3);
    EXPECT_EQ(m.rows(), 2u);
    EXPECT_EQ(m.cols(), 3u);
    m(1, 2) = 5.0;
    EXPECT_DOUBLE_EQ(m(1, 2), 5.0);
}

TEST(Matrix, InitializerList)
{
    Matrix m = {{1.0, 2.0}, {3.0, 4.0}};
    EXPECT_DOUBLE_EQ(m(0, 1), 2.0);
    EXPECT_DOUBLE_EQ(m(1, 0), 3.0);
}

TEST(Matrix, RaggedInitializerPanics)
{
    EXPECT_THROW((Matrix{{1.0, 2.0}, {3.0}}), std::logic_error);
}

TEST(Matrix, Identity)
{
    Matrix i = Matrix::identity(3);
    for (std::size_t r = 0; r < 3; ++r)
        for (std::size_t c = 0; c < 3; ++c)
            EXPECT_DOUBLE_EQ(i(r, c), r == c ? 1.0 : 0.0);
}

TEST(Matrix, MatVec)
{
    Matrix m = {{1.0, 2.0}, {3.0, 4.0}};
    Vector x = {1.0, 1.0};
    Vector y = m * x;
    EXPECT_DOUBLE_EQ(y[0], 3.0);
    EXPECT_DOUBLE_EQ(y[1], 7.0);
}

TEST(Matrix, MatVecDimensionPanics)
{
    Matrix m(2, 2);
    Vector x(3);
    EXPECT_THROW(m * x, std::logic_error);
}

TEST(Matrix, MatMul)
{
    Matrix a = {{1.0, 2.0}, {3.0, 4.0}};
    Matrix b = {{0.0, 1.0}, {1.0, 0.0}};
    Matrix c = a * b;
    EXPECT_DOUBLE_EQ(c(0, 0), 2.0);
    EXPECT_DOUBLE_EQ(c(0, 1), 1.0);
    EXPECT_DOUBLE_EQ(c(1, 0), 4.0);
    EXPECT_DOUBLE_EQ(c(1, 1), 3.0);
}

TEST(Matrix, Transpose)
{
    Matrix m = {{1.0, 2.0, 3.0}, {4.0, 5.0, 6.0}};
    Matrix t = m.transposed();
    EXPECT_EQ(t.rows(), 3u);
    EXPECT_EQ(t.cols(), 2u);
    EXPECT_DOUBLE_EQ(t(2, 1), 6.0);
}

TEST(Matrix, RowAndColExtraction)
{
    Matrix m = {{1.0, 2.0}, {3.0, 4.0}};
    Vector r = m.row(1);
    EXPECT_DOUBLE_EQ(r[0], 3.0);
    Vector c = m.col(1);
    EXPECT_DOUBLE_EQ(c[0], 2.0);
    EXPECT_DOUBLE_EQ(c[1], 4.0);
    EXPECT_THROW(m.row(2), std::logic_error);
    EXPECT_THROW(m.col(2), std::logic_error);
}

TEST(Matrix, AppendRow)
{
    Matrix m;
    m.appendRow({1.0, 2.0});
    m.appendRow({3.0, 4.0});
    EXPECT_EQ(m.rows(), 2u);
    EXPECT_DOUBLE_EQ(m(1, 1), 4.0);
    EXPECT_THROW(m.appendRow({1.0}), std::logic_error);
}

} // namespace
