/**
 * @file
 * Unit and property tests of the least-squares solvers.
 */

#include <gtest/gtest.h>

#include "common/random.hh"
#include "linalg/lstsq.hh"

namespace
{

using gpupm::Rng;
using gpupm::linalg::Matrix;
using gpupm::linalg::Vector;

TEST(LeastSquares, ExactSquareSystem)
{
    Matrix a = {{2.0, 0.0}, {0.0, 4.0}};
    Vector b = {6.0, 8.0};
    Vector x = gpupm::linalg::leastSquares(a, b);
    EXPECT_NEAR(x[0], 3.0, 1e-12);
    EXPECT_NEAR(x[1], 2.0, 1e-12);
}

TEST(LeastSquares, OverdeterminedRecoversGenerator)
{
    // y = 2 + 3 t sampled with no noise.
    Matrix a(10, 2);
    Vector b(10);
    for (std::size_t i = 0; i < 10; ++i) {
        const double t = static_cast<double>(i);
        a(i, 0) = 1.0;
        a(i, 1) = t;
        b[i] = 2.0 + 3.0 * t;
    }
    Vector x = gpupm::linalg::leastSquares(a, b);
    EXPECT_NEAR(x[0], 2.0, 1e-10);
    EXPECT_NEAR(x[1], 3.0, 1e-10);
}

TEST(LeastSquares, ResidualOrthogonalToColumns)
{
    Rng rng(4);
    Matrix a(20, 3);
    Vector b(20);
    for (std::size_t r = 0; r < 20; ++r) {
        for (std::size_t c = 0; c < 3; ++c)
            a(r, c) = rng.normal();
        b[r] = rng.normal();
    }
    Vector x = gpupm::linalg::leastSquares(a, b);
    Vector resid = a * x - b;
    Matrix at = a.transposed();
    Vector g = at * resid;
    for (std::size_t c = 0; c < 3; ++c)
        EXPECT_NEAR(g[c], 0.0, 1e-9);
}

TEST(LeastSquares, RankDeficientZerosRedundantCoefficient)
{
    // Two identical columns: a basic solution should not explode.
    Matrix a(6, 2);
    Vector b(6);
    for (std::size_t r = 0; r < 6; ++r) {
        a(r, 0) = static_cast<double>(r + 1);
        a(r, 1) = static_cast<double>(r + 1);
        b[r] = 2.0 * static_cast<double>(r + 1);
    }
    Vector x = gpupm::linalg::leastSquares(a, b);
    EXPECT_NEAR(x[0] + x[1], 2.0, 1e-9);
    EXPECT_LT(std::abs(x[0]), 10.0);
    EXPECT_LT(std::abs(x[1]), 10.0);
}

TEST(LeastSquares, DimensionMismatchPanics)
{
    Matrix a(3, 2);
    Vector b(4);
    EXPECT_THROW(gpupm::linalg::leastSquares(a, b), std::logic_error);
}

TEST(Nnls, MatchesUnconstrainedWhenInterior)
{
    Matrix a = {{1.0, 0.0}, {0.0, 1.0}, {1.0, 1.0}};
    Vector b = {1.0, 2.0, 3.0};
    Vector u = gpupm::linalg::leastSquares(a, b);
    Vector n = gpupm::linalg::nnls(a, b);
    ASSERT_GT(u[0], 0.0);
    ASSERT_GT(u[1], 0.0);
    EXPECT_NEAR(n[0], u[0], 1e-8);
    EXPECT_NEAR(n[1], u[1], 1e-8);
}

TEST(Nnls, ClampsNegativeComponent)
{
    // Unconstrained solution has a negative coefficient; NNLS must
    // return 0 there.
    Matrix a = {{1.0, 1.0}, {1.0, 1.0}, {0.0, 1.0}};
    Vector b = {1.0, 1.0, -2.0};
    Vector n = gpupm::linalg::nnls(a, b);
    EXPECT_GE(n[0], 0.0);
    EXPECT_GE(n[1], 0.0);
    EXPECT_DOUBLE_EQ(n[1], 0.0);
}

TEST(Nnls, AllZeroWhenRhsNegative)
{
    Matrix a = {{1.0}, {1.0}};
    Vector b = {-1.0, -2.0};
    Vector n = gpupm::linalg::nnls(a, b);
    EXPECT_DOUBLE_EQ(n[0], 0.0);
}

/** Property sweep: NNLS never returns negatives and never beats the
 *  unconstrained optimum. */
class NnlsProperty : public ::testing::TestWithParam<int>
{
};

TEST_P(NnlsProperty, NonNegativeAndBounded)
{
    Rng rng(GetParam());
    const std::size_t m = 12 + rng.below(10);
    const std::size_t n = 2 + rng.below(5);
    Matrix a(m, n);
    Vector b(m);
    for (std::size_t r = 0; r < m; ++r) {
        for (std::size_t c = 0; c < n; ++c)
            a(r, c) = rng.normal();
        b[r] = rng.normal();
    }
    Vector x = gpupm::linalg::nnls(a, b);
    for (std::size_t c = 0; c < n; ++c)
        EXPECT_GE(x[c], 0.0);
    const double rss_nnls = gpupm::linalg::residualSumSquares(a, x, b);
    Vector u = gpupm::linalg::leastSquares(a, b);
    const double rss_ls = gpupm::linalg::residualSumSquares(a, u, b);
    EXPECT_GE(rss_nnls, rss_ls - 1e-9);
    // And no worse than the zero solution.
    EXPECT_LE(rss_nnls, b.dot(b) + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(RandomSystems, NnlsProperty,
                         ::testing::Range(1, 21));

TEST(NnlsRidge, ShrinksDegenerateSplit)
{
    // Identical columns: ridge splits the weight instead of picking an
    // arbitrary basic solution.
    Matrix a(4, 2);
    Vector b(4);
    for (std::size_t r = 0; r < 4; ++r) {
        a(r, 0) = 1.0;
        a(r, 1) = 1.0;
        b[r] = 4.0;
    }
    Vector x = gpupm::linalg::nnlsRidge(a, b, 1e-6);
    EXPECT_NEAR(x[0] + x[1], 4.0, 1e-3);
    EXPECT_NEAR(x[0], x[1], 1e-3);
}

TEST(NnlsRidge, ZeroRidgeDelegates)
{
    Matrix a = {{1.0, 0.0}, {0.0, 1.0}};
    Vector b = {1.0, 2.0};
    Vector x = gpupm::linalg::nnlsRidge(a, b, 0.0);
    EXPECT_NEAR(x[0], 1.0, 1e-9);
    EXPECT_NEAR(x[1], 2.0, 1e-9);
}

TEST(NnlsRidge, NegativeRidgePanics)
{
    Matrix a(1, 1);
    Vector b(1);
    EXPECT_THROW(gpupm::linalg::nnlsRidge(a, b, -1.0),
                 std::logic_error);
}

} // namespace
