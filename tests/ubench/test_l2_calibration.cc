/**
 * @file
 * Tests of the experimental L2 peak-bandwidth calibration
 * (Sec. III-C).
 */

#include <gtest/gtest.h>

#include "ubench/l2_calibration.hh"

namespace
{

using namespace gpupm;

class L2CalibrationAll
    : public ::testing::TestWithParam<gpu::DeviceKind>
{
};

TEST_P(L2CalibrationAll, RecoversDescriptorPeakWithinBand)
{
    sim::PhysicalGpu board(GetParam());
    const auto cal = ubench::calibrateL2PeakBandwidth(board);
    // The streaming microbenchmarks achieve most (but never more than
    // ~counter-noise above) of the true capability.
    const double truth = board.descriptor().l2_bytes_per_cycle;
    EXPECT_GT(cal.bytes_per_cycle, 0.75 * truth);
    EXPECT_LT(cal.bytes_per_cycle, 1.25 * truth);
}

TEST_P(L2CalibrationAll, StreamingEndOfFamilyWins)
{
    // The maximum bandwidth comes from the streaming-dominated end of
    // the family (small intensity knobs); counter noise may shuffle
    // the exact winner, but never to the compute-bound end.
    sim::PhysicalGpu board(GetParam());
    const auto cal = ubench::calibrateL2PeakBandwidth(board);
    EXPECT_LE(cal.best_knob, 32);
}

INSTANTIATE_TEST_SUITE_P(Devices, L2CalibrationAll,
                         ::testing::Values(gpu::DeviceKind::TitanXp,
                                           gpu::DeviceKind::GtxTitanX,
                                           gpu::DeviceKind::TeslaK40c));

TEST(L2Calibration, DeterministicPerSeed)
{
    sim::PhysicalGpu board(gpu::DeviceKind::GtxTitanX);
    const auto a = ubench::calibrateL2PeakBandwidth(board, 3);
    const auto b = ubench::calibrateL2PeakBandwidth(board, 3);
    EXPECT_DOUBLE_EQ(a.peak_bandwidth, b.peak_bandwidth);
}

} // namespace
