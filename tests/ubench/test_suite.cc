/**
 * @file
 * Tests of the 83-microbenchmark suite: composition, the
 * arithmetic-intensity sweep behaviour of Fig. 5A, and per-family
 * stress targets.
 */

#include <gtest/gtest.h>

#include <map>

#include "sim/perf_model.hh"
#include "ubench/suite.hh"

namespace
{

using namespace gpupm;
using gpu::Component;
using gpu::componentIndex;

const gpu::DeviceDescriptor &titanx()
{
    return gpu::DeviceDescriptor::get(gpu::DeviceKind::GtxTitanX);
}

gpu::ComponentArray
utilAtRef(const sim::KernelDemand &d)
{
    static const sim::AnalyticPerfModel perf;
    return perf.execute(titanx(), d, titanx().referenceConfig()).util;
}

TEST(Suite, HasExactly83Microbenchmarks)
{
    EXPECT_EQ(ubench::buildSuite().size(), 83u);
}

TEST(Suite, FamilySizesMatchFig5)
{
    const std::map<ubench::Family, std::size_t> expected = {
        {ubench::Family::Int, 12},  {ubench::Family::SP, 11},
        {ubench::Family::DP, 12},   {ubench::Family::SF, 8},
        {ubench::Family::L2, 10},   {ubench::Family::Shared, 10},
        {ubench::Family::Dram, 12}, {ubench::Family::Mix, 7},
        {ubench::Family::Idle, 1},
    };
    std::map<ubench::Family, std::size_t> counts;
    for (const auto &mb : ubench::buildSuite())
        counts[mb.family]++;
    EXPECT_EQ(counts, expected);
}

TEST(Suite, NamesAreUnique)
{
    std::map<std::string, int> seen;
    for (const auto &mb : ubench::buildSuite())
        EXPECT_EQ(seen[mb.name]++, 0) << mb.name;
}

TEST(Suite, IdleIsEmptyEverythingElseIsNot)
{
    for (const auto &mb : ubench::buildSuite()) {
        if (mb.family == ubench::Family::Idle)
            EXPECT_TRUE(mb.demand.empty());
        else
            EXPECT_FALSE(mb.demand.empty()) << mb.name;
    }
}

TEST(Suite, MicrobenchmarksCarryNoCounterDistortion)
{
    // Register-only synthetic loops exercise no replay activity.
    for (const auto &mb : ubench::buildSuite())
        EXPECT_DOUBLE_EQ(mb.demand.counter_distortion, 0.0) << mb.name;
}

/**
 * Fig. 5A behaviour: increasing the arithmetic-intensity knob N must
 * monotonically raise the stressed-unit utilization and lower the
 * DRAM utilization.
 */
class ArithmeticSweep
    : public ::testing::TestWithParam<ubench::Family>
{
};

TEST_P(ArithmeticSweep, IntensityTradesMemoryForCompute)
{
    const ubench::Family fam = GetParam();
    const Component unit =
            fam == ubench::Family::Int  ? Component::Int
            : fam == ubench::Family::SP ? Component::SP
            : fam == ubench::Family::DP ? Component::DP
                                        : Component::SF;
    double prev_unit = -1.0;
    double prev_dram = 2.0;
    for (const auto &mb : ubench::buildFamily(fam)) {
        const auto u = utilAtRef(mb.demand);
        EXPECT_GE(u[componentIndex(unit)], prev_unit - 1e-9)
                << mb.name;
        EXPECT_LE(u[componentIndex(Component::Dram)], prev_dram + 1e-9)
                << mb.name;
        prev_unit = u[componentIndex(unit)];
        prev_dram = u[componentIndex(Component::Dram)];
    }
    // The sweep must span from memory-dominated to compute-dominated.
    EXPECT_GT(prev_unit, 0.6);
}

INSTANTIATE_TEST_SUITE_P(Families, ArithmeticSweep,
                         ::testing::Values(ubench::Family::Int,
                                           ubench::Family::SP,
                                           ubench::Family::DP,
                                           ubench::Family::SF));

TEST(Suite, SharedFamilyStressesSharedMemory)
{
    const auto fam = ubench::buildFamily(ubench::Family::Shared);
    const auto u0 = utilAtRef(fam.front().demand);
    EXPECT_GT(u0[componentIndex(Component::Shared)], 0.7);
    // The intensity knob shifts the bottleneck toward INT.
    const auto un = utilAtRef(fam.back().demand);
    EXPECT_GT(un[componentIndex(Component::Int)],
              un[componentIndex(Component::Shared)]);
}

TEST(Suite, L2FamilyStressesL2)
{
    const auto fam = ubench::buildFamily(ubench::Family::L2);
    const auto u0 = utilAtRef(fam.front().demand);
    EXPECT_GT(u0[componentIndex(Component::L2)], 0.7);
    EXPECT_LT(u0[componentIndex(Component::Dram)], 0.2);
}

TEST(Suite, DramFamilyStressesDram)
{
    const auto fam = ubench::buildFamily(ubench::Family::Dram);
    const auto u0 = utilAtRef(fam.front().demand);
    EXPECT_GT(u0[componentIndex(Component::Dram)], 0.8);
    // Adding FMAs per load raises SP utilization.
    const auto un = utilAtRef(fam.back().demand);
    EXPECT_GT(un[componentIndex(Component::SP)], 0.5);
}

TEST(Suite, MixesTouchMultipleComponents)
{
    for (const auto &mb : ubench::buildFamily(ubench::Family::Mix)) {
        const auto u = utilAtRef(mb.demand);
        int active = 0;
        for (double x : u)
            active += x > 0.10;
        EXPECT_GE(active, 3) << mb.name;
    }
}

TEST(Suite, LoopBodiesExistForLoopFamilies)
{
    for (const auto &mb : ubench::buildSuite()) {
        const bool loop_family = mb.family != ubench::Family::Mix &&
                                 mb.family != ubench::Family::Idle;
        EXPECT_EQ(mb.loop.has_value(), loop_family) << mb.name;
        if (mb.loop) {
            EXPECT_FALSE(mb.loop->body.empty()) << mb.name;
            EXPECT_GE(mb.loop->trip_count, 1u) << mb.name;
        }
    }
}

TEST(Suite, SuiteCoversTheUtilizationSpace)
{
    // Across the whole suite every component must be stressed hard
    // somewhere — the estimator needs that coverage to identify every
    // omega (Sec. IV's design goal).
    gpu::ComponentArray best{};
    for (const auto &mb : ubench::buildSuite()) {
        const auto u = utilAtRef(mb.demand);
        for (std::size_t i = 0; i < gpu::kNumComponents; ++i)
            best[i] = std::max(best[i], u[i]);
    }
    for (std::size_t i = 0; i < gpu::kNumComponents; ++i)
        EXPECT_GT(best[i], 0.6)
                << componentName(static_cast<Component>(i));
}

TEST(Suite, InvalidKnobsPanic)
{
    EXPECT_THROW(ubench::makeArithmetic(ubench::Family::SP, 0),
                 std::logic_error);
    EXPECT_THROW(ubench::makeDram(-1), std::logic_error);
    EXPECT_THROW(ubench::makeArithmetic(ubench::Family::L2, 4),
                 std::logic_error);
}

} // namespace
