/**
 * @file
 * Tests of the CUDA-source emitter: structural checks against the
 * Fig. 3 templates.
 */

#include <gtest/gtest.h>

#include "ubench/cuda_source.hh"

namespace
{

using namespace gpupm;

TEST(CudaSource, ArithmeticTemplateMatchesFig3a)
{
    const auto mb = ubench::makeArithmetic(ubench::Family::SP, 64);
    const std::string src = ubench::cudaSource(mb);
    EXPECT_NE(src.find("__global__ void ubench_SP_N64"),
              std::string::npos);
    EXPECT_NE(src.find("float r0, r1, r2, r3;"), std::string::npos);
    EXPECT_NE(src.find("for (int i = 0; i < 64; i++)"),
              std::string::npos);
    EXPECT_NE(src.find("r0 = r0 * r0 + r1;"), std::string::npos);
    EXPECT_NE(src.find("B[threadId] = r0;"), std::string::npos);
}

TEST(CudaSource, TypesFollowFamily)
{
    EXPECT_NE(ubench::cudaSource(
                      ubench::makeArithmetic(ubench::Family::Int, 8))
                      .find("int r0, r1, r2, r3;"),
              std::string::npos);
    EXPECT_NE(ubench::cudaSource(
                      ubench::makeArithmetic(ubench::Family::DP, 8))
                      .find("double r0, r1, r2, r3;"),
              std::string::npos);
}

TEST(CudaSource, SfUsesTranscendentals)
{
    const auto mb = ubench::makeArithmetic(ubench::Family::SF, 16);
    const std::string src = ubench::cudaSource(mb);
    EXPECT_NE(src.find("__logf"), std::string::npos);
    EXPECT_NE(src.find("__sinf"), std::string::npos);
    EXPECT_NE(src.find("__cosf"), std::string::npos);
}

TEST(CudaSource, SharedTemplateMatchesFig3c)
{
    const std::string src = ubench::cudaSource(ubench::makeShared(2));
    EXPECT_NE(src.find("__shared__ float shared[THREADS];"),
              std::string::npos);
    EXPECT_NE(src.find("shared[THREADS - threadId - 1] = r0;"),
              std::string::npos);
    // The intensity knob adds exactly two integer ops per iteration.
    std::size_t count = 0, pos = 0;
    while ((pos = src.find("acc = acc * 33 +", pos)) !=
           std::string::npos) {
        ++count;
        ++pos;
    }
    EXPECT_EQ(count, 2u);
}

TEST(CudaSource, DramTemplateStreams)
{
    const std::string src = ubench::cudaSource(ubench::makeDram(4));
    EXPECT_NE(src.find("A[threadId + i * stride]"),
              std::string::npos);
    std::size_t count = 0, pos = 0;
    while ((pos = src.find("r1 = r1 * r1 + r0;", pos)) !=
           std::string::npos) {
        ++count;
        ++pos;
    }
    EXPECT_EQ(count, 4u);
}

TEST(CudaSource, IdleHasNoKernel)
{
    const auto idle = ubench::buildFamily(ubench::Family::Idle);
    EXPECT_THROW(ubench::cudaSource(idle.front()),
                 std::runtime_error);
}

TEST(CudaSource, SuiteFileContainsEveryKernelOnce)
{
    const std::string all = ubench::cudaSuiteSource();
    for (const auto &mb : ubench::buildSuite()) {
        if (mb.family == ubench::Family::Idle)
            continue;
        std::string marker = "ubench_";
        for (char c : mb.name)
            marker += std::isalnum(static_cast<unsigned char>(c))
                              ? c
                              : '_';
        const auto first = all.find(marker + "(");
        EXPECT_NE(first, std::string::npos) << mb.name;
        EXPECT_EQ(all.find(marker + "(", first + 1),
                  std::string::npos)
                << mb.name << " emitted twice";
    }
    EXPECT_NE(all.find("// 82 kernels."), std::string::npos);
}

} // namespace
