/**
 * @file
 * Tests of the simulated CUPTI profiling session: aggregation
 * identities, determinism, and the per-architecture counter fidelity
 * ordering the paper reports.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "cupti/profiler.hh"

namespace
{

using namespace gpupm;

sim::KernelDemand
probeKernel()
{
    sim::KernelDemand d;
    d.name = "probe";
    d.warps_int = 1e9;
    d.warps_sp = 3e9;
    d.warps_dp = 1e7;
    d.warps_sf = 5e7;
    d.warps_other = 5e8;
    d.bytes_l2_rd = 4e9;
    d.bytes_l2_wr = 2e9;
    d.bytes_dram_rd = 2e9;
    d.bytes_dram_wr = 1e9;
    d.bytes_shared_ld = 1e9;
    d.bytes_shared_st = 1e9;
    return d;
}

TEST(Profiler, AggregationRecoversDemandOnCleanDevice)
{
    // On the Maxwell board (small bias/leak) the aggregated metrics
    // should track the true demand within a few percent.
    sim::PhysicalGpu board(gpu::DeviceKind::GtxTitanX);
    cupti::Profiler prof(board, 1);
    const auto d = probeKernel();
    const auto rm =
            prof.profile(d, board.descriptor().referenceConfig());

    EXPECT_NEAR(rm.dram_rd_bytes / d.bytes_dram_rd, 1.0, 0.15);
    EXPECT_NEAR(rm.l2_rd_bytes / d.bytes_l2_rd, 1.0, 0.15);
    EXPECT_NEAR(rm.shared_ld_bytes / d.bytes_shared_ld, 1.0, 0.15);
    const double sms = board.descriptor().num_sms;
    EXPECT_NEAR(rm.warps_sp_int * sms /
                        (d.warps_int + d.warps_sp),
                1.0, 0.2);
    EXPECT_GT(rm.time_s, 0.0);
    EXPECT_GT(rm.acycles, 0.0);
}

TEST(Profiler, Eq10InputsPreserveInstructionRatio)
{
    sim::PhysicalGpu board(gpu::DeviceKind::GtxTitanX);
    cupti::Profiler prof(board, 1);
    const auto d = probeKernel();
    const auto rm =
            prof.profile(d, board.descriptor().referenceConfig());
    // inst_sp / inst_int should track warps_sp / warps_int = 3.
    EXPECT_NEAR(rm.inst_sp / rm.inst_int, 3.0, 0.4);
}

TEST(Profiler, SameSeedSameSnapshot)
{
    sim::PhysicalGpu board(gpu::DeviceKind::GtxTitanX);
    cupti::Profiler a(board, 7), b(board, 7);
    const auto d = probeKernel();
    const auto cfg = board.descriptor().referenceConfig();
    const auto sa = a.collect(d, cfg);
    const auto sb = b.collect(d, cfg);
    ASSERT_EQ(sa.counts.size(), sb.counts.size());
    for (const auto &[id, v] : sa.counts)
        EXPECT_DOUBLE_EQ(v, sb.counts.at(id));
}

TEST(Profiler, BiasIsFixedPerEvent)
{
    sim::PhysicalGpu board(gpu::DeviceKind::TeslaK40c);
    cupti::Profiler prof(board, 3);
    const auto &table =
            cupti::EventTable::get(gpu::DeviceKind::TeslaK40c);
    const auto id = table.eventsFor(cupti::Metric::WarpsDp)[0].id;
    const double b1 = prof.biasOf(id);
    const double b2 = prof.biasOf(id);
    EXPECT_DOUBLE_EQ(b1, b2);
    EXPECT_GT(b1, 0.4);
    EXPECT_LT(b1, 1.6);
}

TEST(Profiler, UnknownEventIdPanics)
{
    sim::PhysicalGpu board(gpu::DeviceKind::GtxTitanX);
    cupti::Profiler prof(board, 3);
    EXPECT_THROW(prof.biasOf(999999999), std::logic_error);
}

TEST(Profiler, KeplerCountersAreLessFaithfulThanMaxwell)
{
    // Average absolute deviation of the aggregated warp metric from
    // the true demand, over several seeds: the Kepler board must be
    // markedly worse (the paper's explanation for its higher error).
    const auto fidelity = [](gpu::DeviceKind kind) {
        sim::PhysicalGpu board(kind);
        const auto d = probeKernel();
        double err = 0.0;
        const int n = 12;
        for (int seed = 1; seed <= n; ++seed) {
            cupti::Profiler prof(board, seed);
            const auto rm = prof.profile(
                    d, board.descriptor().referenceConfig());
            const double truth =
                    (d.warps_int + d.warps_sp) /
                    board.descriptor().num_sms;
            err += std::abs(rm.warps_sp_int - truth) / truth;
        }
        return err / n;
    };
    const double kepler = fidelity(gpu::DeviceKind::TeslaK40c);
    const double maxwell = fidelity(gpu::DeviceKind::GtxTitanX);
    EXPECT_GT(kepler, 1.5 * maxwell);
}

TEST(Profiler, DistortionShiftsWarpAndMemoryCounts)
{
    sim::PhysicalGpu board(gpu::DeviceKind::TeslaK40c);
    cupti::Profiler prof(board, 5);
    auto base = probeKernel();
    auto distorted = probeKernel();
    distorted.counter_distortion = 0.3;
    const auto cfg = board.descriptor().referenceConfig();
    const auto rb = prof.aggregate(prof.collect(base, cfg));
    const auto rd = prof.aggregate(prof.collect(distorted, cfg));
    EXPECT_GT(rd.warps_sp_int, rb.warps_sp_int * 1.3);
    EXPECT_GT(rd.dram_rd_bytes, rb.dram_rd_bytes * 1.3);
    // Instruction (Eq. 10) events are replay-immune.
    EXPECT_NEAR(rd.inst_sp / rb.inst_sp, 1.0, 0.05);
}

TEST(Profiler, ZeroDemandYieldsZeroCounts)
{
    sim::PhysicalGpu board(gpu::DeviceKind::GtxTitanX);
    cupti::Profiler prof(board, 5);
    sim::KernelDemand d;
    d.name = "tiny";
    d.warps_sp = 1e6; // only SP work
    const auto rm =
            prof.profile(d, board.descriptor().referenceConfig());
    // The DP counter may pick up a tiny SP/INT leak, nothing more.
    const double sms = board.descriptor().num_sms;
    EXPECT_LT(rm.warps_dp * sms, 0.01 * d.warps_sp);
    EXPECT_DOUBLE_EQ(rm.dram_rd_bytes, 0.0);
    EXPECT_DOUBLE_EQ(rm.shared_ld_bytes, 0.0);
}

} // namespace

namespace
{

TEST(Profiler, CollectionRequiresMultiplePasses)
{
    sim::PhysicalGpu board(gpu::DeviceKind::GtxTitanX);
    cupti::Profiler prof(board, 2);
    const auto passes = prof.collectionPasses();
    // Table I exceeds one pass of counters on every device.
    EXPECT_GE(passes.size(), 2u);
    std::size_t total = 0;
    for (const auto &p : passes) {
        EXPECT_LE(p.size(), cupti::Profiler::kCountersPerPass);
        EXPECT_FALSE(p.empty());
        total += p.size();
    }
    // Every registered event is collected exactly once.
    EXPECT_EQ(total, cupti::EventTable::get(gpu::DeviceKind::GtxTitanX)
                             .allEvents()
                             .size());
}

TEST(Profiler, PassesCoverEveryEventOnAllDevices)
{
    for (auto kind :
         {gpu::DeviceKind::TitanXp, gpu::DeviceKind::GtxTitanX,
          gpu::DeviceKind::TeslaK40c}) {
        sim::PhysicalGpu board(kind);
        cupti::Profiler prof(board, 2);
        std::set<cupti::EventId> seen;
        for (const auto &p : prof.collectionPasses())
            for (auto id : p)
                EXPECT_TRUE(seen.insert(id).second);
        for (const auto &ev :
             cupti::EventTable::get(kind).allEvents())
            EXPECT_TRUE(seen.count(ev.id)) << ev.name;
    }
}

} // namespace
