/**
 * @file
 * Tests of the Table I event registry.
 */

#include <gtest/gtest.h>

#include <set>

#include "cupti/events.hh"

namespace
{

using namespace gpupm;
using namespace gpupm::cupti;

TEST(Events, WPrefixesMatchTableIFootnote)
{
    EXPECT_EQ(EventTable::get(gpu::DeviceKind::TitanXp).wPrefix(),
              352321u);
    EXPECT_EQ(EventTable::get(gpu::DeviceKind::GtxTitanX).wPrefix(),
              335544u);
    EXPECT_EQ(EventTable::get(gpu::DeviceKind::TeslaK40c).wPrefix(),
              318767u);
}

TEST(Events, TitanXpUndisclosedEventNumbers)
{
    const auto &t = EventTable::get(gpu::DeviceKind::TitanXp);
    const auto &spint = t.eventsFor(Metric::WarpsSpInt);
    ASSERT_EQ(spint.size(), 2u);
    EXPECT_EQ(spint[0].name, "W580");
    EXPECT_EQ(spint[1].name, "W581");
    EXPECT_EQ(t.eventsFor(Metric::WarpsDp)[0].name, "W584");
    EXPECT_EQ(t.eventsFor(Metric::WarpsSf)[0].name, "W560");
    EXPECT_EQ(t.eventsFor(Metric::InstInt)[0].name, "W831");
    EXPECT_EQ(t.eventsFor(Metric::InstSp)[0].name, "W829");
}

TEST(Events, GtxTitanXUndisclosedEventNumbers)
{
    const auto &t = EventTable::get(gpu::DeviceKind::GtxTitanX);
    EXPECT_EQ(t.eventsFor(Metric::WarpsSpInt)[0].name, "W361");
    EXPECT_EQ(t.eventsFor(Metric::WarpsSpInt)[1].name, "W362");
    EXPECT_EQ(t.eventsFor(Metric::WarpsDp)[0].name, "W364");
    EXPECT_EQ(t.eventsFor(Metric::WarpsSf)[0].name, "W359");
    EXPECT_EQ(t.eventsFor(Metric::InstInt)[0].name, "W504");
    EXPECT_EQ(t.eventsFor(Metric::InstSp)[0].name, "W502");
}

TEST(Events, TeslaK40cUndisclosedEventNumbers)
{
    const auto &t = EventTable::get(gpu::DeviceKind::TeslaK40c);
    const auto &spint = t.eventsFor(Metric::WarpsSpInt);
    ASSERT_EQ(spint.size(), 4u);
    EXPECT_EQ(spint[0].name, "W131");
    EXPECT_EQ(spint[1].name, "W134");
    EXPECT_EQ(spint[2].name, "W136");
    EXPECT_EQ(spint[3].name, "W137");
    EXPECT_EQ(t.eventsFor(Metric::WarpsDp)[0].name, "W141");
    EXPECT_EQ(t.eventsFor(Metric::WarpsSf)[0].name, "W133");
    EXPECT_EQ(t.eventsFor(Metric::InstInt)[0].name, "W205");
    EXPECT_EQ(t.eventsFor(Metric::InstSp)[0].name, "W203");
}

TEST(Events, K40cExposesFourL2SubpartitionsOthersTwo)
{
    EXPECT_EQ(EventTable::get(gpu::DeviceKind::TeslaK40c)
                      .eventsFor(Metric::L2ReadQueries)
                      .size(),
              4u);
    EXPECT_EQ(EventTable::get(gpu::DeviceKind::GtxTitanX)
                      .eventsFor(Metric::L2ReadQueries)
                      .size(),
              2u);
    EXPECT_EQ(EventTable::get(gpu::DeviceKind::TitanXp)
                      .eventsFor(Metric::L2ReadQueries)
                      .size(),
              2u);
}

TEST(Events, K40cSharedEventsUseL1Names)
{
    const auto &t = EventTable::get(gpu::DeviceKind::TeslaK40c);
    EXPECT_EQ(t.eventsFor(Metric::SharedLoadTrans)[0].name,
              "l1_shared_ld_transactions");
    const auto &tx = EventTable::get(gpu::DeviceKind::GtxTitanX);
    EXPECT_EQ(tx.eventsFor(Metric::SharedLoadTrans)[0].name,
              "shared_ld_transactions");
}

class EventsAllDevices
    : public ::testing::TestWithParam<gpu::DeviceKind>
{
};

TEST_P(EventsAllDevices, EveryMetricHasEvents)
{
    const auto &t = EventTable::get(GetParam());
    for (Metric m : kAllMetrics)
        EXPECT_FALSE(t.eventsFor(m).empty()) << metricName(m);
}

TEST_P(EventsAllDevices, EventIdsAreUnique)
{
    const auto &t = EventTable::get(GetParam());
    std::set<EventId> seen;
    for (const auto &ev : t.allEvents())
        EXPECT_TRUE(seen.insert(ev.id).second)
                << "duplicate id " << ev.id << " (" << ev.name << ")";
}

TEST_P(EventsAllDevices, WEventIdsCarryDevicePrefix)
{
    const auto &t = EventTable::get(GetParam());
    for (const auto &ev : t.allEvents()) {
        if (ev.name.starts_with("W")) {
            EXPECT_EQ(ev.id / 1000, t.wPrefix()) << ev.name;
        }
    }
}

TEST_P(EventsAllDevices, DramSectorEventsSplitOverTwoPartitions)
{
    const auto &t = EventTable::get(GetParam());
    EXPECT_EQ(t.eventsFor(Metric::DramReadSectors).size(), 2u);
    EXPECT_EQ(t.eventsFor(Metric::DramWriteSectors).size(), 2u);
}

INSTANTIATE_TEST_SUITE_P(TableI, EventsAllDevices,
                         ::testing::Values(gpu::DeviceKind::TitanXp,
                                           gpu::DeviceKind::GtxTitanX,
                                           gpu::DeviceKind::TeslaK40c));

TEST(Events, MetricNamesAreStable)
{
    EXPECT_EQ(metricName(Metric::ActiveCycles), "ACycles");
    EXPECT_EQ(metricName(Metric::WarpsSpInt), "WarpsSP/INT");
}

} // namespace
