# Drives the gpupm CLI through campaign -> fit -> info -> predict ->
# sweep, checking exit codes and that the file formats round-trip.
file(MAKE_DIRECTORY ${WORK})

execute_process(COMMAND ${CLI} campaign titanx ${WORK}/tx.campaign
                RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "campaign failed: ${rc}")
endif()

execute_process(COMMAND ${CLI} fit ${WORK}/tx.campaign ${WORK}/tx.model
                RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "fit failed: ${rc}")
endif()

execute_process(COMMAND ${CLI} info ${WORK}/tx.model
                RESULT_VARIABLE rc OUTPUT_VARIABLE out)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "info failed: ${rc}")
endif()
if(NOT out MATCHES "GTX Titan X")
    message(FATAL_ERROR "info output missing device name: ${out}")
endif()

execute_process(COMMAND ${CLI} predict ${WORK}/tx.model BLCKSC 595 810
                RESULT_VARIABLE rc OUTPUT_VARIABLE out)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "predict failed: ${rc}")
endif()
if(NOT out MATCHES "BLCKSC @ \\(595, 810\\)")
    message(FATAL_ERROR "predict output unexpected: ${out}")
endif()

# Off-grid prediction goes through voltage interpolation.
execute_process(COMMAND ${CLI} predict ${WORK}/tx.model CUTCP 700 3505
                RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "off-grid predict failed: ${rc}")
endif()

execute_process(COMMAND ${CLI} sweep ${WORK}/tx.model GEMM
                RESULT_VARIABLE rc OUTPUT_VARIABLE out)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "sweep failed: ${rc}")
endif()

# Unknown application must fail cleanly.
execute_process(COMMAND ${CLI} predict ${WORK}/tx.model NOPE
                RESULT_VARIABLE rc)
if(rc EQUAL 0)
    message(FATAL_ERROR "unknown app should fail")
endif()

# CUDA export emits all 82 kernels.
execute_process(COMMAND ${CLI} export-cuda ${WORK}/suite.cu
                RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "export-cuda failed: ${rc}")
endif()
file(READ ${WORK}/suite.cu cu)
string(REGEX MATCHALL "__global__" kernels "${cu}")
list(LENGTH kernels nk)
if(NOT nk EQUAL 82)
    message(FATAL_ERROR "expected 82 kernels, got ${nk}")
endif()
