# Drives the gpupm CLI through campaign -> fit -> info -> predict ->
# sweep, checking exit codes and that the file formats round-trip.
file(MAKE_DIRECTORY ${WORK})

execute_process(COMMAND ${CLI} campaign titanx ${WORK}/tx.campaign
                RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "campaign failed: ${rc}")
endif()

execute_process(COMMAND ${CLI} fit ${WORK}/tx.campaign ${WORK}/tx.model
                RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "fit failed: ${rc}")
endif()

execute_process(COMMAND ${CLI} info ${WORK}/tx.model
                RESULT_VARIABLE rc OUTPUT_VARIABLE out)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "info failed: ${rc}")
endif()
if(NOT out MATCHES "GTX Titan X")
    message(FATAL_ERROR "info output missing device name: ${out}")
endif()

execute_process(COMMAND ${CLI} predict ${WORK}/tx.model BLCKSC 595 810
                RESULT_VARIABLE rc OUTPUT_VARIABLE out)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "predict failed: ${rc}")
endif()
if(NOT out MATCHES "BLCKSC @ \\(595, 810\\)")
    message(FATAL_ERROR "predict output unexpected: ${out}")
endif()

# Off-grid prediction goes through voltage interpolation.
execute_process(COMMAND ${CLI} predict ${WORK}/tx.model CUTCP 700 3505
                RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "off-grid predict failed: ${rc}")
endif()

execute_process(COMMAND ${CLI} sweep ${WORK}/tx.model GEMM
                RESULT_VARIABLE rc OUTPUT_VARIABLE out)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "sweep failed: ${rc}")
endif()

# Unknown application must fail cleanly.
execute_process(COMMAND ${CLI} predict ${WORK}/tx.model NOPE
                RESULT_VARIABLE rc)
if(rc EQUAL 0)
    message(FATAL_ERROR "unknown app should fail")
endif()

# Freshly produced artifacts pass validation, human and JSON form.
execute_process(COMMAND ${CLI} validate ${WORK}/tx.campaign ${WORK}/tx.model
                RESULT_VARIABLE rc OUTPUT_VARIABLE out)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "validate failed on good artifacts: ${rc}: ${out}")
endif()
if(NOT out MATCHES "OK")
    message(FATAL_ERROR "validate output missing OK: ${out}")
endif()

execute_process(COMMAND ${CLI} validate --json ${WORK}/tx.model
                RESULT_VARIABLE rc OUTPUT_VARIABLE out)
if(NOT rc EQUAL 0 OR NOT out MATCHES "\"ok\":true")
    message(FATAL_ERROR "validate --json unexpected: ${rc}: ${out}")
endif()

# A corrupted model is rejected with a non-zero exit by validate and
# by every consumer, instead of being parsed into silently-wrong
# coefficients.
file(READ ${WORK}/tx.model model_text)
if(model_text MATCHES "crc32 deadbeef")
    string(REGEX REPLACE "crc32 [0-9a-f]+" "crc32 feedface"
           corrupt "${model_text}")
else()
    string(REGEX REPLACE "crc32 [0-9a-f]+" "crc32 deadbeef"
           corrupt "${model_text}")
endif()
file(WRITE ${WORK}/corrupt.model "${corrupt}")
execute_process(COMMAND ${CLI} validate ${WORK}/corrupt.model
                RESULT_VARIABLE rc OUTPUT_VARIABLE out)
if(rc EQUAL 0)
    message(FATAL_ERROR "validate accepted a corrupt model: ${out}")
endif()
execute_process(COMMAND ${CLI} info ${WORK}/corrupt.model
                RESULT_VARIABLE rc ERROR_VARIABLE err)
if(rc EQUAL 0)
    message(FATAL_ERROR "info accepted a corrupt model")
endif()
if(NOT err MATCHES "checksum-mismatch")
    message(FATAL_ERROR "expected checksum-mismatch, got: ${err}")
endif()

# Legacy (pre-envelope) files still load by default but are rejected
# under --strict unless --allow-legacy is also given.
file(READ ${WORK}/tx.model enveloped)
string(FIND "${enveloped}" "\n" eol)
math(EXPR start "${eol} + 1")
string(SUBSTRING "${enveloped}" ${start} -1 legacy)
file(WRITE ${WORK}/legacy.model "${legacy}")
execute_process(COMMAND ${CLI} info ${WORK}/legacy.model
                RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "legacy model should load by default: ${rc}")
endif()
execute_process(COMMAND ${CLI} info --strict ${WORK}/legacy.model
                RESULT_VARIABLE rc ERROR_VARIABLE err)
if(rc EQUAL 0)
    message(FATAL_ERROR "--strict accepted a legacy model")
endif()
if(NOT err MATCHES "version-mismatch")
    message(FATAL_ERROR "expected version-mismatch, got: ${err}")
endif()
execute_process(COMMAND ${CLI} info --strict --allow-legacy
                        ${WORK}/legacy.model
                RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "--strict --allow-legacy should load: ${rc}")
endif()

# CUDA export emits all 82 kernels.
execute_process(COMMAND ${CLI} export-cuda ${WORK}/suite.cu
                RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "export-cuda failed: ${rc}")
endif()
file(READ ${WORK}/suite.cu cu)
string(REGEX MATCHALL "__global__" kernels "${cu}")
list(LENGTH kernels nk)
if(NOT nk EQUAL 82)
    message(FATAL_ERROR "expected 82 kernels, got ${nk}")
endif()
