/**
 * @file
 * Tests of the prior-art baseline models.
 */

#include <gtest/gtest.h>

#include "baselines/baselines.hh"
#include "core/campaign.hh"

namespace
{

using namespace gpupm;
using gpu::Component;
using gpu::componentIndex;

const model::TrainingData &
titanxData()
{
    static const model::TrainingData data = [] {
        sim::PhysicalGpu board(gpu::DeviceKind::GtxTitanX);
        model::CampaignOptions o;
        o.power_repetitions = 2;
        return model::runTrainingCampaign(board, ubench::buildSuite(),
                                          o);
    }();
    return data;
}

TEST(Baselines, AbeLinearFitsTrainingDataRoughly)
{
    const auto &data = titanxData();
    const auto abe = baselines::AbeLinearModel::train(data);
    // On the reference configuration (which it trained on) the linear
    // model should be in the right ballpark for most benchmarks.
    const std::size_t ref_ci =
            data.configIndex(data.reference).value();
    double err = 0.0;
    for (std::size_t b = 0; b < data.utils.size(); ++b) {
        const double pred =
                abe.predict(data.utils[b], data.reference);
        err += std::abs(pred - data.power_w[b][ref_ci]) /
               data.power_w[b][ref_ci];
    }
    EXPECT_LT(err / data.utils.size(), 0.15);
}

TEST(Baselines, AbePredictionRespondsToUtilization)
{
    const auto abe = baselines::AbeLinearModel::train(titanxData());
    gpu::ComponentArray idle{};
    gpu::ComponentArray busy{};
    busy[componentIndex(Component::SP)] = 0.9;
    busy[componentIndex(Component::Dram)] = 0.8;
    EXPECT_GT(abe.predict(busy, {975, 3505}),
              abe.predict(idle, {975, 3505}) + 20.0);
}

TEST(Baselines, CubicModelTrainsAndPredicts)
{
    const auto cubic =
            baselines::CubicScalingModel::train(titanxData());
    gpu::ComponentArray busy{};
    busy[componentIndex(Component::SP)] = 0.7;
    const double lo = cubic.predict(busy, {595, 3505});
    const double hi = cubic.predict(busy, {1164, 3505});
    EXPECT_GT(hi, lo);
}

TEST(Baselines, CubicOverstatesCoreScalingVsMeasurement)
{
    // The V-proportional-to-f assumption exaggerates how fast power
    // grows with the core clock in the flat-voltage region: at the
    // lowest core frequency it must under-predict the measured power
    // of compute-heavy microbenchmarks (or the cubic would not be an
    // interesting failure mode).
    const auto &data = titanxData();
    const auto cubic = baselines::CubicScalingModel::train(data);
    const gpu::FreqConfig low{595, 3505};
    const std::size_t ci = data.configIndex(low).value();
    double signed_err = 0.0;
    for (std::size_t b = 0; b < data.utils.size(); ++b)
        signed_err += cubic.predict(data.utils[b], low) -
                      data.power_w[b][ci];
    // Net bias exists (sign depends on where LS balances, but the
    // magnitude should be visible).
    EXPECT_GT(std::abs(signed_err) / data.utils.size(), 0.5);
}

TEST(Baselines, RefScalingReproducesReferencePoint)
{
    const auto &data = titanxData();
    const auto rs = baselines::RefScalingModel::train(data);
    // At the reference configuration the scaling factors should be
    // close to 1: P ~ P_ref.
    EXPECT_NEAR(rs.predict(150.0, data.reference), 150.0, 15.0);
    // Power falls when both clocks fall.
    EXPECT_LT(rs.predict(150.0, {595, 810}),
              rs.predict(150.0, data.reference));
}

} // namespace
