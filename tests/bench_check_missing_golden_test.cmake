# A regression gate whose golden file vanished must fail loudly with
# the named `missing-golden` error (exit 3) instead of skipping — for
# both the bench-telemetry and the scoreboard subcommands, and
# regardless of whether the run-side artifact is fine.
file(MAKE_DIRECTORY ${WORK})
file(WRITE ${WORK}/run.json "{}")

execute_process(
    COMMAND ${BENCH_CHECK} bench ${WORK}/run.json ${WORK}/no_such_golden.json
    RESULT_VARIABLE rc ERROR_VARIABLE err)
if(NOT rc EQUAL 3)
    message(FATAL_ERROR "bench with missing golden exited ${rc}, want 3")
endif()
if(NOT err MATCHES "missing-golden")
    message(FATAL_ERROR "bench error lacks the named error: ${err}")
endif()

execute_process(
    COMMAND ${BENCH_CHECK} scoreboard ${WORK}/run.json ${WORK}/no_such_golden.sb
    RESULT_VARIABLE rc ERROR_VARIABLE err)
if(NOT rc EQUAL 3)
    message(FATAL_ERROR "scoreboard with missing golden exited ${rc}, want 3")
endif()
if(NOT err MATCHES "missing-golden")
    message(FATAL_ERROR "scoreboard error lacks the named error: ${err}")
endif()

# An unreadable golden (a directory at the path) is the same failure.
file(MAKE_DIRECTORY ${WORK}/golden_is_a_dir)
execute_process(
    COMMAND ${BENCH_CHECK} bench ${WORK}/run.json ${WORK}/golden_is_a_dir
    RESULT_VARIABLE rc ERROR_VARIABLE err)
if(NOT rc EQUAL 3)
    message(FATAL_ERROR "bench with unreadable golden exited ${rc}, want 3")
endif()

# A present-but-invalid golden is a normal gate failure (1), not a
# missing-golden (3): the two conditions stay distinguishable.
file(WRITE ${WORK}/bad_golden.json "not json")
execute_process(
    COMMAND ${BENCH_CHECK} bench ${WORK}/run.json ${WORK}/bad_golden.json
    RESULT_VARIABLE rc)
if(NOT rc EQUAL 1)
    message(FATAL_ERROR "bench with invalid golden exited ${rc}, want 1")
endif()
