/**
 * @file
 * Tests of the online sampling loop with a fake probe: tick
 * accounting, residual/scoreboard snapshots, probe-failure handling,
 * staleness, the NDJSON event log, and duration-bounded runs.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <thread>

#include "obs/alerts.hh"
#include "obs/flight_recorder.hh"
#include "obs/metrics.hh"
#include "obs/sampler.hh"
#include "obs/standard.hh"
#include "obs/tsdb.hh"

namespace
{

using namespace gpupm;

class SamplerTest : public ::testing::Test
{
  protected:
    void SetUp() override { obs::Registry::global().reset(); }
    void TearDown() override { obs::Registry::global().reset(); }

    std::vector<obs::SchedulePoint> schedule_{
            {"APP1", {595, 3505}},
            {"APP2", {1000, 3505}},
    };
};

obs::SamplerOptions
fastOptions()
{
    obs::SamplerOptions o;
    o.period_ms = 5;
    o.device = 1;
    o.device_name = "Fake GPU";
    o.reference = {1000, 3505};
    return o;
}

TEST_F(SamplerTest, TicksRoundRobinAndAggregate)
{
    std::atomic<int> calls{0};
    auto probe = [&](const std::string &app,
                     const gpu::FreqConfig &cfg) {
        calls.fetch_add(1);
        obs::MonitorSample s;
        s.app = app;
        s.cfg = cfg;
        s.measured_w = 100.0;
        s.predicted_w = app == "APP1" ? 110.0 : 100.0;
        return s;
    };
    obs::Sampler sampler(probe, schedule_, fastOptions());
    std::string err;
    ASSERT_TRUE(sampler.start(&err)) << err;
    while (sampler.ticks() < 6)
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
    sampler.stop();
    EXPECT_FALSE(sampler.running());
    EXPECT_EQ(calls.load(), sampler.ticks());

    const auto residuals = sampler.residualsSnapshot();
    ASSERT_GE(residuals.size(), 6u);
    // Round-robin: consecutive samples alternate over the schedule.
    EXPECT_EQ(residuals[0].app, "APP1");
    EXPECT_EQ(residuals[1].app, "APP2");
    EXPECT_EQ(residuals[2].app, "APP1");

    const auto sb = sampler.scoreboardSnapshot();
    EXPECT_EQ(sb.device_name, "Fake GPU");
    EXPECT_EQ(sb.overall.samples,
              static_cast<long>(residuals.size()));
    // APP1 errs by 10%, APP2 by 0% — overall MAE sits in between.
    EXPECT_GT(sb.overall.mae_pct, 0.0);
    EXPECT_LT(sb.overall.mae_pct, 10.1);
    EXPECT_FALSE(sampler.stale());
    EXPECT_LT(sampler.lastSampleAgeSeconds(), 5.0);
}

TEST_F(SamplerTest, ProbeFailuresAreCountedNotAggregated)
{
    obs::FlightRecorder recorder(16);
    auto probe = [](const std::string &app,
                    const gpu::FreqConfig &cfg) -> obs::MonitorSample {
        if (app == "APP2")
            throw std::runtime_error("sensor detached");
        obs::MonitorSample s;
        s.app = app;
        s.cfg = cfg;
        s.measured_w = 50.0;
        s.predicted_w = 50.0;
        return s;
    };
    obs::Sampler sampler(probe, schedule_, fastOptions(), &recorder);
    ASSERT_TRUE(sampler.start());
    while (sampler.ticks() < 4)
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
    sampler.stop();

    for (const auto &r : sampler.residualsSnapshot())
        EXPECT_EQ(r.app, "APP1"); // failures never become residuals
    EXPECT_GE(obs::monitorProbeFailuresTotal().value(), 1.0);

    bool saw_failure_record = false;
    for (const auto &rec : recorder.snapshot())
        if (rec.name == "monitor.probe_failure")
            saw_failure_record = true;
    EXPECT_TRUE(saw_failure_record);
}

TEST_F(SamplerTest, DurationBoundsTheRun)
{
    auto o = fastOptions();
    o.duration_s = 0.05;
    auto probe = [](const std::string &app,
                    const gpu::FreqConfig &cfg) {
        obs::MonitorSample s;
        s.app = app;
        s.cfg = cfg;
        s.measured_w = 1.0;
        s.predicted_w = 1.0;
        return s;
    };
    obs::Sampler sampler(probe, schedule_, o);
    ASSERT_TRUE(sampler.start());
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::seconds(10);
    while (sampler.running() &&
           std::chrono::steady_clock::now() < deadline)
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    EXPECT_FALSE(sampler.running()) << "duration did not stop it";
    sampler.stop();
    EXPECT_GE(sampler.ticks(), 1L);
}

TEST_F(SamplerTest, EventLogIsWellFormedNdjson)
{
    auto o = fastOptions();
    o.events_out = "sampler_events_test.ndjson";
    auto probe = [](const std::string &app,
                    const gpu::FreqConfig &cfg) {
        obs::MonitorSample s;
        s.app = app;
        s.cfg = cfg;
        s.measured_w = 123.5;
        s.predicted_w = 120.25;
        return s;
    };
    obs::Sampler sampler(probe, schedule_, o);
    ASSERT_TRUE(sampler.start());
    while (sampler.ticks() < 3)
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
    sampler.stop();

    std::ifstream in(o.events_out);
    ASSERT_TRUE(in.good());
    std::string line;
    int lines = 0;
    while (std::getline(in, line)) {
        ++lines;
        EXPECT_EQ(line.front(), '{');
        EXPECT_EQ(line.back(), '}');
        EXPECT_NE(line.find("\"app\":\"APP"), std::string::npos);
        EXPECT_NE(line.find("\"measured_w\":123.5"),
                  std::string::npos);
        EXPECT_NE(line.find("\"predicted_w\":120.25"),
                  std::string::npos);
        EXPECT_NE(line.find("\"abs_err_pct\":"), std::string::npos);
    }
    EXPECT_GE(lines, 3);
    in.close();
    std::remove(o.events_out.c_str());
}

TEST_F(SamplerTest, ResidualWindowIsBounded)
{
    auto o = fastOptions();
    o.period_ms = 1;
    o.max_samples = 4;
    auto probe = [](const std::string &app,
                    const gpu::FreqConfig &cfg) {
        obs::MonitorSample s;
        s.app = app;
        s.cfg = cfg;
        s.measured_w = 1.0;
        s.predicted_w = 1.0;
        return s;
    };
    obs::Sampler sampler(probe, schedule_, o);
    ASSERT_TRUE(sampler.start());
    while (sampler.ticks() < 12)
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
    sampler.stop();
    EXPECT_LE(sampler.residualsSnapshot().size(), 4u);
}

TEST_F(SamplerTest, EventLogRotatesAtByteCapWithoutSplittingLines)
{
    auto o = fastOptions();
    o.events_out = "sampler_rotate_test.ndjson";
    o.events_max_bytes = 600; // a handful of ~190-byte lines
    auto probe = [](const std::string &app,
                    const gpu::FreqConfig &cfg) {
        obs::MonitorSample s;
        s.app = app;
        s.cfg = cfg;
        s.measured_w = 100.0;
        s.predicted_w = 90.0;
        return s;
    };
    obs::Sampler sampler(probe, schedule_, o);
    std::string err;
    ASSERT_TRUE(sampler.openEvents(&err)) << err;
    for (int t = 0; t < 30; ++t)
        sampler.tickSynchronously((t + 1) * 5000);
    EXPECT_GE(sampler.eventRotations(), 1L);

    // Both generations exist; every line in both is an intact JSON
    // object (rotation never splits a line) and the live file stays
    // within the cap plus at most one line.
    long total_lines = 0;
    for (const std::string &path :
         {o.events_out + ".1", o.events_out}) {
        std::ifstream in(path);
        ASSERT_TRUE(in.good()) << path;
        std::string line;
        long bytes = 0;
        while (std::getline(in, line)) {
            ++total_lines;
            bytes += static_cast<long>(line.size()) + 1;
            EXPECT_EQ(line.front(), '{') << path;
            EXPECT_EQ(line.back(), '}') << path;
            EXPECT_NE(line.find("\"tick\":"), std::string::npos);
        }
        EXPECT_LE(bytes, o.events_max_bytes + 250) << path;
    }
    // One generation of history: rotation keeps recent lines, not
    // all 30 ticks.
    EXPECT_GE(total_lines, 2L);
    EXPECT_LT(total_lines, 30L);
    std::remove(o.events_out.c_str());
    std::remove((o.events_out + ".1").c_str());
}

TEST_F(SamplerTest, EventLogKeepsMultipleRotatedGenerations)
{
    auto o = fastOptions();
    o.events_out = "sampler_rotate_gens_test.ndjson";
    o.events_max_bytes = 600;
    o.events_max_files = 3; // keep .1 .2 .3 behind the live file
    auto probe = [](const std::string &app,
                    const gpu::FreqConfig &cfg) {
        obs::MonitorSample s;
        s.app = app;
        s.cfg = cfg;
        s.measured_w = 100.0;
        s.predicted_w = 90.0;
        return s;
    };
    obs::Sampler sampler(probe, schedule_, o);
    std::string err;
    ASSERT_TRUE(sampler.openEvents(&err)) << err;
    for (int t = 0; t < 60; ++t)
        sampler.tickSynchronously((t + 1) * 5000);
    // Enough ticks to roll through every generation at least once.
    EXPECT_GE(sampler.eventRotations(), 4L);

    // All four files exist; every line everywhere is an intact JSON
    // object and each file respects the byte cap (+ one line slack).
    long total_lines = 0;
    for (const std::string &path :
         {o.events_out + ".3", o.events_out + ".2",
          o.events_out + ".1", o.events_out}) {
        std::ifstream in(path);
        ASSERT_TRUE(in.good()) << path;
        std::string line;
        long bytes = 0;
        while (std::getline(in, line)) {
            ++total_lines;
            bytes += static_cast<long>(line.size()) + 1;
            EXPECT_EQ(line.front(), '{') << path;
            EXPECT_EQ(line.back(), '}') << path;
            EXPECT_NE(line.find("\"tick\":"), std::string::npos);
        }
        EXPECT_LE(bytes, o.events_max_bytes + 250) << path;
    }
    // Three generations of history hold strictly more of the past
    // than one, but rotation still discards the oldest ticks.
    EXPECT_GE(total_lines, 8L);
    EXPECT_LT(total_lines, 60L);
    for (const char *suffix : {"", ".1", ".2", ".3"})
        std::remove((o.events_out + suffix).c_str());
}

TEST_F(SamplerTest, SynchronousTicksFeedTsdbAndAlerts)
{
    auto o = fastOptions();
    o.rolling_window = 4;
    auto probe = [](const std::string &app,
                    const gpu::FreqConfig &cfg) {
        obs::MonitorSample s;
        s.app = app;
        s.cfg = cfg;
        s.measured_w = 100.0;
        s.predicted_w = 80.0; // 20% error, deterministic
        return s;
    };

    obs::Tsdb tsdb;
    obs::AlertRule rule;
    rule.name = "mae_high";
    rule.series = "gpupm_accuracy_rolling_mae_pct";
    rule.op = obs::AlertOp::Gt;
    rule.threshold = 10.0;
    rule.window_us = 1'000'000;
    rule.for_us = 0;
    rule.cooldown_us = 0;
    obs::AlertEngine engine(tsdb, {rule});
    obs::Sampler sampler(probe, schedule_, o, nullptr, &tsdb,
                         &engine);

    // Virtual time: tick t lands at (t+1) * 100 ms, no wall clock.
    for (int t = 0; t < 20; ++t)
        sampler.tickSynchronously((t + 1) * 100'000);

    EXPECT_EQ(sampler.ticks(), 20L);
    EXPECT_EQ(engine.lastEvaluatedUs(), 20 * 100'000);
    // The registry snapshot landed every tick: the MAE series holds
    // one point per tick at exactly 20% error.
    obs::TsQuery q;
    q.series = "gpupm_accuracy_rolling_mae_pct";
    q.start_us = 0;
    q.end_us = 2'000'000;
    q.step_us = 100'000;
    const auto res = tsdb.query(q);
    ASSERT_TRUE(res.ok) << res.error;
    EXPECT_EQ(res.points.size(), 20u);
    EXPECT_DOUBLE_EQ(res.points.back().avg(), 20.0);
    // 20% > 10% with no hysteresis: the rule fires.
    EXPECT_TRUE(engine.anyFiring());
    EXPECT_GE(obs::tsdbPointsTotal().value(), 20.0);
}

TEST_F(SamplerTest, AgeIsInfiniteBeforeAnySample)
{
    auto probe = [](const std::string &app,
                    const gpu::FreqConfig &cfg) {
        obs::MonitorSample s;
        s.app = app;
        s.cfg = cfg;
        return s;
    };
    obs::Sampler sampler(probe, schedule_, fastOptions());
    EXPECT_TRUE(std::isinf(sampler.lastSampleAgeSeconds()));
}

} // namespace
