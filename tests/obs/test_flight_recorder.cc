/**
 * @file
 * Tests of the flight recorder: capacity/wraparound semantics,
 * sequence ordering under concurrent writers, the JSON rendering and
 * clear().
 */

#include <gtest/gtest.h>

#include <set>
#include <thread>
#include <vector>

#include "obs/flight_recorder.hh"

namespace
{

using namespace gpupm;

obs::FlightRecord
rec(const std::string &name)
{
    obs::FlightRecord r;
    r.kind = "event";
    r.name = name;
    return r;
}

TEST(FlightRecorder, RetainsEverythingUntilFull)
{
    obs::FlightRecorder fr(8);
    EXPECT_EQ(fr.capacity(), 8u);
    for (int i = 0; i < 5; ++i)
        fr.record(rec("e" + std::to_string(i)));
    EXPECT_EQ(fr.recorded(), 5);
    const auto snap = fr.snapshot();
    ASSERT_EQ(snap.size(), 5u);
    for (std::size_t i = 0; i < snap.size(); ++i) {
        EXPECT_EQ(snap[i].seq, static_cast<std::int64_t>(i));
        EXPECT_EQ(snap[i].name, "e" + std::to_string(i));
    }
}

TEST(FlightRecorder, WrapsAroundKeepingTheNewest)
{
    obs::FlightRecorder fr(8);
    // 2.5x capacity: the oldest 12 of 20 must be forgotten.
    for (int i = 0; i < 20; ++i)
        fr.record(rec("e" + std::to_string(i)));
    EXPECT_EQ(fr.recorded(), 20);
    const auto snap = fr.snapshot();
    ASSERT_EQ(snap.size(), 8u);
    for (std::size_t i = 0; i < snap.size(); ++i) {
        EXPECT_EQ(snap[i].seq, static_cast<std::int64_t>(12 + i));
        EXPECT_EQ(snap[i].name, "e" + std::to_string(12 + i));
    }
}

TEST(FlightRecorder, TimestampsAreMonotonicAndStamped)
{
    obs::FlightRecorder fr(4);
    fr.recordSpan("a", 7, "first");
    fr.recordSpan("b", 9, "second");
    const auto snap = fr.snapshot();
    ASSERT_EQ(snap.size(), 2u);
    EXPECT_GE(snap[0].ts_us, 0);
    EXPECT_GE(snap[1].ts_us, snap[0].ts_us);
    EXPECT_EQ(snap[0].dur_us, 7);
    EXPECT_EQ(snap[1].detail, "second");
    EXPECT_EQ(snap[0].kind, "span");
}

TEST(FlightRecorder, ConcurrentWritersLoseNothingButTheOldest)
{
    constexpr int kThreads = 4;
    constexpr int kPerThread = 1000;
    obs::FlightRecorder fr(256);
    std::vector<std::thread> writers;
    for (int t = 0; t < kThreads; ++t)
        writers.emplace_back([&fr, t] {
            for (int i = 0; i < kPerThread; ++i)
                fr.record(rec("w" + std::to_string(t) + "." +
                              std::to_string(i)));
        });
    for (auto &w : writers)
        w.join();

    EXPECT_EQ(fr.recorded(), kThreads * kPerThread);
    const auto snap = fr.snapshot();
    ASSERT_EQ(snap.size(), fr.capacity());
    // Exactly the last capacity() sequence numbers survive, each
    // once, in ascending order.
    std::set<std::int64_t> seqs;
    for (std::size_t i = 0; i < snap.size(); ++i) {
        if (i > 0)
            EXPECT_EQ(snap[i].seq, snap[i - 1].seq + 1);
        seqs.insert(snap[i].seq);
    }
    EXPECT_EQ(seqs.size(), fr.capacity());
    EXPECT_EQ(*seqs.rbegin(), kThreads * kPerThread - 1);
    EXPECT_EQ(*seqs.begin(),
              kThreads * kPerThread -
                      static_cast<std::int64_t>(fr.capacity()));
}

TEST(FlightRecorder, RenderJsonReportsDropsAndEscapes)
{
    obs::FlightRecorder fr(2);
    fr.recordSpan("first", 1);
    fr.recordSpan("second", 2);
    fr.recordSpan("quote", 3, "say \"hi\"\n");
    const std::string json = fr.renderJson();
    EXPECT_NE(json.find("\"capacity\":2"), std::string::npos);
    EXPECT_NE(json.find("\"recorded\":3"), std::string::npos);
    EXPECT_NE(json.find("\"dropped\":1"), std::string::npos);
    EXPECT_NE(json.find("\\\"hi\\\"\\n"), std::string::npos);
    EXPECT_EQ(json.find("\"name\":\"first\""), std::string::npos)
            << "dropped record leaked into the rendering";
    EXPECT_NE(json.find("\"name\":\"quote\""), std::string::npos);
}

TEST(FlightRecorder, ClearForgetsButSequenceContinues)
{
    obs::FlightRecorder fr(4);
    fr.recordSpan("a", 0);
    fr.recordSpan("b", 0);
    fr.clear();
    EXPECT_TRUE(fr.snapshot().empty());
    fr.recordSpan("c", 0);
    const auto snap = fr.snapshot();
    ASSERT_EQ(snap.size(), 1u);
    EXPECT_EQ(snap[0].seq, 2) << "clear() must not reuse sequences";
}

} // namespace
