/**
 * @file
 * Tests of the embedded HTTP server: the pure request-head parser
 * against truncated, oversized and hostile inputs, response
 * rendering, and a loopback round trip through a live server
 * (200 / 404 / 405 / 400, graceful stop).
 */

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <string>

#include "obs/http_server.hh"
#include "obs/metrics.hh"

namespace
{

using namespace gpupm;

// -- parser ----------------------------------------------------------

TEST(HttpParser, ParsesWellFormedGet)
{
    obs::HttpRequest req;
    const auto st = obs::parseHttpRequest(
            "GET /metrics?x=1 HTTP/1.1\r\nHost: a\r\n"
            "Accept: text/plain\r\n\r\n",
            req);
    ASSERT_EQ(st, obs::HttpParse::Ok);
    EXPECT_EQ(req.method, "GET");
    EXPECT_EQ(req.target, "/metrics?x=1");
    EXPECT_EQ(req.path, "/metrics");
    EXPECT_EQ(req.query, "x=1");
    EXPECT_EQ(req.version, "HTTP/1.1");
    ASSERT_EQ(req.headers.size(), 2u);
    EXPECT_EQ(req.headers[0].first, "host"); // names lower-cased
    EXPECT_EQ(req.headers[0].second, "a");
    EXPECT_EQ(req.headers[1].second, "text/plain");
}

TEST(HttpParser, ToleratesBareNewlineTermination)
{
    obs::HttpRequest req;
    EXPECT_EQ(obs::parseHttpRequest("GET / HTTP/1.0\n\n", req),
              obs::HttpParse::Ok);
    EXPECT_EQ(req.path, "/");
}

TEST(HttpParser, TruncatedRequestLinesAreIncomplete)
{
    obs::HttpRequest req;
    for (const char *partial :
         {"", "G", "GET", "GET /metr", "GET /metrics HTTP/1.1",
          "GET /metrics HTTP/1.1\r\n", "GET /metrics HTTP/1.1\r\nHo"})
        EXPECT_EQ(obs::parseHttpRequest(partial, req),
                  obs::HttpParse::Incomplete)
                << "partial: '" << partial << "'";
}

TEST(HttpParser, OversizedHeadIsTooLarge)
{
    obs::HttpLimits limits;
    limits.max_request_bytes = 128;
    obs::HttpRequest req;
    // Unterminated and already past the cap: cannot ever complete.
    const std::string big = "GET / HTTP/1.1\r\nX: " +
                            std::string(200, 'a');
    EXPECT_EQ(obs::parseHttpRequest(big, req, limits),
              obs::HttpParse::TooLarge);
    // Terminated but the head alone exceeds the cap.
    const std::string done = "GET / HTTP/1.1\r\nX: " +
                             std::string(200, 'a') + "\r\n\r\n";
    EXPECT_EQ(obs::parseHttpRequest(done, req, limits),
              obs::HttpParse::TooLarge);
}

TEST(HttpParser, OversizedTargetAndHeaderCount)
{
    obs::HttpLimits limits;
    limits.max_target_bytes = 16;
    obs::HttpRequest req;
    const std::string long_target =
            "GET /" + std::string(32, 'x') + " HTTP/1.1\r\n\r\n";
    EXPECT_EQ(obs::parseHttpRequest(long_target, req, limits),
              obs::HttpParse::TooLarge);

    obs::HttpLimits few;
    few.max_header_count = 2;
    std::string many = "GET / HTTP/1.1\r\n";
    for (int i = 0; i < 4; ++i)
        many += "H" + std::to_string(i) + ": v\r\n";
    many += "\r\n";
    EXPECT_EQ(obs::parseHttpRequest(many, req, few),
              obs::HttpParse::TooLarge);
}

TEST(HttpParser, MalformedRequestsAreRejected)
{
    obs::HttpRequest req;
    for (const char *bad :
         {"GET\r\n\r\n",                     // no target
          "GET  HTTP/1.1\r\n\r\n",           // empty target
          "GET metrics HTTP/1.1\r\n\r\n",    // target not absolute
          "GET / FTP/1.1\r\n\r\n",           // not an HTTP version
          "GET / HTTP/\r\n\r\n",             // truncated version
          "G@T / HTTP/1.1\r\n\r\n",          // illegal method char
          "GET / HTTP/1.1\r\nnocolon\r\n\r\n",
          "GET / HTTP/1.1\r\n: novalue\r\n\r\n"})
        EXPECT_EQ(obs::parseHttpRequest(bad, req),
                  obs::HttpParse::Malformed)
                << "input: '" << bad << "'";
}

TEST(HttpResponse, RenderCarriesLengthAndClose)
{
    obs::HttpResponse resp;
    resp.body = "hello\n";
    const std::string wire = obs::renderHttpResponse(resp);
    EXPECT_NE(wire.find("HTTP/1.1 200 OK\r\n"), std::string::npos);
    EXPECT_NE(wire.find("Content-Length: 6\r\n"), std::string::npos);
    EXPECT_NE(wire.find("Connection: close\r\n"), std::string::npos);
    EXPECT_EQ(wire.substr(wire.size() - 6), "hello\n");

    resp.status = 405;
    EXPECT_NE(obs::renderHttpResponse(resp).find("Allow: GET\r\n"),
              std::string::npos);
}

// -- live server round trip ------------------------------------------

/** Blocking one-shot client against 127.0.0.1:port. */
std::string
rawExchange(int port, const std::string &request)
{
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                        sizeof(addr)),
              0);
    EXPECT_EQ(::send(fd, request.data(), request.size(), 0),
              static_cast<ssize_t>(request.size()));
    std::string out;
    char chunk[2048];
    ssize_t n;
    while ((n = ::recv(fd, chunk, sizeof(chunk), 0)) > 0)
        out.append(chunk, static_cast<std::size_t>(n));
    ::close(fd);
    return out;
}

class HttpServerTest : public ::testing::Test
{
  protected:
    void SetUp() override { obs::Registry::global().reset(); }
    void TearDown() override { obs::Registry::global().reset(); }
};

TEST_F(HttpServerTest, ServesRoutesAndErrorPaths)
{
    obs::HttpServer server;
    server.route("/ping", [](const obs::HttpRequest &req) {
        obs::HttpResponse resp;
        resp.body = "pong query=" + req.query + "\n";
        return resp;
    });
    server.route("/boom", [](const obs::HttpRequest &)
                         -> obs::HttpResponse {
        throw std::runtime_error("handler exploded");
    });

    std::string err;
    ASSERT_TRUE(server.start(0, &err)) << err;
    ASSERT_GT(server.port(), 0);

    const std::string ok = rawExchange(
            server.port(),
            "GET /ping?q=1 HTTP/1.1\r\nHost: t\r\n\r\n");
    EXPECT_NE(ok.find("HTTP/1.1 200 OK"), std::string::npos);
    EXPECT_NE(ok.find("pong query=q=1"), std::string::npos);

    const std::string head = rawExchange(
            server.port(), "HEAD /ping HTTP/1.1\r\n\r\n");
    EXPECT_NE(head.find("HTTP/1.1 200 OK"), std::string::npos);
    EXPECT_EQ(head.find("pong"), std::string::npos); // no body

    EXPECT_NE(rawExchange(server.port(),
                          "GET /missing HTTP/1.1\r\n\r\n")
                      .find("HTTP/1.1 404"),
              std::string::npos);
    EXPECT_NE(rawExchange(server.port(),
                          "POST /ping HTTP/1.1\r\n\r\n")
                      .find("HTTP/1.1 405"),
              std::string::npos);
    EXPECT_NE(rawExchange(server.port(), "garbage\r\n\r\n")
                      .find("HTTP/1.1 400"),
              std::string::npos);
    EXPECT_NE(rawExchange(server.port(),
                          "GET /boom HTTP/1.1\r\n\r\n")
                      .find("HTTP/1.1 500"),
              std::string::npos);

    EXPECT_GE(server.requestsServed(), 6L);
    server.stop();
    EXPECT_FALSE(server.running());
    // Stop is idempotent and restart on the same object is allowed.
    server.stop();
}

TEST_F(HttpServerTest, StalledConnectionIsReapedWithA408)
{
    // A slowloris-style client sends a partial request head and then
    // goes quiet. The per-connection read deadline must answer 408
    // and close, after which a healthy request still succeeds.
    obs::HttpLimits limits;
    limits.read_deadline_ms = 200;
    obs::HttpServer server(limits);
    server.route("/ping", [](const obs::HttpRequest &) {
        obs::HttpResponse resp;
        resp.body = "pong\n";
        return resp;
    });
    std::string err;
    ASSERT_TRUE(server.start(0, &err)) << err;

    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<std::uint16_t>(server.port()));
    ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                        sizeof(addr)),
              0);
    const char partial[] = "GET /ping HTTP/1.1\r\nHost: s";
    ASSERT_EQ(::send(fd, partial, sizeof(partial) - 1, 0),
              static_cast<ssize_t>(sizeof(partial) - 1));
    // ... and never finish the head. The deadline reaps us.
    std::string stalled;
    char chunk[1024];
    ssize_t n;
    while ((n = ::recv(fd, chunk, sizeof(chunk), 0)) > 0)
        stalled.append(chunk, static_cast<std::size_t>(n));
    ::close(fd);
    EXPECT_NE(stalled.find("HTTP/1.1 408"), std::string::npos)
            << "got: " << stalled;

    // The poll slot is free again: a healthy request goes through.
    const std::string ok = rawExchange(
            server.port(), "GET /ping HTTP/1.1\r\nHost: t\r\n\r\n");
    EXPECT_NE(ok.find("HTTP/1.1 200 OK"), std::string::npos);
    EXPECT_NE(ok.find("pong"), std::string::npos);
    server.stop();
}

} // namespace
