/**
 * @file
 * Tests of the embedded time-series store: raw-ring retention,
 * tiered downsampling, tier selection by query step, cardinality-cap
 * eviction, NaN rejection, bounded memory under a long soak, query
 * error paths, and concurrent append/query (exercised under TSan).
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <thread>

#include "obs/metrics.hh"
#include "obs/tsdb.hh"

namespace
{

using namespace gpupm;

constexpr std::int64_t kSec = 1'000'000;

TEST(TsdbTest, AppendAndRawQuery)
{
    obs::Tsdb db;
    db.append("s", 1 * kSec, 1.0);
    db.append("s", 2 * kSec, 3.0);
    db.append("s", 2 * kSec + 1000, 5.0);

    obs::TsQuery q;
    q.series = "s";
    q.start_us = 0;
    q.end_us = 3 * kSec;
    q.step_us = kSec;
    const auto res = db.query(q);
    ASSERT_TRUE(res.ok) << res.error;
    EXPECT_EQ(res.tier, 0);
    ASSERT_EQ(res.points.size(), 2u);
    EXPECT_EQ(res.points[0].start_us, 1 * kSec);
    EXPECT_EQ(res.points[0].count, 1);
    EXPECT_DOUBLE_EQ(res.points[0].avg(), 1.0);
    // Both 2s-bucket points aggregate: min/max/sum/count.
    EXPECT_EQ(res.points[1].start_us, 2 * kSec);
    EXPECT_EQ(res.points[1].count, 2);
    EXPECT_DOUBLE_EQ(res.points[1].min, 3.0);
    EXPECT_DOUBLE_EQ(res.points[1].max, 5.0);
    EXPECT_DOUBLE_EQ(res.points[1].avg(), 4.0);
}

TEST(TsdbTest, TierSelectionFollowsStep)
{
    obs::Tsdb db;
    for (int i = 0; i < 300; ++i)
        db.append("s", i * kSec, static_cast<double>(i));

    obs::TsQuery q;
    q.series = "s";
    q.start_us = 0;
    q.end_us = 300 * kSec;

    q.step_us = kSec;
    EXPECT_EQ(db.query(q).tier, 0);
    q.step_us = 10 * kSec;
    EXPECT_EQ(db.query(q).tier, 1);
    q.step_us = 60 * kSec;
    EXPECT_EQ(db.query(q).tier, 2);
}

TEST(TsdbTest, DownsampledTiersOutliveTheRawRing)
{
    obs::TsdbOptions o;
    o.raw_capacity = 10; // raw history: last 10 points only
    obs::Tsdb db(o);
    for (int i = 0; i < 100; ++i)
        db.append("s", i * kSec, static_cast<double>(i));

    // Raw query over the whole range only sees the ring's tail...
    obs::TsQuery q;
    q.series = "s";
    q.start_us = 0;
    q.end_us = 100 * kSec;
    q.step_us = kSec;
    auto res = db.query(q);
    ASSERT_TRUE(res.ok);
    ASSERT_EQ(res.points.size(), 10u);
    EXPECT_EQ(res.points.front().start_us, 90 * kSec);

    // ...but the 10 s tier still covers the evicted past.
    q.step_us = 10 * kSec;
    res = db.query(q);
    ASSERT_TRUE(res.ok);
    EXPECT_EQ(res.tier, 1);
    ASSERT_EQ(res.points.size(), 10u);
    EXPECT_EQ(res.points.front().start_us, 0);
    EXPECT_EQ(res.points.front().count, 10);
    // Bucket [0,10s) holds values 0..9.
    EXPECT_DOUBLE_EQ(res.points.front().min, 0.0);
    EXPECT_DOUBLE_EQ(res.points.front().max, 9.0);
    EXPECT_DOUBLE_EQ(res.points.front().avg(), 4.5);
}

TEST(TsdbTest, TierCapacityIsBounded)
{
    obs::TsdbOptions o;
    o.tier_capacity = 4;
    obs::Tsdb db(o);
    // 20 distinct 10 s buckets; only the newest 4 survive in tier 1.
    for (int i = 0; i < 20; ++i)
        db.append("s", i * 10 * kSec, 1.0);

    obs::TsQuery q;
    q.series = "s";
    q.start_us = 0;
    q.end_us = 200 * kSec;
    q.step_us = 10 * kSec;
    const auto res = db.query(q);
    ASSERT_TRUE(res.ok);
    EXPECT_EQ(res.points.size(), 4u);
    EXPECT_EQ(res.points.front().start_us, 160 * kSec);
}

TEST(TsdbTest, NonFiniteValuesAreDroppedAndCounted)
{
    obs::Tsdb db;
    db.append("s", kSec, std::numeric_limits<double>::quiet_NaN());
    db.append("s", 2 * kSec,
              std::numeric_limits<double>::infinity());
    EXPECT_EQ(db.droppedNotFinite(), 2u);
    EXPECT_EQ(db.pointsAppended(), 0u);
    EXPECT_EQ(db.seriesCount(), 0u);

    db.append("s", 3 * kSec, 1.0);
    EXPECT_EQ(db.pointsAppended(), 1u);
    EXPECT_EQ(db.seriesCount(), 1u);
}

TEST(TsdbTest, CardinalityCapEvictsOldestWrite)
{
    obs::TsdbOptions o;
    o.max_series = 4;
    o.stripes = 1; // single stripe: the cap is exact, LRU is global
    obs::Tsdb db(o);
    db.append("a", 1 * kSec, 1.0);
    db.append("b", 2 * kSec, 1.0);
    db.append("c", 3 * kSec, 1.0);
    db.append("d", 4 * kSec, 1.0);
    EXPECT_EQ(db.seriesCount(), 4u);
    EXPECT_EQ(db.evictions(), 0u);

    // "a" has the oldest last-write; a fifth series evicts it.
    db.append("e", 5 * kSec, 1.0);
    EXPECT_EQ(db.seriesCount(), 4u);
    EXPECT_EQ(db.evictions(), 1u);
    const auto names = db.seriesNames();
    EXPECT_EQ(names, (std::vector<std::string>{"b", "c", "d", "e"}));

    obs::TsQuery q;
    q.series = "a";
    q.start_us = 0;
    q.end_us = 10 * kSec;
    EXPECT_FALSE(db.query(q).ok);
}

TEST(TsdbTest, MemoryStaysBoundedUnderSoak)
{
    obs::TsdbOptions o;
    o.max_series = 16;
    o.stripes = 4;
    obs::Tsdb db(o);

    // Fixed accounting: the bound is a function of the caps alone.
    const std::size_t cap_bound =
            sizeof(obs::Tsdb) + o.stripes * 512 +
            o.max_series *
                    (o.raw_capacity * sizeof(obs::TsPoint) +
                     2 * o.tier_capacity * sizeof(obs::TsBucket) +
                     1024);

    std::size_t high_water = 0;
    for (int i = 0; i < 10'000; ++i) {
        // 20 metric names cycling: forces eviction churn on top of
        // ring wraparound.
        const std::string name =
                "gpupm_soak_series_" + std::to_string(i % 20);
        db.append(name, i * kSec / 10, std::sin(i * 0.01));
        high_water = std::max(high_water, db.memoryBytes());
    }
    EXPECT_LE(db.seriesCount(), o.max_series);
    EXPECT_GT(db.evictions(), 0u);
    EXPECT_LE(high_water, cap_bound)
            << "soak high-water " << high_water
            << " exceeded the configured bound " << cap_bound;
}

TEST(TsdbTest, QueryErrorPaths)
{
    obs::Tsdb db;
    db.append("s", kSec, 1.0);

    obs::TsQuery q;
    q.series = "missing";
    q.start_us = 0;
    q.end_us = kSec;
    EXPECT_FALSE(db.query(q).ok);

    q.series = "s";
    q.step_us = 0;
    EXPECT_FALSE(db.query(q).ok);

    q.step_us = kSec;
    q.start_us = 2 * kSec;
    q.end_us = kSec;
    EXPECT_FALSE(db.query(q).ok);

    // A hostile range/step pair must be rejected, not allocated.
    q.start_us = 0;
    q.end_us = 1'000'000'000 * kSec;
    q.step_us = 1;
    const auto res = db.query(q);
    EXPECT_FALSE(res.ok);
    EXPECT_NE(res.error.find("too many buckets"), std::string::npos);
}

TEST(TsdbTest, LatestTimestampTracksAppends)
{
    obs::Tsdb db;
    EXPECT_EQ(db.latestTimestamp(),
              std::numeric_limits<std::int64_t>::min());
    db.append("s", 5 * kSec, 1.0);
    db.append("t", 9 * kSec, 1.0);
    db.append("s", 7 * kSec, 1.0); // out of order: max is kept
    EXPECT_EQ(db.latestTimestamp(), 9 * kSec);
}

TEST(TsdbTest, LatePointsLandInRawButNotSealedBuckets)
{
    obs::Tsdb db;
    db.append("s", 100 * kSec, 1.0);
    db.append("s", 5 * kSec, 99.0); // bucket [0,10s) is sealed

    obs::TsQuery q;
    q.series = "s";
    q.start_us = 0;
    q.end_us = 200 * kSec;
    q.step_us = kSec; // raw
    auto res = db.query(q);
    ASSERT_TRUE(res.ok);
    EXPECT_EQ(res.points.size(), 2u); // raw ring accepted both

    q.step_us = 10 * kSec; // tier 1
    res = db.query(q);
    ASSERT_TRUE(res.ok);
    ASSERT_EQ(res.points.size(), 1u); // sealed bucket stayed sealed
    EXPECT_EQ(res.points[0].start_us, 100 * kSec);
}

TEST(TsdbTest, RecordRegistrySnapshotsEverySample)
{
    obs::Registry reg;
    reg.counter("demo_total", "d").inc(3.0);
    reg.gauge("demo_gauge", "x=\"1\"", "d").set(7.5);

    obs::Tsdb db;
    db.recordRegistry(reg, 4 * kSec);

    obs::TsQuery q;
    q.series = "demo_gauge{x=\"1\"}";
    q.start_us = 0;
    q.end_us = 10 * kSec;
    q.step_us = kSec;
    auto res = db.query(q);
    ASSERT_TRUE(res.ok) << res.error;
    ASSERT_EQ(res.points.size(), 1u);
    EXPECT_DOUBLE_EQ(res.points[0].avg(), 7.5);

    q.series = "demo_total";
    res = db.query(q);
    ASSERT_TRUE(res.ok) << res.error;
    EXPECT_DOUBLE_EQ(res.points[0].avg(), 3.0);
}

TEST(TsdbTest, JsonRenderingIsDeterministic)
{
    auto build = [] {
        obs::Tsdb db;
        for (int i = 0; i < 50; ++i)
            db.append("s", i * kSec, 0.125 * i);
        obs::TsQuery q;
        q.series = "s";
        q.start_us = 0;
        q.end_us = 50 * kSec;
        q.step_us = 5 * kSec;
        return db.query(q).toJson("s");
    };
    const std::string a = build();
    const std::string b = build();
    EXPECT_EQ(a, b);
    EXPECT_NE(a.find("\"ok\":true"), std::string::npos);
    EXPECT_NE(a.find("\"points\":[{"), std::string::npos);
}

TEST(TsdbTest, ConcurrentAppendAndQuery)
{
    obs::Tsdb db;
    std::vector<std::thread> writers;
    for (int w = 0; w < 4; ++w) {
        writers.emplace_back([&db, w] {
            const std::string own =
                    "writer_" + std::to_string(w);
            for (int i = 0; i < 2000; ++i) {
                db.append(own, i * 1000, static_cast<double>(i));
                db.append("shared", i * 1000 + w,
                          static_cast<double>(w));
            }
        });
    }
    std::thread reader([&db] {
        for (int i = 0; i < 200; ++i) {
            obs::TsQuery q;
            q.series = "shared";
            q.start_us = 0;
            q.end_us = 2'000'000;
            q.step_us = 100'000;
            (void)db.query(q);
            (void)db.seriesNames();
            (void)db.memoryBytes();
        }
    });
    for (auto &t : writers)
        t.join();
    reader.join();
    EXPECT_EQ(db.pointsAppended(), 4u * 2000u * 2u);
    EXPECT_EQ(db.seriesCount(), 5u);
}

} // namespace
