/**
 * @file
 * Tests of the metrics registry: counter/gauge/histogram semantics,
 * idempotent registration, the Prometheus and JSON renderings, and a
 * multi-threaded increment smoke test (the hot paths are lock-free).
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <thread>
#include <vector>

#include "obs/metrics.hh"
#include "obs/standard.hh"

namespace
{

using namespace gpupm;

/** Isolate every test from the process-global registry. */
class MetricsTest : public ::testing::Test
{
  protected:
    void SetUp() override { obs::Registry::global().reset(); }
    void TearDown() override { obs::Registry::global().reset(); }
};

TEST_F(MetricsTest, CounterAccumulatesAndDropsNegatives)
{
    auto &c = obs::Registry::global().counter("t_total", "help");
    c.inc();
    c.inc(2.5);
    c.inc(-100.0); // monotonic: dropped
    EXPECT_DOUBLE_EQ(c.value(), 3.5);
}

TEST_F(MetricsTest, GaugeKeepsLastValue)
{
    auto &g = obs::Registry::global().gauge("t_gauge", "help");
    g.set(7.0);
    g.set(-2.0);
    EXPECT_DOUBLE_EQ(g.value(), -2.0);
}

TEST_F(MetricsTest, HistogramBucketsAreCumulative)
{
    auto &h = obs::Registry::global().histogram("t_hist", "help",
                                                {1.0, 10.0, 100.0});
    h.observe(0.5);   // <= 1
    h.observe(5.0);   // <= 10
    h.observe(50.0);  // <= 100
    h.observe(500.0); // overflow
    const auto cum = h.cumulativeCounts();
    ASSERT_EQ(cum.size(), 3u);
    EXPECT_DOUBLE_EQ(cum[0], 1.0);
    EXPECT_DOUBLE_EQ(cum[1], 2.0);
    EXPECT_DOUBLE_EQ(cum[2], 3.0);
    EXPECT_DOUBLE_EQ(h.count(), 4.0);
    EXPECT_DOUBLE_EQ(h.sum(), 555.5);
}

TEST_F(MetricsTest, RegistrationIsIdempotent)
{
    auto &a = obs::Registry::global().counter("t_same", "help");
    auto &b = obs::Registry::global().counter("t_same", "help");
    EXPECT_EQ(&a, &b);
    EXPECT_EQ(obs::Registry::global().size(), 1u);
}

TEST_F(MetricsTest, PrometheusRenderingHasHelpTypeAndInfBucket)
{
    auto &reg = obs::Registry::global();
    reg.counter("t_runs_total", "number of runs").inc(3);
    reg.histogram("t_lat_seconds", "latency", {0.1, 1.0}).observe(0.5);
    const std::string text = reg.renderPrometheus();
    EXPECT_NE(text.find("# HELP t_runs_total number of runs"),
              std::string::npos);
    EXPECT_NE(text.find("# TYPE t_runs_total counter"),
              std::string::npos);
    EXPECT_NE(text.find("t_runs_total 3"), std::string::npos);
    EXPECT_NE(text.find("# TYPE t_lat_seconds histogram"),
              std::string::npos);
    EXPECT_NE(text.find("t_lat_seconds_bucket{le=\"+Inf\"} 1"),
              std::string::npos);
    EXPECT_NE(text.find("t_lat_seconds_count 1"), std::string::npos);
}

TEST_F(MetricsTest, JsonRenderingIsKeyedByName)
{
    auto &reg = obs::Registry::global();
    reg.counter("t_a_total", "a").inc();
    reg.gauge("t_b", "b").set(4.0);
    const std::string json = reg.renderJson();
    EXPECT_NE(json.find("\"t_a_total\""), std::string::npos);
    EXPECT_NE(json.find("\"t_b\""), std::string::npos);
    EXPECT_NE(json.find("\"type\":\"counter\""), std::string::npos);
    EXPECT_NE(json.find("\"type\":\"gauge\""), std::string::npos);
}

TEST_F(MetricsTest, ConcurrentIncrementsAreNotLost)
{
    auto &reg = obs::Registry::global();
    auto &c = reg.counter("t_conc_total", "concurrency smoke");
    auto &h = reg.histogram("t_conc_hist", "concurrency smoke",
                            {0.25, 0.5, 0.75});
    constexpr int kThreads = 8;
    constexpr int kIters = 5000;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
            for (int i = 0; i < kIters; ++i) {
                c.inc();
                h.observe((t % 4) * 0.25);
                // Concurrent (idempotent) registration too.
                reg.counter("t_conc_total", "concurrency smoke");
            }
        });
    }
    for (auto &th : threads)
        th.join();
    EXPECT_DOUBLE_EQ(c.value(),
                     static_cast<double>(kThreads) * kIters);
    EXPECT_DOUBLE_EQ(h.count(),
                     static_cast<double>(kThreads) * kIters);
}

TEST_F(MetricsTest, QuantileOfEmptyHistogramIsZero)
{
    auto &h = obs::Registry::global().histogram("t_q_empty", "help",
                                                {1.0, 10.0});
    EXPECT_DOUBLE_EQ(h.quantileEstimate(0.5), 0.0);
    EXPECT_DOUBLE_EQ(h.quantileEstimate(0.99), 0.0);
}

TEST_F(MetricsTest, QuantileInterpolatesWithinBucket)
{
    auto &h = obs::Registry::global().histogram("t_q_interp", "help",
                                                {10.0, 20.0});
    // 10 observations, all in the (10, 20] bucket.
    for (int i = 0; i < 10; ++i)
        h.observe(15.0);
    // Median rank 5 of 10 sits halfway through the second bucket.
    EXPECT_DOUBLE_EQ(h.quantileEstimate(0.5), 15.0);
    EXPECT_DOUBLE_EQ(h.quantileEstimate(1.0), 20.0);
    // q=0 clamps to the bucket's lower edge.
    EXPECT_DOUBLE_EQ(h.quantileEstimate(0.0), 10.0);
}

TEST_F(MetricsTest, QuantileSpreadAcrossBuckets)
{
    auto &h = obs::Registry::global().histogram(
            "t_q_spread", "help", {1.0, 2.0, 4.0, 8.0});
    // One observation per bucket: ranks split evenly.
    h.observe(0.5);
    h.observe(1.5);
    h.observe(3.0);
    h.observe(6.0);
    EXPECT_DOUBLE_EQ(h.quantileEstimate(0.25), 1.0);
    EXPECT_DOUBLE_EQ(h.quantileEstimate(0.5), 2.0);
    EXPECT_DOUBLE_EQ(h.quantileEstimate(1.0), 8.0);
}

TEST_F(MetricsTest, QuantileOverflowClampsToLargestBound)
{
    auto &h = obs::Registry::global().histogram("t_q_over", "help",
                                                {1.0, 10.0});
    h.observe(1000.0); // +Inf overflow bucket
    h.observe(2000.0);
    // histogram_quantile() convention: report the largest finite
    // bound rather than extrapolating into the open bucket.
    EXPECT_DOUBLE_EQ(h.quantileEstimate(0.99), 10.0);
    // Out-of-range q values clamp instead of misbehaving: q>1 acts
    // as q=1; q<0 acts as q=0, landing in the empty first bucket
    // whose upper bound is reported.
    EXPECT_DOUBLE_EQ(h.quantileEstimate(7.0), 10.0);
    EXPECT_DOUBLE_EQ(h.quantileEstimate(-3.0), 1.0);
}

TEST_F(MetricsTest, RenderingsCarrySummaryQuantiles)
{
    auto &reg = obs::Registry::global();
    auto &h = reg.histogram("t_q_render", "render", {1.0, 10.0});
    for (int i = 0; i < 100; ++i)
        h.observe(0.5);
    const std::string prom = reg.renderPrometheus();
    EXPECT_NE(prom.find("t_q_render{quantile=\"0.5\"}"),
              std::string::npos);
    EXPECT_NE(prom.find("t_q_render{quantile=\"0.95\"}"),
              std::string::npos);
    EXPECT_NE(prom.find("t_q_render{quantile=\"0.99\"}"),
              std::string::npos);
    const std::string json = reg.renderJson();
    EXPECT_NE(json.find("\"p50\":"), std::string::npos);
    EXPECT_NE(json.find("\"p95\":"), std::string::npos);
    EXPECT_NE(json.find("\"p99\":"), std::string::npos);
}

TEST_F(MetricsTest, QuantileTextAndJsonAgree)
{
    auto &reg = obs::Registry::global();
    auto &h = reg.histogram("t_q_agree", "agree", {1.0, 5.0, 25.0});
    // A skewed distribution so p50/p95/p99 land in three different
    // buckets — a text/JSON divergence cannot hide behind symmetry.
    for (int i = 0; i < 60; ++i)
        h.observe(0.5);
    for (int i = 0; i < 30; ++i)
        h.observe(3.0);
    for (int i = 0; i < 10; ++i)
        h.observe(20.0);
    const std::string prom = reg.renderPrometheus();
    const std::string json = reg.renderJson();

    auto promValue = [&](const char *label) {
        const std::string key =
                std::string("t_q_agree{quantile=\"") + label + "\"} ";
        const auto pos = prom.find(key);
        EXPECT_NE(pos, std::string::npos) << label;
        return pos == std::string::npos
                       ? -1.0
                       : std::atof(prom.c_str() + pos + key.size());
    };
    auto jsonValue = [&](const char *key) {
        const auto obj = json.find("\"t_q_agree\"");
        EXPECT_NE(obj, std::string::npos);
        const std::string k = std::string("\"") + key + "\":";
        const auto pos = json.find(k, obj);
        EXPECT_NE(pos, std::string::npos) << key;
        return pos == std::string::npos
                       ? -1.0
                       : std::atof(json.c_str() + pos + k.size());
    };
    // Both renderings format the same estimate, so the parsed values
    // agree exactly; the estimator itself agrees up to formatting.
    EXPECT_DOUBLE_EQ(promValue("0.5"), jsonValue("p50"));
    EXPECT_DOUBLE_EQ(promValue("0.95"), jsonValue("p95"));
    EXPECT_DOUBLE_EQ(promValue("0.99"), jsonValue("p99"));
    EXPECT_NEAR(promValue("0.5"), h.quantileEstimate(0.50), 1e-6);
    EXPECT_NEAR(promValue("0.95"), h.quantileEstimate(0.95), 1e-6);
    EXPECT_NEAR(promValue("0.99"), h.quantileEstimate(0.99), 1e-6);
}

TEST_F(MetricsTest, StandardCatalogPreRegistersEverything)
{
    obs::registerStandardMetrics();
    const std::string text =
            obs::Registry::global().renderPrometheus();
    // Untouched paths still appear, with zeros.
    EXPECT_NE(text.find("gpupm_estimator_iterations_total 0"),
              std::string::npos);
    EXPECT_NE(text.find("gpupm_resilient_retries_total 0"),
              std::string::npos);
    EXPECT_NE(text.find("gpupm_sim_kernel_executions_total 0"),
              std::string::npos);
    EXPECT_NE(text.find("gpupm_io_loads_total 0"),
              std::string::npos);
    EXPECT_NE(text.find("gpupm_campaign_runs_total 0"),
              std::string::npos);
}

} // namespace
