#include "obs/profiler.hh"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <thread>

#include "obs/trace.hh"

namespace
{

using gpupm::obs::CpuProfile;
using gpupm::obs::Profiler;
using gpupm::obs::ProfilerOptions;

/**
 * Burn CPU until at least `min_samples` landed in the ring (bounded
 * by a generous wall-clock cap so a loaded machine cannot hang the
 * suite). The volatile sink keeps the loop from being optimized out.
 */
void
burnUntil(long min_samples, int max_ms = 10000)
{
    volatile double sink = 0.0;
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(max_ms);
    while (Profiler::global().sampleCount() < min_samples &&
           std::chrono::steady_clock::now() < deadline) {
        for (int i = 1; i < 5000; ++i)
            sink = sink + 1.0 / static_cast<double>(i);
    }
    (void)sink;
}

TEST(Profiler, CapturesSpanAttributedSamples)
{
    ProfilerOptions opts;
    opts.hz = 997;
    std::string err;
    ASSERT_TRUE(Profiler::global().start(opts, &err)) << err;
    ASSERT_TRUE(Profiler::global().running());
    ASSERT_TRUE(Profiler::contextEnabled());
    {
        GPUPM_TRACE_SPAN("estimator", "fit.synthetic_burn");
        burnUntil(50);
    }
    Profiler::global().stop();
    EXPECT_FALSE(Profiler::global().running());
    EXPECT_FALSE(Profiler::contextEnabled());

    const CpuProfile prof = Profiler::global().collect();
    ASSERT_GE(prof.samples, 50);
    EXPECT_EQ(prof.hz, 997);
    // Everything burned inside the estimator span: attribution must
    // be near-total (a few ticks may land in test scaffolding).
    EXPECT_GE(prof.attributedPct(), 90.0);
    EXPECT_GT(prof.category_samples.at("estimator"), 0);
    EXPECT_GE(prof.categorySharePct("estimator"), 90.0);
    ASSERT_FALSE(prof.stacks.empty());
    // Stacks are sorted by weight; the heaviest one is the burn loop.
    EXPECT_EQ(prof.stacks.front().category, "estimator");
    ASSERT_FALSE(prof.stacks.front().frames.empty());
    EXPECT_EQ(prof.stacks.front().frames.front(),
              "fit.synthetic_burn");
}

TEST(Profiler, FoldedOutputIsWellFormed)
{
    std::string err;
    ASSERT_TRUE(Profiler::global().start({}, &err)) << err;
    {
        GPUPM_TRACE_SPAN("sim", "kernel.burn");
        burnUntil(20);
    }
    Profiler::global().stop();
    const CpuProfile prof = Profiler::global().collect();
    const std::string folded = prof.renderFolded();
    ASSERT_FALSE(folded.empty());

    std::istringstream is(folded);
    std::string line;
    long total = 0;
    bool saw_sim = false;
    while (std::getline(is, line)) {
        ASSERT_FALSE(line.empty());
        // `frames... count`: the suffix after the last space is the
        // sample count, the prefix is a ;-joined non-empty stack.
        const auto sp = line.rfind(' ');
        ASSERT_NE(sp, std::string::npos) << line;
        ASSERT_GT(sp, 0u) << line;
        const std::string count = line.substr(sp + 1);
        ASSERT_FALSE(count.empty()) << line;
        for (char c : count)
            ASSERT_TRUE(c >= '0' && c <= '9') << line;
        total += std::stol(count);
        if (line.rfind("sim;", 0) == 0)
            saw_sim = true;
    }
    EXPECT_EQ(total, prof.samples);
    EXPECT_TRUE(saw_sim);
}

TEST(Profiler, JsonSummaryCarriesCategoriesAndTop)
{
    std::string err;
    ASSERT_TRUE(Profiler::global().start({}, &err)) << err;
    {
        GPUPM_TRACE_SPAN("io", "artifact.burn");
        burnUntil(20);
    }
    Profiler::global().stop();
    const std::string json = Profiler::global().collect().renderJson();
    EXPECT_NE(json.find("\"hz\":"), std::string::npos);
    EXPECT_NE(json.find("\"samples\":"), std::string::npos);
    EXPECT_NE(json.find("\"dropped\":"), std::string::npos);
    EXPECT_NE(json.find("\"attributed_pct\":"), std::string::npos);
    EXPECT_NE(json.find("\"categories\":{"), std::string::npos);
    EXPECT_NE(json.find("\"io\":{\"samples\":"), std::string::npos);
    EXPECT_NE(json.find("\"threads\":["), std::string::npos);
    EXPECT_NE(json.find("\"top\":["), std::string::npos);
    EXPECT_NE(json.find("\"self_pct\":"), std::string::npos);
}

TEST(Profiler, InnermostSpanWinsAttribution)
{
    std::string err;
    ASSERT_TRUE(Profiler::global().start({}, &err)) << err;
    {
        GPUPM_TRACE_SPAN("campaign", "outer");
        GPUPM_TRACE_SPAN("estimator", "inner");
        burnUntil(30);
    }
    Profiler::global().stop();
    const CpuProfile prof = Profiler::global().collect();
    ASSERT_GT(prof.samples, 0);
    EXPECT_GE(prof.categorySharePct("estimator"), 90.0);
    EXPECT_EQ(prof.category_samples.count("campaign"), 0u);
}

TEST(Profiler, SecondStartFailsWhileRunning)
{
    std::string err;
    ASSERT_TRUE(Profiler::global().start({}, &err)) << err;
    std::string err2;
    EXPECT_FALSE(Profiler::global().start({}, &err2));
    EXPECT_NE(err2.find("already running"), std::string::npos);
    Profiler::global().stop();
    // stop() is idempotent.
    Profiler::global().stop();
}

TEST(Profiler, RingOverflowCountsDrops)
{
    ProfilerOptions opts;
    opts.hz = 2000; // clamped rate floor is irrelevant; fill fast
    opts.max_samples = 64;
    std::string err;
    ASSERT_TRUE(Profiler::global().start(opts, &err)) << err;
    burnUntil(64);
    // Keep burning so ticks land after the ring is full.
    volatile double sink = 0.0;
    const auto until = std::chrono::steady_clock::now() +
                       std::chrono::milliseconds(200);
    while (std::chrono::steady_clock::now() < until)
        for (int i = 1; i < 5000; ++i)
            sink = sink + 1.0 / static_cast<double>(i);
    Profiler::global().stop();
    const CpuProfile prof = Profiler::global().collect();
    EXPECT_LE(prof.samples, 64);
    EXPECT_GT(prof.dropped, 0);
    (void)sink;
}

TEST(Profiler, PerThreadAttributionWithLabels)
{
    std::string err;
    ASSERT_TRUE(Profiler::global().start({}, &err)) << err;
    std::atomic<bool> stop{false};
    std::thread worker([&stop] {
        Profiler::setThreadLabel("test.worker0");
        GPUPM_TRACE_SPAN("fleet", "worker.burn");
        volatile double sink = 0.0;
        while (!stop.load(std::memory_order_relaxed))
            for (int i = 1; i < 5000; ++i)
                sink = sink + 1.0 / static_cast<double>(i);
        (void)sink;
    });
    burnUntil(80);
    stop.store(true, std::memory_order_relaxed);
    worker.join();
    Profiler::global().stop();

    const CpuProfile prof = Profiler::global().collect();
    bool labelled = false;
    for (const auto &kv : prof.thread_labels)
        if (kv.second == "test.worker0")
            labelled = true;
    // ITIMER_PROF delivery lands on whichever thread is on-CPU; with
    // two busy threads the worker must get a share eventually, but a
    // pathological scheduler could starve it — so only assert the
    // label plumbing when it did get samples.
    if (prof.category_samples.count("fleet") != 0) {
        EXPECT_TRUE(labelled);
        EXPECT_GE(prof.thread_samples.size(), 2u);
    }
}

TEST(Profiler, WallModeSamplesIdleProcess)
{
    ProfilerOptions opts;
    opts.wall = true;
    opts.hz = 499;
    std::string err;
    ASSERT_TRUE(Profiler::global().start(opts, &err)) << err;
    {
        GPUPM_TRACE_SPAN("monitor", "idle.wait");
        // No CPU burned: ITIMER_PROF would stay silent here, but
        // wall-clock sampling must still deliver ticks.
        std::this_thread::sleep_for(std::chrono::milliseconds(300));
    }
    Profiler::global().stop();
    const CpuProfile prof = Profiler::global().collect();
    EXPECT_TRUE(prof.wall);
    EXPECT_GT(prof.samples, 10);
    EXPECT_NE(prof.renderJson().find("\"mode\":\"wall\""),
              std::string::npos);
    // The process-directed signal lands on this (only) thread, which
    // sits inside the span the whole time.
    EXPECT_GE(prof.categorySharePct("monitor"), 90.0);
}

TEST(Profiler, WriteFoldedRoundTrips)
{
    std::string err;
    ASSERT_TRUE(Profiler::global().start({}, &err)) << err;
    {
        GPUPM_TRACE_SPAN("cli", "root.burn");
        burnUntil(10);
    }
    Profiler::global().stop();
    const CpuProfile prof = Profiler::global().collect();

    const std::string path = ::testing::TempDir() + "profile.folded";
    ASSERT_TRUE(prof.writeFolded(path));
    std::ifstream in(path);
    std::stringstream ss;
    ss << in.rdbuf();
    EXPECT_EQ(ss.str(), prof.renderFolded());
    EXPECT_FALSE(prof.writeFolded("/nonexistent-dir/x.folded"));
    std::remove(path.c_str());
}

TEST(Profiler, SpanGuardCostsNothingWhenIdle)
{
    ASSERT_FALSE(Profiler::global().running());
    ASSERT_FALSE(Profiler::contextEnabled());
    // Guards are inert with both the tracer and profiler off.
    for (int i = 0; i < 1000; ++i) {
        GPUPM_TRACE_SPAN("estimator", "noop");
    }
    const CpuProfile prof = Profiler::global().collect();
    // collect() after the last run only sees that run's ring.
    EXPECT_GE(prof.samples, 0);
}

} // namespace
