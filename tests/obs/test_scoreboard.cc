/**
 * @file
 * Accuracy-scoreboard unit tests: residual statistics, aggregation
 * into per-app/per-config/marginal views, baseline derivation,
 * serialization surfaces and the golden-comparison regression gate
 * (including the injected +2 pp MAE case the gate exists for).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "obs/metrics.hh"
#include "obs/residuals.hh"
#include "obs/scoreboard.hh"
#include "obs/standard.hh"

namespace
{

using namespace gpupm;

obs::ResidualSample
sample(const std::string &app, int core, int mem, double meas,
       double pred)
{
    obs::ResidualSample s;
    s.app = app;
    s.cfg = {core, mem};
    s.measured_w = meas;
    s.predicted_w = pred;
    s.constant_w = 40.0;
    for (std::size_t i = 0; i < s.component_w.size(); ++i)
        s.component_w[i] = 1.0 + static_cast<double>(i);
    return s;
}

/** Two apps over a 2x2 grid, with known errors. */
std::vector<obs::ResidualSample>
smallSet()
{
    std::vector<obs::ResidualSample> v;
    // app A: exactly 10% over-prediction everywhere.
    for (int core : {600, 1000})
        for (int mem : {800, 3500})
            v.push_back(sample("A", core, mem, 100.0, 110.0));
    // app B: exact predictions.
    for (int core : {600, 1000})
        for (int mem : {800, 3500})
            v.push_back(sample("B", core, mem, 200.0, 200.0));
    return v;
}

TEST(ScoreStats, PooledStatsOverGroup)
{
    const auto set = smallSet();
    std::vector<const obs::ResidualSample *> group;
    for (const auto &s : set)
        group.push_back(&s);
    const auto st = obs::scoreOf(group);
    EXPECT_EQ(st.samples, 8);
    EXPECT_NEAR(st.mae_pct, 5.0, 1e-12);  // (4x10% + 4x0%) / 8
    EXPECT_NEAR(st.max_err_pct, 10.0, 1e-12);
    EXPECT_NEAR(st.rmse_w, std::sqrt(4 * 100.0 / 8), 1e-12);
    EXPECT_NEAR(st.mean_measured_w, 150.0, 1e-12);
}

TEST(ScoreStats, EmptyGroupIsZero)
{
    const auto st = obs::scoreOf({});
    EXPECT_EQ(st.samples, 0);
    EXPECT_EQ(st.mae_pct, 0.0);
    EXPECT_EQ(st.rmse_w, 0.0);
}

TEST(ResidualSample, ErrorPercentages)
{
    auto s = sample("A", 600, 800, 100.0, 88.0);
    EXPECT_NEAR(s.errPct(), -12.0, 1e-12);
    EXPECT_NEAR(s.absErrPct(), 12.0, 1e-12);
    s.measured_w = 0.0;
    EXPECT_EQ(s.errPct(), 0.0);
    EXPECT_EQ(s.absErrPct(), 0.0);
}

TEST(Scoreboard, FromSamplesAggregates)
{
    const auto sb = obs::Scoreboard::fromSamples(1, "GTX Titan X",
                                                 {1000, 3500},
                                                 smallSet());
    EXPECT_EQ(sb.overall.samples, 8);
    EXPECT_NEAR(sb.overall.mae_pct, 5.0, 1e-12);

    // Per-app rows keep first-appearance order.
    ASSERT_EQ(sb.per_app.size(), 2u);
    EXPECT_EQ(sb.per_app[0].app, "A");
    EXPECT_NEAR(sb.per_app[0].stats.mae_pct, 10.0, 1e-12);
    EXPECT_EQ(sb.per_app[1].app, "B");
    EXPECT_NEAR(sb.per_app[1].stats.mae_pct, 0.0, 1e-12);

    // 4 grid cells, each holding one sample of each app.
    ASSERT_EQ(sb.per_config.size(), 4u);
    for (const auto &c : sb.per_config) {
        EXPECT_EQ(c.stats.samples, 2);
        EXPECT_NEAR(c.stats.mae_pct, 5.0, 1e-12);
    }
    ASSERT_EQ(sb.core_marginal.size(), 2u);
    EXPECT_EQ(sb.core_marginal[0].mhz, 600);
    EXPECT_EQ(sb.core_marginal[0].stats.samples, 4);
    ASSERT_EQ(sb.mem_marginal.size(), 2u);
    EXPECT_EQ(sb.mem_marginal[0].mhz, 800);
}

TEST(Scoreboard, BaselinesDerivedFromSampleBaselinePredictions)
{
    auto set = smallSet();
    for (auto &s : set)
        s.baseline_w = {{"cubic", s.measured_w * 1.2},
                        {"abe", s.measured_w}};
    const auto sb = obs::Scoreboard::fromSamples(1, "GTX Titan X",
                                                 {1000, 3500},
                                                 std::move(set));
    ASSERT_EQ(sb.baselines.size(), 2u);
    // Map-ordered by name.
    EXPECT_EQ(sb.baselines[0].name, "abe");
    EXPECT_NEAR(sb.baselines[0].mae_pct, 0.0, 1e-12);
    EXPECT_EQ(sb.baselines[1].name, "cubic");
    EXPECT_NEAR(sb.baselines[1].mae_pct, 20.0, 1e-12);
}

TEST(Scoreboard, SummaryOnlyKeepsLoadedBaselines)
{
    obs::Scoreboard sb;
    sb.baselines = {{"abe", 7.5}};
    sb.recomputeAggregates(); // no samples: must not clear baselines
    ASSERT_EQ(sb.baselines.size(), 1u);
    EXPECT_EQ(sb.baselines[0].name, "abe");
}

TEST(Scoreboard, TextSurfacesCarryTheViews)
{
    auto set = smallSet();
    for (auto &s : set)
        s.baseline_w = {{"cubic", s.measured_w * 1.2}};
    const auto sb = obs::Scoreboard::fromSamples(1, "GTX Titan X",
                                                 {1000, 3500},
                                                 std::move(set));
    const auto text = sb.summaryText();
    EXPECT_NE(text.find("Per-application accuracy (Fig. 7)"),
              std::string::npos);
    EXPECT_NE(text.find("Core-frequency marginal (Fig. 8)"),
              std::string::npos);
    EXPECT_NE(text.find("Baseline comparison (Sec. VI)"),
              std::string::npos);

    const auto csv = sb.samplesCsv();
    EXPECT_EQ(csv.rfind(obs::residualCsvHeader(), 0), 0u);
    // Header + one row per sample.
    EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 9);
}

TEST(Scoreboard, PublishMetricsExportsAccuracyGauges)
{
    const auto sb = obs::Scoreboard::fromSamples(1, "GTX Titan X",
                                                 {1000, 3500},
                                                 smallSet());
    const double audits_before = obs::accuracyAuditsTotal().value();
    sb.publishMetrics();
    EXPECT_EQ(obs::accuracyAuditsTotal().value(), audits_before + 1);
    EXPECT_NEAR(obs::accuracyLastMaePct().value(), 5.0, 1e-12);
    EXPECT_NEAR(obs::accuracyLastMaxErrPct().value(), 10.0, 1e-12);
    EXPECT_GE(obs::accuracyAbsErrPct().count(), 8.0);
}

// -- the regression gate ---------------------------------------------

TEST(CompareScoreboards, IdenticalRunPasses)
{
    const auto sb = obs::Scoreboard::fromSamples(1, "GTX Titan X",
                                                 {1000, 3500},
                                                 smallSet());
    const auto diff = obs::compareScoreboards(sb, sb);
    EXPECT_TRUE(diff.ok);
    EXPECT_TRUE(diff.regressions.empty());
    EXPECT_NE(diff.summary().find("PASS"), std::string::npos);
}

TEST(CompareScoreboards, InjectedTwoPointMaeRegressionFails)
{
    const auto golden = obs::Scoreboard::fromSamples(
            1, "GTX Titan X", {1000, 3500}, smallSet());
    auto run = golden;
    run.overall.mae_pct += 2.0; // above the 0.5 pp gate
    const auto diff = obs::compareScoreboards(run, golden);
    EXPECT_FALSE(diff.ok);
    ASSERT_FALSE(diff.regressions.empty());
    EXPECT_NE(diff.regressions.front().find("overall MAE"),
              std::string::npos);
    EXPECT_NE(diff.summary().find("FAIL"), std::string::npos);
}

TEST(CompareScoreboards, DriftWithinTolerancePasses)
{
    const auto golden = obs::Scoreboard::fromSamples(
            1, "GTX Titan X", {1000, 3500}, smallSet());
    auto run = golden;
    run.overall.mae_pct += 0.4;
    EXPECT_TRUE(obs::compareScoreboards(run, golden).ok);
}

TEST(CompareScoreboards, ImprovementBeyondToleranceIsNoted)
{
    const auto golden = obs::Scoreboard::fromSamples(
            1, "GTX Titan X", {1000, 3500}, smallSet());
    auto run = golden;
    run.overall.mae_pct -= 2.0;
    const auto diff = obs::compareScoreboards(run, golden);
    EXPECT_TRUE(diff.ok);
    ASSERT_FALSE(diff.notes.empty());
    EXPECT_NE(diff.notes.front().find("improved"), std::string::npos);
}

TEST(CompareScoreboards, PerAppRegressionFails)
{
    const auto golden = obs::Scoreboard::fromSamples(
            1, "GTX Titan X", {1000, 3500}, smallSet());
    auto run = golden;
    run.per_app[1].stats.mae_pct += 3.0; // above the 2 pp app gate
    const auto diff = obs::compareScoreboards(run, golden);
    EXPECT_FALSE(diff.ok);
    ASSERT_FALSE(diff.regressions.empty());
    EXPECT_NE(diff.regressions.front().find("app 'B'"),
              std::string::npos);
}

TEST(CompareScoreboards, WorkloadSetChangesAreNotesNotFailures)
{
    const auto golden = obs::Scoreboard::fromSamples(
            1, "GTX Titan X", {1000, 3500}, smallSet());
    auto run = golden;
    run.per_app.push_back({"C", {}});
    run.per_app.erase(run.per_app.begin()); // drop app A
    const auto diff = obs::compareScoreboards(run, golden);
    EXPECT_TRUE(diff.ok);
    EXPECT_EQ(diff.notes.size(), 2u); // C absent-from-golden, A absent
}

TEST(CompareScoreboards, DeviceMismatchFails)
{
    const auto golden = obs::Scoreboard::fromSamples(
            1, "GTX Titan X", {1000, 3500}, smallSet());
    auto run = golden;
    run.device = 2;
    EXPECT_FALSE(obs::compareScoreboards(run, golden).ok);
}

TEST(CompareScoreboards, CustomTolerancesApply)
{
    const auto golden = obs::Scoreboard::fromSamples(
            1, "GTX Titan X", {1000, 3500}, smallSet());
    auto run = golden;
    run.overall.mae_pct += 1.0;
    obs::ScoreboardTolerances loose;
    loose.overall_mae_pp = 1.5;
    EXPECT_TRUE(obs::compareScoreboards(run, golden, loose).ok);
    obs::ScoreboardTolerances tight;
    tight.overall_mae_pp = 0.1;
    EXPECT_FALSE(obs::compareScoreboards(run, golden, tight).ok);
}

} // namespace
