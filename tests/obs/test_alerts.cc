/**
 * @file
 * Tests of the alert rule engine: the pending/firing/resolved state
 * machine with hysteresis, flapping suppression, empty-window and
 * NaN-sample behaviour, rate rules, the built-in Fig. 7 drift rule,
 * evaluation across downsampling-tier boundaries, and the transition
 * side-channels (gauge, flight recorder, NDJSON sink, history).
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>

#include "obs/alerts.hh"
#include "obs/flight_recorder.hh"
#include "obs/metrics.hh"
#include "obs/standard.hh"
#include "obs/tsdb.hh"

namespace
{

using namespace gpupm;

constexpr std::int64_t kSec = 1'000'000;

class AlertsTest : public ::testing::Test
{
  protected:
    void SetUp() override { obs::Registry::global().reset(); }
    void TearDown() override { obs::Registry::global().reset(); }

    /** Threshold rule: mean(s[now-10s, now]) > 5, for 3 s, cool 5 s. */
    obs::AlertRule thresholdRule() const
    {
        obs::AlertRule r;
        r.name = "high";
        r.series = "s";
        r.kind = obs::AlertKind::Threshold;
        r.op = obs::AlertOp::Gt;
        r.threshold = 5.0;
        r.window_us = 10 * kSec;
        r.for_us = 3 * kSec;
        r.cooldown_us = 5 * kSec;
        return r;
    }
};

TEST_F(AlertsTest, ThresholdLifecyclePendingFiringResolved)
{
    obs::Tsdb db;
    obs::AlertEngine eng(db, {thresholdRule()});

    // Healthy for 5 ticks: inactive throughout.
    for (int t = 1; t <= 5; ++t) {
        db.append("s", t * kSec, 1.0);
        eng.evaluate(t * kSec);
    }
    auto st = eng.snapshot();
    ASSERT_EQ(st.size(), 1u);
    EXPECT_EQ(st[0].state, obs::AlertState::Inactive);
    EXPECT_TRUE(st[0].evaluated);

    // Degraded: pending immediately, firing only after for_us.
    // The 10 s window still averages in the five 1.0 points, so the
    // injected level must overwhelm them (100 >> 5).
    db.append("s", 6 * kSec, 100.0);
    eng.evaluate(6 * kSec);
    EXPECT_EQ(eng.snapshot()[0].state, obs::AlertState::Pending);
    EXPECT_FALSE(eng.anyFiring());

    db.append("s", 8 * kSec, 100.0);
    eng.evaluate(8 * kSec);
    EXPECT_EQ(eng.snapshot()[0].state, obs::AlertState::Pending);

    db.append("s", 9 * kSec, 100.0);
    eng.evaluate(9 * kSec); // held for 3 s -> firing
    EXPECT_EQ(eng.snapshot()[0].state, obs::AlertState::Firing);
    EXPECT_EQ(eng.firingRuleNames(),
              std::vector<std::string>{"high"});

    // Recovered: the degraded points stay inside the 10 s window
    // until t=20, then the cooldown runs — resolved at t=25.
    for (int t = 10; t <= 26; ++t) {
        db.append("s", t * kSec, 1.0);
        eng.evaluate(t * kSec);
    }
    EXPECT_EQ(eng.snapshot()[0].state, obs::AlertState::Resolved);
    EXPECT_FALSE(eng.anyFiring());

    // History holds the full lifecycle in order.
    const auto &h = eng.snapshot()[0].history;
    ASSERT_EQ(h.size(), 3u);
    EXPECT_EQ(h[0].state, obs::AlertState::Pending);
    EXPECT_EQ(h[1].state, obs::AlertState::Firing);
    EXPECT_EQ(h[2].state, obs::AlertState::Resolved);
}

TEST_F(AlertsTest, FlappingIsHeldOffByHysteresis)
{
    obs::Tsdb db;

    // The signal crosses the threshold every other second — each
    // clear tick resets the pending clock, so the rule never fires.
    // A 1 µs window keeps each evaluation on the instantaneous value
    // (the window is inclusive, so 1 s would average two ticks).
    auto rule = thresholdRule();
    rule.window_us = 1;
    obs::AlertEngine flappy(db, {rule});
    for (int t = 1; t <= 30; ++t) {
        db.append("s", t * kSec, t % 2 == 0 ? 100.0 : 1.0);
        flappy.evaluate(t * kSec);
        EXPECT_NE(flappy.snapshot()[0].state,
                  obs::AlertState::Firing)
                << "fired at t=" << t;
    }
    EXPECT_GE(obs::alertTransitionsTotal().value(), 2.0);
}

TEST_F(AlertsTest, EmptyWindowAtStartupIsNotAnAlert)
{
    obs::Tsdb db;
    obs::AlertEngine eng(db, {thresholdRule()});
    eng.evaluate(1 * kSec);
    eng.evaluate(2 * kSec);
    const auto st = eng.snapshot();
    EXPECT_EQ(st[0].state, obs::AlertState::Inactive);
    EXPECT_FALSE(st[0].evaluated);
    EXPECT_TRUE(std::isnan(st[0].last_value));
    EXPECT_TRUE(st[0].history.empty());
    EXPECT_NE(eng.renderText(2 * kSec).find("(no data)"),
              std::string::npos);
    EXPECT_NE(eng.renderJson(2 * kSec).find("\"last_value\":null"),
              std::string::npos);
}

TEST_F(AlertsTest, EmptyWindowFreezesFiringAndDropsPending)
{
    obs::Tsdb db;
    obs::AlertEngine eng(db, {thresholdRule()});
    for (int t = 1; t <= 6; ++t) {
        db.append("s", t * kSec, 100.0);
        eng.evaluate(t * kSec);
    }
    ASSERT_EQ(eng.snapshot()[0].state, obs::AlertState::Firing);

    // The probe wedges: no samples land, the window goes empty.
    // Missing data must not quietly resolve a real problem.
    eng.evaluate(100 * kSec);
    EXPECT_EQ(eng.snapshot()[0].state, obs::AlertState::Firing);

    // A pending rule, in contrast, loses its evidence.
    obs::Tsdb db2;
    obs::AlertEngine eng2(db2, {thresholdRule()});
    db2.append("s", 1 * kSec, 100.0);
    eng2.evaluate(1 * kSec);
    ASSERT_EQ(eng2.snapshot()[0].state, obs::AlertState::Pending);
    eng2.evaluate(100 * kSec);
    EXPECT_EQ(eng2.snapshot()[0].state, obs::AlertState::Inactive);
}

TEST_F(AlertsTest, NaNSamplesNeverReachTheEngine)
{
    obs::Tsdb db;
    obs::AlertEngine eng(db, {thresholdRule()});
    db.append("s", 1 * kSec,
              std::numeric_limits<double>::quiet_NaN());
    eng.evaluate(1 * kSec);
    const auto st = eng.snapshot();
    EXPECT_FALSE(st[0].evaluated); // the window stayed empty
    EXPECT_EQ(st[0].state, obs::AlertState::Inactive);
    EXPECT_EQ(db.droppedNotFinite(), 1u);
}

TEST_F(AlertsTest, RateRuleCatchesClimbs)
{
    obs::AlertRule r;
    r.name = "climbing";
    r.series = "s";
    r.kind = obs::AlertKind::Rate;
    r.op = obs::AlertOp::Gt;
    r.threshold = 2.0; // units per second
    r.window_us = 8 * kSec;
    r.for_us = 0;
    r.cooldown_us = 0;

    obs::Tsdb db;
    obs::AlertEngine eng(db, {r});
    // Flat: rate 0, inactive.
    for (int t = 1; t <= 8; ++t)
        db.append("s", t * kSec, 10.0);
    eng.evaluate(8 * kSec);
    EXPECT_EQ(eng.snapshot()[0].state, obs::AlertState::Inactive);

    // Climb at 5 units/s: fires (for_us = 0 fires immediately).
    for (int t = 9; t <= 16; ++t)
        db.append("s", t * kSec, 10.0 + 5.0 * (t - 8));
    eng.evaluate(16 * kSec);
    EXPECT_EQ(eng.snapshot()[0].state, obs::AlertState::Firing);
    EXPECT_GT(eng.snapshot()[0].last_value, 2.0);
}

TEST_F(AlertsTest, DriftRuleCarriesTheFig7Envelope)
{
    EXPECT_DOUBLE_EQ(*obs::fig7EnvelopePct("titanxp"), 6.6);
    EXPECT_DOUBLE_EQ(*obs::fig7EnvelopePct("titanx"), 5.5);
    EXPECT_DOUBLE_EQ(*obs::fig7EnvelopePct("k40c"), 12.2);
    EXPECT_FALSE(obs::fig7EnvelopePct("gtx9000").has_value());

    const auto r = obs::makeDriftRule("k40c", 2.0, 30 * kSec,
                                      10 * kSec, 30 * kSec);
    EXPECT_EQ(r.name, "accuracy_drift_k40c");
    EXPECT_EQ(r.series, "gpupm_accuracy_rolling_mae_pct");
    EXPECT_EQ(r.kind, obs::AlertKind::Drift);
    EXPECT_DOUBLE_EQ(r.envelope_pct, 12.2);
    EXPECT_DOUBLE_EQ(r.threshold, 14.2);

    // A golden-refreshed envelope overrides the hard-coded one.
    const auto o =
            obs::makeDriftRule("k40c", 2.0, 30 * kSec, 10 * kSec,
                               30 * kSec, 12.201);
    EXPECT_DOUBLE_EQ(o.threshold, 14.201);
}

TEST_F(AlertsTest, EvaluatesAcrossTierBoundaries)
{
    // A raw ring of 5 points with a 120 s window: the evaluation
    // window reaches far past raw retention, so the windowed mean
    // must come from the downsampled tiers (step window+1 -> tier 2).
    obs::TsdbOptions o;
    o.raw_capacity = 5;
    obs::Tsdb db(o);

    obs::AlertRule r = thresholdRule();
    r.window_us = 120 * kSec;
    r.for_us = 0;
    obs::AlertEngine eng(db, {r});

    for (int t = 1; t <= 120; ++t)
        db.append("s", t * kSec, 100.0);
    eng.evaluate(120 * kSec);
    const auto st = eng.snapshot();
    EXPECT_EQ(st[0].state, obs::AlertState::Firing);
    // The mean covers the whole window, not just the 5 raw points.
    EXPECT_DOUBLE_EQ(st[0].last_value, 100.0);
}

TEST_F(AlertsTest, TransitionsFeedGaugeRecorderAndSink)
{
    obs::FlightRecorder recorder(32);
    obs::Tsdb db;
    auto rule = thresholdRule();
    rule.for_us = 0;
    obs::AlertEngine eng(db, {rule}, &recorder);
    std::vector<std::string> lines;
    eng.setEventSink(
            [&lines](const std::string &l) { lines.push_back(l); });

    // The gauge exists at 0 before any transition.
    EXPECT_DOUBLE_EQ(obs::alertsFiring("high").value(), 0.0);

    db.append("s", 1 * kSec, 100.0);
    eng.evaluate(1 * kSec); // pending + firing in one tick
    EXPECT_DOUBLE_EQ(obs::alertsFiring("high").value(), 1.0);

    // The spike leaves the 10 s window at t=12; cooldown 5 s more.
    for (int t = 2; t <= 20; ++t) {
        db.append("s", t * kSec, 1.0);
        eng.evaluate(t * kSec);
    }
    EXPECT_DOUBLE_EQ(obs::alertsFiring("high").value(), 0.0);

    bool saw_alert_record = false;
    for (const auto &rec : recorder.snapshot())
        if (rec.kind == "alert" && rec.name == "alert.firing")
            saw_alert_record = true;
    EXPECT_TRUE(saw_alert_record);

    ASSERT_GE(lines.size(), 3u);
    for (const auto &l : lines) {
        EXPECT_EQ(l.front(), '{');
        EXPECT_EQ(l.back(), '}');
        EXPECT_NE(l.find("\"event\":\"alert\""), std::string::npos);
        EXPECT_NE(l.find("\"rule\":\"high\""), std::string::npos);
    }
    EXPECT_NE(lines[0].find("\"state\":\"pending\""),
              std::string::npos);
    EXPECT_NE(lines[1].find("\"state\":\"firing\""),
              std::string::npos);
    EXPECT_NE(lines.back().find("\"state\":\"resolved\""),
              std::string::npos);
}

TEST_F(AlertsTest, RenderJsonIsDeterministic)
{
    auto build = [this] {
        obs::Tsdb db;
        obs::AlertEngine eng(db, {thresholdRule()});
        for (int t = 1; t <= 20; ++t) {
            db.append("s", t * kSec, t >= 5 && t < 12 ? 50.0 : 1.0);
            eng.evaluate(t * kSec);
        }
        return eng.renderJson(eng.lastEvaluatedUs());
    };
    const std::string a = build();
    EXPECT_EQ(a, build());
    EXPECT_NE(a.find("\"rules\":[{\"name\":\"high\""),
              std::string::npos);
}

} // namespace
