/**
 * @file
 * Tests of the estimator convergence telemetry: the observer hook
 * fires once per outer iteration on a synthetic fit, SSE never
 * increases across the alternation, and the recorder's CSV is
 * well-formed. Also covers the failure path (onDone(false)).
 */

#include <gtest/gtest.h>

#include <sstream>

#include "core/estimator.hh"
#include "obs/convergence.hh"

namespace
{

using namespace gpupm;
using gpu::Component;
using gpu::componentIndex;

const gpu::DeviceDescriptor &
titanx()
{
    return gpu::DeviceDescriptor::get(gpu::DeviceKind::GtxTitanX);
}

/** Compact noise-free generator (same shape as the estimator tests). */
model::TrainingData
syntheticData()
{
    const auto &dev = titanx();
    model::ModelParams p;
    p.beta0 = 25.0;
    p.beta1 = 14.0;
    p.beta2 = 9.0;
    p.beta3 = 10.0;
    p.omega[componentIndex(Component::Int)] = 45.0;
    p.omega[componentIndex(Component::SP)] = 55.0;
    p.omega[componentIndex(Component::DP)] = 70.0;
    p.omega[componentIndex(Component::SF)] = 35.0;
    p.omega[componentIndex(Component::Shared)] = 20.0;
    p.omega[componentIndex(Component::L2)] = 30.0;
    p.omega[componentIndex(Component::Dram)] = 16.0;
    model::DvfsPowerModel gen(dev.kind, dev.referenceConfig(), p);
    for (const auto &cfg : dev.allConfigs())
        gen.setVoltages(cfg,
                        {0.85 + 0.15 * cfg.core_mhz /
                                        dev.default_core_mhz,
                         1.0});

    model::TrainingData data;
    data.device = dev.kind;
    data.reference = dev.referenceConfig();
    data.configs = dev.allConfigs();
    for (std::size_t i = 0; i < gpu::kNumComponents; ++i) {
        gpu::ComponentArray u{};
        u[i] = 0.9;
        data.utils.push_back(u);
    }
    data.utils.push_back(gpu::ComponentArray{}); // idle row
    gpu::ComponentArray mix{};
    for (double &x : mix)
        x = 0.3;
    data.utils.push_back(mix);
    data.power_w.resize(data.utils.size());
    for (std::size_t b = 0; b < data.utils.size(); ++b)
        for (const auto &cfg : data.configs)
            data.power_w[b].push_back(
                    gen.predict(data.utils[b], cfg).total_w);
    return data;
}

TEST(Convergence, ObserverSeesOneRecordPerIteration)
{
    obs::ConvergenceRecorder rec;
    model::EstimatorOptions opts;
    opts.observer = &rec;
    const auto fit =
            model::ModelEstimator(opts).tryEstimate(syntheticData());
    ASSERT_TRUE(fit.ok());

    // Iteration 0 is the Eq. 11 initialization, then one record per
    // outer iteration.
    ASSERT_EQ(rec.records().size(),
              static_cast<std::size_t>(fit.value().iterations) + 1);
    for (std::size_t i = 0; i < rec.records().size(); ++i)
        EXPECT_EQ(rec.records()[i].iteration,
                  static_cast<int>(i));
    EXPECT_EQ(rec.converged(), fit.value().converged);
    EXPECT_EQ(rec.iterations(), fit.value().iterations);
}

TEST(Convergence, SseIsNonIncreasingAcrossIterations)
{
    obs::ConvergenceRecorder rec;
    model::EstimatorOptions opts;
    opts.observer = &rec;
    ASSERT_TRUE(model::ModelEstimator(opts)
                        .tryEstimate(syntheticData())
                        .ok());
    ASSERT_GE(rec.records().size(), 2u);
    // The alternation only accepts improving steps: from the first
    // real iteration on, SSE must not increase.
    for (std::size_t i = 2; i < rec.records().size(); ++i) {
        EXPECT_LE(rec.records()[i].sse,
                  rec.records()[i - 1].sse * (1.0 + 1e-12))
                << "at iteration " << i;
        EXPECT_GE(rec.records()[i].delta_sse, 0.0);
    }
    // Records carry finite diagnostics.
    for (const auto &r : rec.records()) {
        EXPECT_TRUE(std::isfinite(r.sse));
        EXPECT_GE(r.sse, 0.0);
        EXPECT_GE(r.max_dv, 0.0);
        EXPECT_GE(r.als_residual, 0.0);
        EXPECT_GE(r.condition, 0.0);
    }
}

TEST(Convergence, CsvHasHeaderAndOneRowPerRecord)
{
    obs::ConvergenceRecorder rec;
    model::EstimatorOptions opts;
    opts.observer = &rec;
    ASSERT_TRUE(model::ModelEstimator(opts)
                        .tryEstimate(syntheticData())
                        .ok());
    const std::string csv = rec.toCsv();
    std::istringstream in(csv);
    std::string line;
    ASSERT_TRUE(std::getline(in, line));
    EXPECT_EQ(line,
              "iteration,sse,delta_sse,max_dv,als_residual,"
              "condition");
    std::size_t rows = 0;
    while (std::getline(in, line))
        if (!line.empty())
            ++rows;
    EXPECT_EQ(rows, rec.records().size());
}

TEST(Convergence, FailedFitReportsOnDoneFalse)
{
    obs::ConvergenceRecorder rec;
    model::EstimatorOptions opts;
    opts.observer = &rec;
    model::TrainingData empty; // malformed: no benchmarks at all
    const auto fit = model::ModelEstimator(opts).tryEstimate(empty);
    EXPECT_FALSE(fit.ok());
    EXPECT_FALSE(rec.converged());
    EXPECT_EQ(rec.iterations(), 0);
}

TEST(Convergence, DefaultObserverIsSafeNoOp)
{
    obs::EstimatorObserver base;
    obs::IterationRecord r;
    base.onIteration(r); // must not crash
    base.onDone(true, 3);
}

} // namespace
