/**
 * @file
 * Tests of the span tracer and its Chrome trace-event export:
 * disabled guards are inert, nesting yields balanced containment,
 * record order is monotonic, the rendered JSON is structurally
 * sound, and trace IDs propagate (root minting, child inheritance,
 * cross-thread adoption, store assembly).
 */

#include <gtest/gtest.h>

#include <set>
#include <thread>

#include "obs/trace.hh"
#include "obs/trace_store.hh"

namespace
{

using namespace gpupm;

/** Fresh tracer state per test (the tracer is process-global). */
class TraceTest : public ::testing::Test
{
  protected:
    void SetUp() override { obs::Tracer::global().enable(); }

    void TearDown() override
    {
        obs::Tracer::global().disable();
        obs::Tracer::global().clear();
    }
};

TEST_F(TraceTest, DisabledGuardRecordsNothing)
{
    obs::Tracer::global().disable();
    {
        GPUPM_TRACE_SPAN("cli", "should-not-appear");
    }
    EXPECT_EQ(obs::Tracer::global().eventCount(), 0u);
}

TEST_F(TraceTest, RecordsCompletedSpansWithArgs)
{
    {
        GPUPM_TRACE_SPAN_NAMED(span, "estimator", "fit");
        span.arg("device", "titanx");
    }
    const auto evs = obs::Tracer::global().snapshot();
    ASSERT_EQ(evs.size(), 1u);
    EXPECT_EQ(evs[0].name, "fit");
    EXPECT_EQ(evs[0].cat, "estimator");
    EXPECT_GE(evs[0].ts_us, 0);
    EXPECT_GE(evs[0].dur_us, 0);
    ASSERT_EQ(evs[0].args.size(), 1u);
    EXPECT_EQ(evs[0].args[0].first, "device");
    EXPECT_EQ(evs[0].args[0].second, "titanx");
}

TEST_F(TraceTest, NestedSpansAreBalancedAndContained)
{
    {
        GPUPM_TRACE_SPAN_NAMED(outer, "campaign", "outer");
        {
            GPUPM_TRACE_SPAN("backend", "inner");
        }
    }
    const auto evs = obs::Tracer::global().snapshot();
    ASSERT_EQ(evs.size(), 2u);
    // Inner completes (and so records) first; outer must contain it.
    const auto &inner = evs[0];
    const auto &outer = evs[1];
    EXPECT_EQ(inner.name, "inner");
    EXPECT_EQ(outer.name, "outer");
    EXPECT_LE(outer.ts_us, inner.ts_us);
    EXPECT_GE(outer.ts_us + outer.dur_us, inner.ts_us + inner.dur_us);
}

TEST_F(TraceTest, RecordOrderHasMonotonicEndTimes)
{
    for (int i = 0; i < 50; ++i) {
        GPUPM_TRACE_SPAN("sim", "k");
    }
    const auto evs = obs::Tracer::global().snapshot();
    ASSERT_EQ(evs.size(), 50u);
    for (std::size_t i = 1; i < evs.size(); ++i) {
        EXPECT_LE(evs[i - 1].ts_us + evs[i - 1].dur_us,
                  evs[i].ts_us + evs[i].dur_us);
        EXPECT_LE(evs[i - 1].ts_us, evs[i].ts_us);
    }
}

TEST_F(TraceTest, ThreadsGetDistinctSmallOrdinals)
{
    auto work = [] {
        GPUPM_TRACE_SPAN("backend", "threaded");
    };
    std::thread a(work), b(work);
    a.join();
    b.join();
    work();
    const auto evs = obs::Tracer::global().snapshot();
    ASSERT_EQ(evs.size(), 3u);
    // Three distinct threads -> three distinct ordinals, all small.
    EXPECT_NE(evs[0].tid, evs[1].tid);
    for (const auto &ev : evs) {
        EXPECT_GE(ev.tid, 0);
        EXPECT_LT(ev.tid, 3);
    }
}

TEST_F(TraceTest, ChromeTraceJsonIsStructurallySound)
{
    {
        GPUPM_TRACE_SPAN_NAMED(span, "io", "load");
        span.arg("path", "with \"quotes\" and \\slashes\\");
    }
    {
        GPUPM_TRACE_SPAN("estimator", "fit");
    }
    const std::string json =
            obs::Tracer::global().renderChromeTrace();

    EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
    EXPECT_NE(json.find("\"cat\":\"io\""), std::string::npos);
    EXPECT_NE(json.find("\"displayTimeUnit\""), std::string::npos);
    // The quote and backslash in the arg must come out escaped.
    EXPECT_NE(json.find("with \\\"quotes\\\" and \\\\slashes\\\\"),
              std::string::npos);

    // Balanced braces/brackets (no structural characters can appear
    // unescaped inside the strings used here).
    long braces = 0, brackets = 0;
    bool in_string = false, escaped = false;
    for (char c : json) {
        if (escaped) {
            escaped = false;
            continue;
        }
        if (c == '\\') {
            escaped = true;
            continue;
        }
        if (c == '"') {
            in_string = !in_string;
            continue;
        }
        if (in_string)
            continue;
        if (c == '{')
            ++braces;
        if (c == '}')
            --braces;
        if (c == '[')
            ++brackets;
        if (c == ']')
            --brackets;
        EXPECT_GE(braces, 0);
        EXPECT_GE(brackets, 0);
    }
    EXPECT_EQ(braces, 0);
    EXPECT_EQ(brackets, 0);
    EXPECT_FALSE(in_string);
}

TEST_F(TraceTest, EnableResetsEpochAndDropsOldSpans)
{
    {
        GPUPM_TRACE_SPAN("cli", "before");
    }
    EXPECT_EQ(obs::Tracer::global().eventCount(), 1u);
    obs::Tracer::global().enable();
    EXPECT_EQ(obs::Tracer::global().eventCount(), 0u);
    {
        GPUPM_TRACE_SPAN("cli", "after");
    }
    const auto evs = obs::Tracer::global().snapshot();
    ASSERT_EQ(evs.size(), 1u);
    EXPECT_EQ(evs[0].name, "after");
}

TEST_F(TraceTest, SpanStraddlingEnableIsDroppedNotTruncated)
{
    obs::Tracer::global().disable();
    {
        GPUPM_TRACE_SPAN("cli", "straddler");
        obs::Tracer::global().enable();
    }
    EXPECT_EQ(obs::Tracer::global().eventCount(), 0u);
}

TEST_F(TraceTest, RootMintsTraceIdChildrenInheritIt)
{
    {
        GPUPM_TRACE_SPAN_NAMED(root, "cli", "root");
        EXPECT_NE(root.traceId(), 0u);
        EXPECT_EQ(root.traceId(), root.spanId());
        {
            GPUPM_TRACE_SPAN_NAMED(child, "campaign", "child");
            EXPECT_EQ(child.traceId(), root.traceId());
            EXPECT_NE(child.spanId(), root.spanId());
            {
                GPUPM_TRACE_SPAN_NAMED(grand, "sim", "grandchild");
                EXPECT_EQ(grand.traceId(), root.traceId());
            }
        }
    }
    const auto evs = obs::Tracer::global().snapshot();
    ASSERT_EQ(evs.size(), 3u); // completion order: grand, child, root
    EXPECT_EQ(evs[0].parent_span_id, evs[1].span_id);
    EXPECT_EQ(evs[1].parent_span_id, evs[2].span_id);
    EXPECT_EQ(evs[2].parent_span_id, 0u);
    for (const auto &ev : evs)
        EXPECT_EQ(ev.trace_id, evs[2].span_id);
}

TEST_F(TraceTest, SeededIdsAreDeterministic)
{
    obs::Tracer::global().seedIds(42);
    {
        GPUPM_TRACE_SPAN("cli", "a");
    }
    {
        GPUPM_TRACE_SPAN("cli", "b");
    }
    const auto first = obs::Tracer::global().snapshot();
    ASSERT_EQ(first.size(), 2u);
    EXPECT_NE(first[0].span_id, first[1].span_id);

    obs::Tracer::global().clear();
    obs::Tracer::global().seedIds(42);
    {
        GPUPM_TRACE_SPAN("cli", "a");
    }
    {
        GPUPM_TRACE_SPAN("cli", "b");
    }
    const auto second = obs::Tracer::global().snapshot();
    ASSERT_EQ(second.size(), 2u);
    EXPECT_EQ(first[0].span_id, second[0].span_id);
    EXPECT_EQ(first[1].span_id, second[1].span_id);

    obs::Tracer::global().clear();
    obs::Tracer::global().seedIds(43);
    {
        GPUPM_TRACE_SPAN("cli", "a");
    }
    const auto other = obs::Tracer::global().snapshot();
    ASSERT_EQ(other.size(), 1u);
    EXPECT_NE(other[0].span_id, first[0].span_id);
}

TEST_F(TraceTest, ContextScopeHandsTraceAcrossThreads)
{
    obs::TraceContext root_ctx;
    std::uint64_t worker_trace = 0, worker_parent = 0;
    {
        GPUPM_TRACE_SPAN_NAMED(root, "fleet", "campaign-root");
        root_ctx = obs::currentTraceContext();
        std::thread worker([&] {
            // Without adoption the worker would start its own trace.
            obs::TraceContextScope handoff(root_ctx);
            GPUPM_TRACE_SPAN_NAMED(task, "fleet", "task");
            worker_trace = task.traceId();
            worker_parent = root_ctx.span_id;
        });
        worker.join();
        EXPECT_EQ(worker_trace, root.traceId());
        EXPECT_EQ(worker_parent, root.spanId());
    }
    const auto evs = obs::Tracer::global().snapshot();
    ASSERT_EQ(evs.size(), 2u);
    EXPECT_EQ(evs[0].name, "task");
    EXPECT_EQ(evs[0].parent_span_id, evs[1].span_id);
}

TEST_F(TraceTest, EmptyContextScopeForcesFreshRoot)
{
    {
        GPUPM_TRACE_SPAN_NAMED(outer, "monitor", "daemon");
        obs::TraceContextScope fresh{obs::TraceContext{}};
        GPUPM_TRACE_SPAN_NAMED(tick, "monitor", "tick");
        // The tick is a new root, not a child of the daemon span.
        EXPECT_NE(tick.traceId(), outer.traceId());
        EXPECT_EQ(tick.traceId(), tick.spanId());
    }
    const auto evs = obs::Tracer::global().snapshot();
    ASSERT_EQ(evs.size(), 2u);
    EXPECT_EQ(evs[0].parent_span_id, 0u);
    EXPECT_EQ(evs[1].parent_span_id, 0u);
}

TEST_F(TraceTest, MarkErrorFlagsTheEvent)
{
    {
        GPUPM_TRACE_SPAN_NAMED(span, "backend", "measure");
        span.markError();
    }
    const auto evs = obs::Tracer::global().snapshot();
    ASSERT_EQ(evs.size(), 1u);
    EXPECT_TRUE(evs[0].error);
    EXPECT_NE(obs::Tracer::global().renderChromeTrace().find(
                      "\"error\":true"),
              std::string::npos);
}

TEST_F(TraceTest, AttachedStoreReceivesAssembledTraces)
{
    obs::TraceStore store;
    obs::Tracer::global().attachStore(&store);
    {
        GPUPM_TRACE_SPAN("monitor", "tick-root");
        {
            GPUPM_TRACE_SPAN("monitor", "probe");
        }
        {
            GPUPM_TRACE_SPAN_NAMED(audit, "monitor", "audit");
            audit.markError();
        }
    }
    obs::Tracer::global().attachStore(nullptr);

    EXPECT_EQ(store.offeredTotal(), 1L);
    const auto traces = store.query(obs::TraceQuery{});
    ASSERT_EQ(traces.size(), 1u);
    const auto &t = traces[0];
    EXPECT_EQ(t.root_name, "tick-root");
    EXPECT_EQ(t.root_cat, "monitor");
    EXPECT_TRUE(t.error); // audit error propagated to the trace
    ASSERT_EQ(t.spans.size(), 3u);
    // Spans arrive in completion order, the root last.
    EXPECT_EQ(t.spans[0].name, "probe");
    EXPECT_EQ(t.spans[1].name, "audit");
    EXPECT_TRUE(t.spans[1].error);
    EXPECT_EQ(t.spans[2].name, "tick-root");
    EXPECT_EQ(t.spans[2].parent_span_id, 0u);
    EXPECT_EQ(t.spans[0].parent_span_id, t.spans[2].span_id);
    EXPECT_EQ(t.trace_id, t.spans[2].span_id);
}

TEST_F(TraceTest, RetainEventsOffStillFeedsTheStore)
{
    obs::TraceStore store;
    obs::Tracer::global().attachStore(&store);
    obs::Tracer::global().setRetainEvents(false);
    for (int i = 0; i < 5; ++i) {
        GPUPM_TRACE_SPAN("monitor", "tick");
    }
    obs::Tracer::global().setRetainEvents(true);
    obs::Tracer::global().attachStore(nullptr);
    // Store-only mode: assembled traces land, raw events do not.
    EXPECT_EQ(store.offeredTotal(), 5L);
    EXPECT_EQ(obs::Tracer::global().eventCount(), 0u);
}

TEST_F(TraceTest, ConcurrentSpansMintGloballyUniqueIds)
{
    constexpr int kThreads = 4, kSpansPer = 200;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t)
        threads.emplace_back([] {
            for (int i = 0; i < kSpansPer; ++i) {
                GPUPM_TRACE_SPAN("sim", "k");
            }
        });
    for (auto &t : threads)
        t.join();
    const auto evs = obs::Tracer::global().snapshot();
    ASSERT_EQ(evs.size(),
              static_cast<std::size_t>(kThreads * kSpansPer));
    std::set<std::uint64_t> ids;
    for (const auto &ev : evs) {
        EXPECT_NE(ev.span_id, 0u);
        ids.insert(ev.span_id);
    }
    EXPECT_EQ(ids.size(), evs.size());
}

} // namespace
