/**
 * @file
 * Tests of the span tracer and its Chrome trace-event export:
 * disabled guards are inert, nesting yields balanced containment,
 * record order is monotonic, and the rendered JSON is structurally
 * sound.
 */

#include <gtest/gtest.h>

#include <thread>

#include "obs/trace.hh"

namespace
{

using namespace gpupm;

/** Fresh tracer state per test (the tracer is process-global). */
class TraceTest : public ::testing::Test
{
  protected:
    void SetUp() override { obs::Tracer::global().enable(); }

    void TearDown() override
    {
        obs::Tracer::global().disable();
        obs::Tracer::global().clear();
    }
};

TEST_F(TraceTest, DisabledGuardRecordsNothing)
{
    obs::Tracer::global().disable();
    {
        GPUPM_TRACE_SPAN("cli", "should-not-appear");
    }
    EXPECT_EQ(obs::Tracer::global().eventCount(), 0u);
}

TEST_F(TraceTest, RecordsCompletedSpansWithArgs)
{
    {
        GPUPM_TRACE_SPAN_NAMED(span, "estimator", "fit");
        span.arg("device", "titanx");
    }
    const auto evs = obs::Tracer::global().snapshot();
    ASSERT_EQ(evs.size(), 1u);
    EXPECT_EQ(evs[0].name, "fit");
    EXPECT_EQ(evs[0].cat, "estimator");
    EXPECT_GE(evs[0].ts_us, 0);
    EXPECT_GE(evs[0].dur_us, 0);
    ASSERT_EQ(evs[0].args.size(), 1u);
    EXPECT_EQ(evs[0].args[0].first, "device");
    EXPECT_EQ(evs[0].args[0].second, "titanx");
}

TEST_F(TraceTest, NestedSpansAreBalancedAndContained)
{
    {
        GPUPM_TRACE_SPAN_NAMED(outer, "campaign", "outer");
        {
            GPUPM_TRACE_SPAN("backend", "inner");
        }
    }
    const auto evs = obs::Tracer::global().snapshot();
    ASSERT_EQ(evs.size(), 2u);
    // Inner completes (and so records) first; outer must contain it.
    const auto &inner = evs[0];
    const auto &outer = evs[1];
    EXPECT_EQ(inner.name, "inner");
    EXPECT_EQ(outer.name, "outer");
    EXPECT_LE(outer.ts_us, inner.ts_us);
    EXPECT_GE(outer.ts_us + outer.dur_us, inner.ts_us + inner.dur_us);
}

TEST_F(TraceTest, RecordOrderHasMonotonicEndTimes)
{
    for (int i = 0; i < 50; ++i) {
        GPUPM_TRACE_SPAN("sim", "k");
    }
    const auto evs = obs::Tracer::global().snapshot();
    ASSERT_EQ(evs.size(), 50u);
    for (std::size_t i = 1; i < evs.size(); ++i) {
        EXPECT_LE(evs[i - 1].ts_us + evs[i - 1].dur_us,
                  evs[i].ts_us + evs[i].dur_us);
        EXPECT_LE(evs[i - 1].ts_us, evs[i].ts_us);
    }
}

TEST_F(TraceTest, ThreadsGetDistinctSmallOrdinals)
{
    auto work = [] {
        GPUPM_TRACE_SPAN("backend", "threaded");
    };
    std::thread a(work), b(work);
    a.join();
    b.join();
    work();
    const auto evs = obs::Tracer::global().snapshot();
    ASSERT_EQ(evs.size(), 3u);
    // Three distinct threads -> three distinct ordinals, all small.
    EXPECT_NE(evs[0].tid, evs[1].tid);
    for (const auto &ev : evs) {
        EXPECT_GE(ev.tid, 0);
        EXPECT_LT(ev.tid, 3);
    }
}

TEST_F(TraceTest, ChromeTraceJsonIsStructurallySound)
{
    {
        GPUPM_TRACE_SPAN_NAMED(span, "io", "load");
        span.arg("path", "with \"quotes\" and \\slashes\\");
    }
    {
        GPUPM_TRACE_SPAN("estimator", "fit");
    }
    const std::string json =
            obs::Tracer::global().renderChromeTrace();

    EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
    EXPECT_NE(json.find("\"cat\":\"io\""), std::string::npos);
    EXPECT_NE(json.find("\"displayTimeUnit\""), std::string::npos);
    // The quote and backslash in the arg must come out escaped.
    EXPECT_NE(json.find("with \\\"quotes\\\" and \\\\slashes\\\\"),
              std::string::npos);

    // Balanced braces/brackets (no structural characters can appear
    // unescaped inside the strings used here).
    long braces = 0, brackets = 0;
    bool in_string = false, escaped = false;
    for (char c : json) {
        if (escaped) {
            escaped = false;
            continue;
        }
        if (c == '\\') {
            escaped = true;
            continue;
        }
        if (c == '"') {
            in_string = !in_string;
            continue;
        }
        if (in_string)
            continue;
        if (c == '{')
            ++braces;
        if (c == '}')
            --braces;
        if (c == '[')
            ++brackets;
        if (c == ']')
            --brackets;
        EXPECT_GE(braces, 0);
        EXPECT_GE(brackets, 0);
    }
    EXPECT_EQ(braces, 0);
    EXPECT_EQ(brackets, 0);
    EXPECT_FALSE(in_string);
}

TEST_F(TraceTest, EnableResetsEpochAndDropsOldSpans)
{
    {
        GPUPM_TRACE_SPAN("cli", "before");
    }
    EXPECT_EQ(obs::Tracer::global().eventCount(), 1u);
    obs::Tracer::global().enable();
    EXPECT_EQ(obs::Tracer::global().eventCount(), 0u);
    {
        GPUPM_TRACE_SPAN("cli", "after");
    }
    const auto evs = obs::Tracer::global().snapshot();
    ASSERT_EQ(evs.size(), 1u);
    EXPECT_EQ(evs[0].name, "after");
}

TEST_F(TraceTest, SpanStraddlingEnableIsDroppedNotTruncated)
{
    obs::Tracer::global().disable();
    {
        GPUPM_TRACE_SPAN("cli", "straddler");
        obs::Tracer::global().enable();
    }
    EXPECT_EQ(obs::Tracer::global().eventCount(), 0u);
}

} // namespace
