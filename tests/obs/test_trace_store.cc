/**
 * @file
 * Tests of the bounded trace store's tail-sampling policy: exact
 * byte accounting, bound enforcement, boring-first eviction, 100%
 * error-trace retention, the slowest-per-category reservoir, query
 * filters, and the JSON rendering.
 */

#include <gtest/gtest.h>

#include <string>

#include "obs/metrics.hh"
#include "obs/standard.hh"
#include "obs/trace_store.hh"

namespace
{

using namespace gpupm;

class TraceStoreTest : public ::testing::Test
{
  protected:
    void SetUp() override { obs::Registry::global().reset(); }
    void TearDown() override { obs::Registry::global().reset(); }
};

obs::StoredTrace
makeTrace(std::uint64_t id, const std::string &cat,
          std::int64_t dur_us, bool error = false,
          std::size_t extra_spans = 0)
{
    obs::StoredTrace t;
    t.trace_id = id;
    t.root_name = "root";
    t.root_cat = cat;
    t.start_us = static_cast<std::int64_t>(id);
    t.dur_us = dur_us;
    t.error = error;
    for (std::size_t i = 0; i < extra_spans; ++i) {
        obs::StoredSpan s;
        s.name = "child";
        s.cat = cat;
        s.span_id = id * 1000 + i + 1;
        s.parent_span_id = id;
        t.spans.push_back(s);
    }
    obs::StoredSpan root;
    root.name = t.root_name;
    root.cat = cat;
    root.span_id = id;
    root.error = error;
    t.spans.push_back(root);
    return t;
}

TEST_F(TraceStoreTest, FootprintCountsEveryStringAndSpan)
{
    auto t = makeTrace(1, "monitor", 100, false, 2);
    const std::size_t base = obs::TraceStore::footprint(t);
    t.spans[0].args.emplace_back("key", "0123456789");
    EXPECT_EQ(obs::TraceStore::footprint(t),
              base + sizeof(t.spans[0].args[0]) + 3 + 10);
}

TEST_F(TraceStoreTest, AccountingMatchesResidentTraces)
{
    obs::TraceStore store;
    std::size_t expected = 0;
    for (int i = 1; i <= 10; ++i) {
        auto t = makeTrace(static_cast<std::uint64_t>(i), "monitor",
                           i * 10, false, 3);
        expected += obs::TraceStore::footprint(t);
        store.offer(std::move(t));
    }
    EXPECT_EQ(store.memoryBytes(), expected);
    EXPECT_EQ(store.traceCount(), 10u);
    EXPECT_EQ(store.offeredTotal(), 10L);
    EXPECT_EQ(store.evictedTotal(), 0L);
    // The standard gauges track the store exactly.
    EXPECT_EQ(obs::traceStoreTraces().value(), 10.0);
    EXPECT_EQ(obs::traceStoreMemoryBytes().value(),
              static_cast<double>(expected));
}

TEST_F(TraceStoreTest, CountBoundEvictsOldestBoringFirst)
{
    obs::TraceStoreOptions opts;
    opts.max_traces = 4;
    opts.slow_per_cat = 1; // only the single slowest is protected
    obs::TraceStore store(opts);
    // id 1 is slowest (protected); ids 2..5 boring and fast.
    store.offer(makeTrace(1, "monitor", 1000));
    for (std::uint64_t id = 2; id <= 5; ++id)
        store.offer(makeTrace(id, "monitor", 10));
    EXPECT_EQ(store.traceCount(), 4u);
    EXPECT_EQ(store.evictedTotal(), 1L);
    // The evicted one is id 2 — the oldest non-protected trace.
    obs::TraceQuery q;
    q.trace_id = 2;
    EXPECT_TRUE(store.query(q).empty());
    q.trace_id = 1;
    EXPECT_EQ(store.query(q).size(), 1u);
}

TEST_F(TraceStoreTest, ByteBoundIsNeverExceeded)
{
    obs::TraceStoreOptions opts;
    opts.max_bytes = 4096;
    obs::TraceStore store(opts);
    for (std::uint64_t id = 1; id <= 200; ++id) {
        store.offer(makeTrace(id, "monitor", 50, false, 4));
        EXPECT_LE(store.memoryBytes(), opts.max_bytes);
    }
    EXPECT_GT(store.evictedTotal(), 0L);
    EXPECT_GT(store.traceCount(), 0u);
}

TEST_F(TraceStoreTest, ErrorTracesSurviveBoringChurn)
{
    obs::TraceStoreOptions opts;
    opts.max_traces = 8;
    opts.slow_per_cat = 2;
    obs::TraceStore store(opts);
    // Three early error traces, then a flood of boring ones.
    for (std::uint64_t id = 1; id <= 3; ++id)
        store.offer(makeTrace(id, "monitor", 10, true));
    for (std::uint64_t id = 4; id <= 100; ++id)
        store.offer(makeTrace(id, "monitor", 20));
    EXPECT_EQ(store.errorsOfferedTotal(), 3L);
    EXPECT_EQ(store.errorsEvictedTotal(), 0L);
    obs::TraceQuery q;
    q.error_only = true;
    q.limit = 100;
    EXPECT_EQ(store.query(q).size(), 3u);
}

TEST_F(TraceStoreTest, ErrorsEvictedOnlyAsLastResort)
{
    obs::TraceStoreOptions opts;
    opts.max_traces = 4;
    obs::TraceStore store(opts);
    for (std::uint64_t id = 1; id <= 6; ++id)
        store.offer(makeTrace(id, "monitor", 10, true));
    // Nothing but error traces: the bound still holds, oldest go.
    EXPECT_EQ(store.traceCount(), 4u);
    EXPECT_EQ(store.errorsEvictedTotal(), 2L);
    obs::TraceQuery q;
    q.trace_id = 1;
    EXPECT_TRUE(store.query(q).empty());
    q.trace_id = 6;
    EXPECT_EQ(store.query(q).size(), 1u);
}

TEST_F(TraceStoreTest, SlowReservoirIsPerCategory)
{
    obs::TraceStoreOptions opts;
    opts.max_traces = 4;
    opts.slow_per_cat = 1;
    obs::TraceStore store(opts);
    store.offer(makeTrace(1, "monitor", 1000)); // slowest monitor
    store.offer(makeTrace(2, "fleet", 900));    // slowest fleet
    for (std::uint64_t id = 3; id <= 30; ++id)
        store.offer(makeTrace(id, "monitor", 1));
    // Both category champions survived the churn.
    obs::TraceQuery q;
    q.trace_id = 1;
    EXPECT_EQ(store.query(q).size(), 1u);
    q.trace_id = 2;
    EXPECT_EQ(store.query(q).size(), 1u);
}

TEST_F(TraceStoreTest, OversizedTraceIsRejectedAtTheDoor)
{
    obs::TraceStoreOptions opts;
    opts.max_bytes = 512;
    obs::TraceStore store(opts);
    auto huge = makeTrace(1, "monitor", 10, false, 50);
    ASSERT_GT(obs::TraceStore::footprint(huge), opts.max_bytes);
    store.offer(std::move(huge));
    EXPECT_EQ(store.traceCount(), 0u);
    EXPECT_EQ(store.evictedTotal(), 1L);
    EXPECT_EQ(store.memoryBytes(), 0u);
}

TEST_F(TraceStoreTest, QueryFiltersCompose)
{
    obs::TraceStore store;
    store.offer(makeTrace(1, "monitor", 100));
    store.offer(makeTrace(2, "monitor", 5000, true));
    store.offer(makeTrace(3, "fleet", 9000));

    obs::TraceQuery q;
    q.category = "monitor";
    q.limit = 10;
    EXPECT_EQ(store.query(q).size(), 2u);
    q.min_dur_us = 1000;
    EXPECT_EQ(store.query(q).size(), 1u);
    q.error_only = true;
    ASSERT_EQ(store.query(q).size(), 1u);
    EXPECT_EQ(store.query(q)[0].trace_id, 2u);
    // Newest first.
    obs::TraceQuery all;
    const auto res = store.query(all);
    ASSERT_EQ(res.size(), 3u);
    EXPECT_EQ(res[0].trace_id, 3u);
    EXPECT_EQ(res[2].trace_id, 1u);
    // Limit caps from the newest end.
    all.limit = 1;
    ASSERT_EQ(store.query(all).size(), 1u);
    EXPECT_EQ(store.query(all)[0].trace_id, 3u);
}

TEST_F(TraceStoreTest, RenderJsonCarriesHexIdsAndCounters)
{
    obs::TraceStore store;
    auto t = makeTrace(0xabcdef0123456789ull, "monitor", 42, true, 1);
    t.spans[0].args.emplace_back("app", "BLCKSC");
    store.offer(std::move(t));
    const std::string json = store.renderJson(obs::TraceQuery{});
    EXPECT_NE(json.find("\"trace_id\":\"abcdef0123456789\""),
              std::string::npos);
    EXPECT_NE(json.find("\"count\":1"), std::string::npos);
    EXPECT_NE(json.find("\"errors_offered\":1"), std::string::npos);
    EXPECT_NE(json.find("\"memory_bound_bytes\":"),
              std::string::npos);
    EXPECT_NE(json.find("\"error\":true"), std::string::npos);
    EXPECT_NE(json.find("\"args\":{\"app\":\"BLCKSC\"}"),
              std::string::npos);
    // Clearing zeroes the gauges and the resident set.
    store.clear();
    EXPECT_EQ(store.traceCount(), 0u);
    EXPECT_EQ(store.memoryBytes(), 0u);
    EXPECT_EQ(obs::traceStoreTraces().value(), 0.0);
}

} // namespace
